//! Golden-digest regression test: every benchmark's canonical
//! `ClusterStats::digest()` (small inputs, `normal` and `active`
//! configurations) must match the committed
//! [`tests/golden_digests.txt`](golden_digests.txt), byte for byte.
//!
//! The file is regenerated with
//! `cargo run --release -p asan-bench --bin repro -- --small golden`.
//! A mismatch means a change perturbed simulation results — either a
//! bug, or an intentional model change that must update the golden
//! file *and* say so in the commit message.

use asan_apps::runner::Variant;
use asan_apps::{grep, hashjoin, md5app, mpeg, psort, reduce, select, tar};

const GOLDEN: &str = include_str!("golden_digests.txt");

/// The nine paper benchmarks at small scale, in golden-file order.
fn digests(variant: Variant) -> Vec<(&'static str, u64)> {
    let active = variant.is_active();
    vec![
        (
            "mpeg",
            mpeg::run(variant, &mpeg::Params::small()).stats_digest,
        ),
        (
            "hashjoin",
            hashjoin::run(variant, &hashjoin::Params::small()).stats_digest,
        ),
        (
            "select",
            select::run(variant, &select::Params::small()).stats_digest,
        ),
        (
            "grep",
            grep::run(variant, &grep::Params::small()).stats_digest,
        ),
        ("tar", tar::run(variant, &tar::Params::small()).stats_digest),
        (
            "psort",
            psort::run(variant, &psort::Params::small()).stats_digest,
        ),
        ("md5", {
            let mut p = md5app::Params::small();
            p.switch_cpus = 1;
            md5app::run(variant, &p).stats_digest
        }),
        (
            "reduce-to-one",
            reduce::run(reduce::Mode::ReduceToOne, active, 8).stats_digest,
        ),
        (
            "distributed-reduce",
            reduce::run(reduce::Mode::Distributed, active, 8).stats_digest,
        ),
    ]
}

#[test]
fn stats_digests_match_committed_golden_file() {
    let mut produced = String::new();
    for (name, variant) in [("normal", Variant::Normal), ("active", Variant::Active)] {
        for (bench, digest) in digests(variant) {
            produced.push_str(&format!("{bench} {name} {digest:016x}\n"));
        }
    }
    let mut mismatches = Vec::new();
    for (want, got) in GOLDEN.lines().zip(produced.lines()) {
        if want != got {
            mismatches.push(format!("golden: {want}\n   got: {got}"));
        }
    }
    assert_eq!(
        GOLDEN.lines().count(),
        produced.lines().count(),
        "golden file and produced digests differ in length:\n{produced}"
    );
    assert!(
        mismatches.is_empty(),
        "simulation results changed ({} of {} digests):\n{}\n\nIf intentional, \
         regenerate with `cargo run --release -p asan-bench --bin repro -- --small golden \
         > tests/golden_digests.txt` and explain the change.",
        mismatches.len(),
        GOLDEN.lines().count(),
        mismatches.join("\n")
    );
}
