//! Run-loop facade over the [`EventQueue`]: pop counting in one place.
//!
//! Simulators that drive an [`EventQueue`] by hand end up re-implementing
//! the same bookkeeping: a processed-event counter for safety limits and
//! diagnostics. [`Scheduler`] bundles it with the queue. Structured
//! event observability lives elsewhere — engines emit typed spans to a
//! [`crate::trace::TraceSink`] instead of the scheduler printing lines
//! (the old `Tracer` eprintln tracer this facade once carried).
//!
//! # Example
//!
//! ```
//! use asan_sim::sched::{Scheduler, Traceable};
//! use asan_sim::SimTime;
//!
//! struct Tick;
//! impl Traceable for Tick {
//!     fn trace_label(&self) -> &'static str {
//!         "Tick"
//!     }
//! }
//!
//! let mut s: Scheduler<Tick> = Scheduler::new();
//! s.push(SimTime::from_ns(3), Tick);
//! let (t, _) = s.pop().unwrap();
//! assert_eq!(t, SimTime::from_ns(3));
//! assert_eq!(s.processed(), 1);
//! ```

use crate::queue::EventQueue;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;

/// Types that can name themselves for diagnostics and traces.
pub trait Traceable {
    /// A short static label naming this event's kind.
    fn trace_label(&self) -> &'static str;
}

/// The pending-event set plus run bookkeeping: a processed-event
/// counter.
///
/// Ordering semantics are exactly those of [`EventQueue`]: events pop
/// in `(time, insertion sequence)` order, so simulations stay
/// reproducible bit for bit.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    processed: u64,
    peak_len: usize,
}

impl<E: Traceable> Scheduler<E> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            processed: 0,
            peak_len: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.queue.push(time, event);
        self.peak_len = self.peak_len.max(self.queue.len());
    }

    /// Removes and returns the earliest event, counting it as
    /// processed.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        self.processed += 1;
        Some((t, ev))
    }

    /// Events popped so far (across every run driven by this scheduler).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The deepest the pending-event set has ever been.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Events per wall-clock second given an externally measured
    /// elapsed time. The scheduler itself never reads a clock — the
    /// caller (a benchmark harness) supplies the seconds, keeping this
    /// crate free of wall-clock dependence.
    pub fn events_per_sec(&self, elapsed_secs: f64) -> f64 {
        if elapsed_secs <= 0.0 {
            return 0.0;
        }
        self.processed as f64 / elapsed_secs
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Writes the pending-event set (via `enc`) and the run
    /// bookkeeping, so a restored scheduler continues both the event
    /// stream and the processed/peak counters exactly.
    pub fn snapshot_with(&self, w: &mut SnapWriter, enc: impl FnMut(&mut SnapWriter, &E)) {
        self.queue.snapshot_with(w, enc);
        w.u64(self.processed);
        w.usize(self.peak_len);
    }

    /// Rebuilds a scheduler from [`Scheduler::snapshot_with`] output.
    pub fn restore_with(
        r: &mut SnapReader<'_>,
        dec: impl FnMut(&mut SnapReader<'_>) -> Result<E, SnapError>,
    ) -> Result<Self, SnapError> {
        Ok(Scheduler {
            queue: EventQueue::restore_with(r, dec)?,
            processed: r.u64()?,
            peak_len: r.usize()?,
        })
    }
}

impl<E: Traceable> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ev(u32);
    impl Traceable for Ev {
        fn trace_label(&self) -> &'static str {
            "Ev"
        }
    }

    #[test]
    fn pops_in_order_and_counts() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ns(5), Ev(2));
        s.push(SimTime::from_ns(1), Ev(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop().unwrap().1, Ev(1));
        assert_eq!(s.pop().unwrap().1, Ev(2));
        assert!(s.pop().is_none());
        assert_eq!(s.processed(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.push(SimTime::from_ns(7), Ev(i));
        }
        for i in 0..10 {
            assert_eq!(s.pop().unwrap().1, Ev(i));
        }
    }

    #[test]
    fn peak_len_tracks_high_water_mark() {
        let mut s = Scheduler::new();
        assert_eq!(s.peak_len(), 0);
        s.push(SimTime::ZERO, Ev(0));
        s.push(SimTime::ZERO, Ev(1));
        s.pop();
        s.pop();
        s.push(SimTime::ZERO, Ev(2));
        assert_eq!(s.peak_len(), 2);
        assert_eq!(s.events_per_sec(0.0), 0.0);
        assert_eq!(s.events_per_sec(2.0), 1.0);
    }

    #[test]
    fn snapshot_restores_counters_and_events() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ns(1), Ev(1));
        s.push(SimTime::from_ns(2), Ev(2));
        s.push(SimTime::from_ns(3), Ev(3));
        s.pop();
        let mut w = SnapWriter::new();
        s.snapshot_with(&mut w, |w, e| w.u32(e.0));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes).unwrap();
        let mut s2: Scheduler<Ev> = Scheduler::restore_with(&mut r, |r| Ok(Ev(r.u32()?))).unwrap();
        r.finish().unwrap();
        assert_eq!(s2.processed(), 1);
        assert_eq!(s2.peak_len(), 3);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.pop().unwrap().1, Ev(2));
        assert_eq!(s2.pop().unwrap().1, Ev(3));
        assert_eq!(s2.processed(), 3);
    }

    #[test]
    fn processed_persists_across_drains() {
        let mut s = Scheduler::default();
        s.push(SimTime::ZERO, Ev(0));
        s.pop();
        s.push(SimTime::ZERO, Ev(1));
        s.pop();
        assert_eq!(s.processed(), 2);
    }
}
