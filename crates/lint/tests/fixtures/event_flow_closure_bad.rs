//! Known-bad: the per-file `event-exhaustiveness` rule passes — the
//! engine's match even ends with a loud catch-all — but the *workspace*
//! event flow is broken twice over: `Event::Orphan` is constructed and
//! matched by no engine (it dies in the catch-all at runtime), and
//! `Event::Pong` is declared but never constructed anywhere. Only the
//! cross-file index can see either.

pub enum Event {
    Ping(u64),
    Pong(u64),
    Orphan(u64),
}

impl RelayEngine {
    pub fn on_event(&mut self, ev: Event) {
        match ev {
            Event::Ping(seq) => self.acks += seq,
            other => unreachable!("not a relay event: {other:?}"),
        }
    }
}

pub fn inject(bus: &mut Vec<Event>) {
    bus.push(Event::Ping(1));
    bus.push(Event::Orphan(2));
}
