//! A real DFA for literal-string search (GNU-grep style).
//!
//! The paper's active Grep "sets up a DFA structure" and searches on the
//! switch (§5). We build the KMP failure-function automaton for the
//! literal pattern and step it byte by byte — the same table-lookup
//! inner loop grep's DFA executes, and the unit we charge switch/host
//! instruction costs for.

/// A byte-level DFA recognizing occurrences of a literal pattern.
#[derive(Debug, Clone)]
pub struct LiteralDfa {
    pattern: Vec<u8>,
    /// `next[state][class]` would be 256-wide; we keep the compact KMP
    /// form: `fail[state]` plus the pattern bytes.
    fail: Vec<usize>,
}

impl LiteralDfa {
    /// Builds the automaton for `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn new(pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "empty pattern");
        let mut fail = vec![0usize; pattern.len() + 1];
        let mut k = 0;
        for i in 1..pattern.len() {
            while k > 0 && pattern[i] != pattern[k] {
                k = fail[k];
            }
            if pattern[i] == pattern[k] {
                k += 1;
            }
            fail[i + 1] = k;
        }
        LiteralDfa {
            pattern: pattern.to_vec(),
            fail,
        }
    }

    /// The pattern length (number of DFA states minus one).
    pub fn pattern_len(&self) -> usize {
        self.pattern.len()
    }

    /// Advances `state` by one input byte; returns the new state and
    /// whether a match completed on this byte.
    #[inline]
    pub fn step(&self, mut state: usize, byte: u8) -> (usize, bool) {
        while state > 0 && byte != self.pattern[state] {
            state = self.fail[state];
        }
        if byte == self.pattern[state] {
            state += 1;
        }
        if state == self.pattern.len() {
            (self.fail[state], true)
        } else {
            (state, false)
        }
    }

    /// Runs the DFA over `data` starting from `state`; returns the end
    /// state and the byte offsets (of the match's final byte) found.
    pub fn search(&self, mut state: usize, data: &[u8]) -> (usize, Vec<usize>) {
        let mut hits = Vec::new();
        for (i, &b) in data.iter().enumerate() {
            let (s, hit) = self.step(state, b);
            state = s;
            if hit {
                hits.push(i);
            }
        }
        (state, hits)
    }

    /// Counts matches in `data` (fresh start state).
    pub fn count(&self, data: &[u8]) -> usize {
        self.search(0, data).1.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_occurrences() {
        let dfa = LiteralDfa::new(b"Big Red Bear");
        let text = b"a Big Red Bear and another Big Red Bear!";
        assert_eq!(dfa.count(text), 2);
    }

    #[test]
    fn matches_at_ends_and_overlaps() {
        let dfa = LiteralDfa::new(b"aa");
        // "aaaa" has 3 overlapping matches.
        assert_eq!(dfa.count(b"aaaa"), 3);
        let dfa2 = LiteralDfa::new(b"ab");
        assert_eq!(dfa2.count(b"ab"), 1);
        assert_eq!(dfa2.count(b"b"), 0);
    }

    #[test]
    fn state_carries_across_chunk_boundaries() {
        let dfa = LiteralDfa::new(b"Bear");
        let (s1, h1) = dfa.search(0, b"...Be");
        assert!(h1.is_empty());
        let (_s2, h2) = dfa.search(s1, b"ar...");
        assert_eq!(h2.len(), 1);
    }

    #[test]
    fn self_overlapping_pattern_failure_links() {
        let dfa = LiteralDfa::new(b"abab");
        assert_eq!(dfa.count(b"ababab"), 2); // positions 3 and 5
        assert_eq!(dfa.count(b"abaabab"), 1);
    }

    #[test]
    fn agrees_with_naive_search_on_random_text() {
        let mut rng = asan_sim::SimRng::from_label("dfa-test");
        let pattern = b"red";
        let dfa = LiteralDfa::new(pattern);
        for _ in 0..50 {
            let text: Vec<u8> = (0..1000).map(|_| b"redx "[rng.below(5) as usize]).collect();
            let naive = text
                .windows(pattern.len())
                .filter(|w| *w == pattern)
                .count();
            assert_eq!(dfa.count(&text), naive);
        }
    }

    #[test]
    #[should_panic(expected = "empty pattern")]
    fn empty_pattern_rejected() {
        LiteralDfa::new(b"");
    }
}
