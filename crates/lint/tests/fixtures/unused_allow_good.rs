//! Corrected twin: the only directive present actually suppresses a
//! finding on its line, so the escape-hatch inventory is honest.

use std::time::Instant; // asan-lint: allow(no-wall-clock)

pub fn stamp() -> Instant {
    Instant::now() // asan-lint: allow(no-wall-clock)
}
