//! Property-based tests (proptest) on the simulator's core data
//! structures and the benchmarks' algorithmic kernels.

use proptest::prelude::*;

use asan_apps::data;
use asan_apps::dfa::LiteralDfa;
use asan_apps::md5::{md5, md5_interleaved, Md5};
use asan_core::atb::Atb;
use asan_core::buffer::{line_schedule, BufId, DataBuffer};
use asan_mem::cache::{AccessKind, Cache, CacheConfig};
use asan_net::{packetize, reassemble, HandlerId, Header, NodeId};
use asan_sim::{EventQueue, SimTime};

proptest! {
    /// The event queue is a stable priority queue: popping yields times
    /// in non-decreasing order, FIFO among equal times.
    #[test]
    fn event_queue_is_stable_priority_queue(times in prop::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, (orig, idx))) = q.pop() {
            prop_assert_eq!(t, SimTime::from_ns(orig));
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated among equal times");
                }
            }
            last = Some((t, idx));
        }
    }

    /// A cache never reports a hit for a line it has not seen, and
    /// always hits a line just accessed (temporal safety of LRU).
    #[test]
    fn cache_hit_iff_recently_resident(addrs in prop::collection::vec(0u64..(1 << 16), 1..500)) {
        let mut c = Cache::new(CacheConfig {
            name: "prop",
            size_bytes: 1024,
            line_bytes: 32,
            assoc: 2,
        });
        use std::collections::HashSet;
        let mut ever: HashSet<u64> = HashSet::new();
        for &a in &addrs {
            let line = a / 32;
            let out = c.access(a, AccessKind::Read);
            if out.hit {
                prop_assert!(ever.contains(&line), "hit on never-seen line");
            }
            ever.insert(line);
            // Immediate re-access must hit.
            prop_assert!(c.access(a, AccessKind::Read).hit);
        }
    }

    /// Write-back integrity: every dirty line is either resident or was
    /// reported as a writeback exactly once.
    #[test]
    fn cache_never_loses_dirty_lines(addrs in prop::collection::vec(0u64..(1 << 14), 1..500)) {
        let mut c = Cache::new(CacheConfig {
            name: "prop",
            size_bytes: 512,
            line_bytes: 32,
            assoc: 2,
        });
        use std::collections::HashSet;
        let mut dirty: HashSet<u64> = HashSet::new();
        for &a in &addrs {
            let line_base = a / 32 * 32;
            let out = c.access(a, AccessKind::Write);
            if let Some(wb) = out.writeback {
                prop_assert!(dirty.remove(&wb), "write-back of non-dirty line {wb:#x}");
            }
            dirty.insert(line_base);
        }
        // Every remaining dirty line must still be resident.
        for &d in &dirty {
            prop_assert!(c.probe(d), "dirty line {d:#x} vanished");
        }
    }

    /// Packetize ∘ reassemble is the identity for any payload.
    #[test]
    fn packetize_reassemble_roundtrip(data in prop::collection::vec(any::<u8>(), 0..5000)) {
        let pkts = packetize(NodeId(1), NodeId(2), Some(HandlerId::new(7)), 0x1000, &data);
        let back = reassemble(&pkts).expect("in order");
        prop_assert_eq!(back, data);
    }

    /// Header encode/decode round-trips for all field values.
    #[test]
    fn header_roundtrip(src in any::<u16>(), dst in any::<u16>(), len in 0u16..=512,
                        hid in prop::option::of(0u8..64), addr in any::<u32>(), seq in any::<u32>()) {
        let h = Header {
            src: NodeId(src),
            dst: NodeId(dst),
            len,
            handler: hid.map(HandlerId::new),
            addr,
            seq,
        };
        prop_assert_eq!(Header::decode(&h.encode()).unwrap(), h);
    }

    /// The ATB translates exactly the mapped windows and deallocation
    /// frees exactly the windows below the given address.
    #[test]
    fn atb_translation_partial_order(windows in prop::collection::vec(0u32..64, 1..16), cut in 0u32..70) {
        let mut atb = Atb::new();
        let mut mapped = std::collections::HashMap::new();
        for (i, &w) in windows.iter().enumerate() {
            let base = w * 512;
            let old = atb.map(base, BufId(i as u8));
            if let Some(_prev) = old {
                // Direct-mapped conflict replaced an entry.
                mapped.retain(|&b, _| {
                    !(b != base && (b / 512) % 16 == (base / 512) % 16)
                });
            }
            mapped.insert(base, BufId(i as u8));
        }
        for (&base, &buf) in &mapped {
            prop_assert_eq!(atb.probe(base + 100), Some((buf, 100)));
        }
        let freed = atb.deallocate_below(cut * 512);
        for (&base, &buf) in &mapped {
            if base + 512 <= cut * 512 {
                prop_assert!(freed.contains(&buf));
                prop_assert_eq!(atb.probe(base), None);
            } else {
                prop_assert_eq!(atb.probe(base), Some((buf, 0)));
            }
        }
    }

    /// Data buffer line schedules are monotone and end exactly at the
    /// last-byte time.
    #[test]
    fn line_schedule_monotone(len in 1usize..=512, start in 0u64..1000, span in 1u64..2000) {
        let s0 = SimTime::from_ns(start);
        let s1 = SimTime::from_ns(start + span);
        let sched = line_schedule(len, s0, s1);
        prop_assert_eq!(sched.len(), len.div_ceil(32));
        for w in sched.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*sched.last().unwrap(), s1);
        // A buffer filled with this schedule reports the same times.
        let mut b = DataBuffer::new();
        b.fill(&vec![0xEE; len], &sched);
        prop_assert_eq!(b.all_valid_at(), Some(s1));
    }

    /// MD5 incremental updates equal one-shot hashing for any chunking.
    #[test]
    fn md5_chunking_invariance(data in prop::collection::vec(any::<u8>(), 0..4096),
                               cuts in prop::collection::vec(1usize..128, 0..20)) {
        let oneshot = md5(&data);
        let mut h = Md5::new();
        let mut rest: &[u8] = &data;
        for &c in &cuts {
            if rest.is_empty() { break; }
            let take = c.min(rest.len());
            h.update(&rest[..take]);
            rest = &rest[take..];
        }
        h.update(rest);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    /// K-way interleaved MD5 is deterministic and equals the explicit
    /// per-chain construction.
    #[test]
    fn md5_interleave_matches_manual(data in prop::collection::vec(any::<u8>(), 0..4096), k in 1usize..5) {
        let unit = 512;
        let fast = md5_interleaved(&data, k, unit);
        // Manual: distribute chunks round-robin.
        let mut chains: Vec<Vec<u8>> = vec![Vec::new(); k];
        for (i, chunk) in data.chunks(unit).enumerate() {
            chains[i % k].extend_from_slice(chunk);
        }
        let mut outer = Md5::new();
        for c in chains {
            outer.update(&md5(&c));
        }
        prop_assert_eq!(outer.finalize(), fast);
    }

    /// The literal DFA finds exactly the occurrences a naive scan finds.
    #[test]
    fn dfa_equals_naive(hay in prop::collection::vec(0u8..4, 0..2000)) {
        let pattern = [1u8, 0, 1];
        let dfa = LiteralDfa::new(&pattern);
        let naive = hay.windows(3).filter(|w| *w == pattern).count();
        prop_assert_eq!(dfa.count(&hay), naive);
    }

    /// Vector addition is commutative and associative on the reduction
    /// lanes.
    #[test]
    fn vector_add_abelian(a_seed in any::<u64>(), b_seed in any::<u64>()) {
        let mk = |s: u64| {
            let mut rng = asan_sim::SimRng::from_seed(s);
            let mut v = vec![0u8; 512];
            rng.fill_bytes(&mut v);
            v
        };
        let (a, b) = (mk(a_seed), mk(b_seed));
        let mut ab = a.clone();
        data::vector_add(&mut ab, &b);
        let mut ba = b.clone();
        data::vector_add(&mut ba, &a);
        prop_assert_eq!(ab, ba);
    }

    /// Sort bucketing maps every key to a valid node and respects the
    /// range order.
    #[test]
    fn sort_bucket_valid_and_ordered(keys in prop::collection::vec(prop::array::uniform10(any::<u8>()), 1..200),
                                     p in 1usize..16) {
        let mut pairs: Vec<(u16, usize)> = keys
            .iter()
            .map(|k| {
                let b = data::sort_bucket(k, p);
                prop_assert!(b < p);
                Ok((u16::from_be_bytes([k[0], k[1]]), b))
            })
            .collect::<Result<_, TestCaseError>>()?;
        pairs.sort();
        for w in pairs.windows(2) {
            prop_assert!(w[0].1 <= w[1].1, "bucket order violates key order");
        }
    }
}

proptest! {
    /// A link conserves serialization time: N equal packets arrive no
    /// faster than the wire allows, and arrivals are monotone.
    #[test]
    fn link_serialization_conserved(n in 1usize..100, wire in 16u64..2000) {
        use asan_net::link::{Link, LinkConfig};
        let cfg = LinkConfig::paper();
        let mut l = Link::new(cfg);
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let t = l.send(wire, SimTime::ZERO);
            l.note_drain(t.done);
            prop_assert!(t.done >= last, "arrival regressed");
            last = t.done;
        }
        let min_time = asan_sim::SimDuration::transfer(wire, cfg.bytes_per_sec) * n as u64;
        prop_assert!(
            last >= SimTime::ZERO + min_time,
            "{n} x {wire} B finished before the wire could carry them"
        );
        prop_assert_eq!(l.bytes_carried(), wire * n as u64);
    }

    /// A storage read's packet schedule covers exactly the requested
    /// bytes, is monotone, and respects the aggregate media rate.
    #[test]
    fn storage_schedule_sound(offset in 0u64..(1 << 20), len in 1u64..(1 << 20)) {
        use asan_io::storage::{Storage, StorageConfig};
        let cfg = StorageConfig::paper();
        let mut s = Storage::new(cfg);
        let sched = s.read_stream(offset, len, SimTime::ZERO);
        let total: u64 = sched.packet_len.iter().map(|&l| l as u64).sum();
        prop_assert_eq!(total, len, "bytes not conserved");
        for w in sched.packet_ready.windows(2) {
            prop_assert!(w[0] <= w[1], "schedule not monotone");
        }
        // Aggregate rate bound: both disks flat out.
        let aggregate = cfg.disk.bytes_per_sec * cfg.num_disks as u64;
        let min = asan_sim::SimDuration::transfer(len / 2, aggregate);
        prop_assert!(
            sched.complete >= SimTime::ZERO + min,
            "faster than the platters"
        );
    }

    /// The buffer administrator never exceeds its capacity: at any
    /// sampled instant the number of live buffers is at most the file
    /// size, and every allocation eventually succeeds.
    #[test]
    fn dba_capacity_respected(ops in prop::collection::vec((1u64..1000, 1u64..500), 1..100)) {
        use asan_core::dba::BufferAdmin;
        let mut a = BufferAdmin::new(4);
        let mut t = SimTime::ZERO;
        for (gap, hold) in ops {
            t += asan_sim::SimDuration::from_ns(gap);
            let (id, granted) = a.alloc(t);
            prop_assert!(granted >= t);
            a.release(id, granted + asan_sim::SimDuration::from_ns(hold));
            prop_assert!(a.busy_count(granted) <= 4);
        }
    }

    /// CPU accounting is exact: the busy/stall/idle breakdown always
    /// sums to the local clock, under any interleaving of operations.
    #[test]
    fn cpu_breakdown_conserves_time(ops in prop::collection::vec(0u8..5, 1..200)) {
        use asan_cpu::{Cpu, CpuConfig};
        let mut c = Cpu::new(CpuConfig::host());
        let mut addr = 0x1000_0000u64;
        for op in ops {
            match op {
                0 => c.compute(37),
                1 => c.load(addr),
                2 => c.store(addr + 64),
                3 => c.prefetch(addr + 128),
                _ => {
                    let t = c.now() + asan_sim::SimDuration::from_ns(100);
                    c.idle_until(t);
                }
            }
            addr += 4096;
        }
        prop_assert_eq!(c.breakdown().total(), c.now().since(SimTime::ZERO));
    }

    /// ustar headers always checksum-validate and store the size field
    /// correctly, for any name and size.
    #[test]
    fn ustar_header_valid(name_len in 1usize..99, size in 0u64..(1 << 33)) {
        use asan_apps::tar_fmt;
        let name: String = "f".repeat(name_len);
        let h = tar_fmt::ustar_header(&name, size, 12345);
        prop_assert!(tar_fmt::checksum_ok(&h));
        // Parse the octal size field back.
        let parsed = h[124..135]
            .iter()
            .fold(0u64, |acc, &b| acc * 8 + (b - b'0') as u64);
        prop_assert_eq!(parsed, size);
    }

    /// The MPEG frame scanner conserves bytes globally under any
    /// chunking: total segment bytes equal the stream length (up to a
    /// trailing incomplete header).
    #[test]
    fn frame_scanner_conserves_bytes(total in 1000usize..50_000, chunk in 7usize..4096) {
        use asan_apps::data::{mpeg_stream, FrameScanner};
        let stream = mpeg_stream(total);
        let mut sc = FrameScanner::new();
        let mut covered = 0usize;
        for c in stream.chunks(chunk) {
            covered += sc.feed(c).into_iter().map(|(_, n)| n).sum::<usize>();
        }
        prop_assert!(covered <= total);
        prop_assert!(total - covered < 16, "lost more than a header");
    }

    /// Fabric transmissions are causal: with non-decreasing ready times
    /// on one flow, arrivals are non-decreasing too.
    #[test]
    fn fabric_arrivals_monotone(sizes in prop::collection::vec(16u64..528, 1..100)) {
        use asan_net::topo::single_switch_cluster;
        let (mut f, hosts, tcas, _) = single_switch_cluster(1, 1);
        let mut ready = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for (i, w) in sizes.iter().enumerate() {
            ready += asan_sim::SimDuration::from_ns((i % 7) as u64 * 100);
            let d = f.transmit(*w, tcas[0], hosts[0], ready);
            prop_assert!(d.arrival >= last_arrival, "arrival regressed");
            prop_assert!(d.header_at <= d.arrival);
            prop_assert!(d.payload_start <= d.arrival);
            last_arrival = d.arrival;
        }
    }
}
