//! POSIX ustar header blocks.
//!
//! The Tar benchmark's host side "generates a header for each input
//! file" (§5); we build real 512-byte ustar headers (the format GNU tar
//! `-cf` writes), checksum and all, so the archive assembled in the
//! simulation is byte-correct.

/// Size of a tar header block.
pub const BLOCK: usize = 512;

/// Builds the 512-byte ustar header for a regular file.
///
/// # Panics
///
/// Panics if `name` exceeds the 100-byte ustar name field.
pub fn ustar_header(name: &str, size: u64, mtime: u64) -> [u8; BLOCK] {
    assert!(name.len() < 100, "name too long for ustar");
    let mut h = [0u8; BLOCK];
    h[..name.len()].copy_from_slice(name.as_bytes());
    write_octal(&mut h[100..108], 0o644); // mode
    write_octal(&mut h[108..116], 0); // uid
    write_octal(&mut h[116..124], 0); // gid
    write_octal12(&mut h[124..136], size);
    write_octal12(&mut h[136..148], mtime);
    h[156] = b'0'; // typeflag: regular file
    h[257..262].copy_from_slice(b"ustar");
    h[263..265].copy_from_slice(b"00");
    // Checksum: sum of all bytes with the checksum field as spaces.
    h[148..156].copy_from_slice(b"        ");
    let sum: u32 = h.iter().map(|&b| b as u32).sum();
    let chk = format!("{sum:06o}\0 ");
    h[148..156].copy_from_slice(chk.as_bytes());
    h
}

fn write_octal(field: &mut [u8], v: u64) {
    let s = format!("{v:0w$o}\0", w = field.len() - 1);
    field.copy_from_slice(s.as_bytes());
}

fn write_octal12(field: &mut [u8], v: u64) {
    let s = format!("{v:011o}\0");
    field.copy_from_slice(s.as_bytes());
}

/// Number of 512-byte data blocks a file of `size` occupies in a tar
/// stream (content is zero-padded to a block boundary).
pub fn data_blocks(size: u64) -> u64 {
    size.div_ceil(BLOCK as u64)
}

/// Total archive size for files of the given sizes: one header block
/// plus padded data per file, plus the two terminating zero blocks.
pub fn archive_size(sizes: &[u64]) -> u64 {
    let body: u64 = sizes
        .iter()
        .map(|&s| (1 + data_blocks(s)) * BLOCK as u64)
        .sum();
    body + 2 * BLOCK as u64
}

/// Validates a header block's checksum.
pub fn checksum_ok(h: &[u8; BLOCK]) -> bool {
    let stored = &h[148..156];
    let parsed = stored
        .iter()
        .take_while(|&&b| b != 0 && b != b' ')
        .fold(0u32, |acc, &b| acc * 8 + (b - b'0') as u32);
    let mut copy = *h;
    copy[148..156].copy_from_slice(b"        ");
    let sum: u32 = copy.iter().map(|&b| b as u32).sum();
    sum == parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_roundtrip() {
        let h = ustar_header("dir/file.bin", 123456, 1_000_000_000);
        assert_eq!(&h[..12], b"dir/file.bin");
        assert_eq!(h[12], 0);
        assert_eq!(&h[257..262], b"ustar");
        assert_eq!(h[156], b'0');
        // Size field: 123456 = 0o361100.
        assert_eq!(&h[124..136], b"00000361100\0");
    }

    #[test]
    fn checksum_validates() {
        let h = ustar_header("a", 1, 0);
        assert!(checksum_ok(&h));
        let mut broken = h;
        broken[0] = b'b';
        assert!(!checksum_ok(&broken));
    }

    #[test]
    fn archive_size_matches_tar_layout() {
        // Two files: 1 byte (1 data block) and 1024 bytes (2 blocks).
        let total = archive_size(&[1, 1024]);
        assert_eq!(total, (1 + 1 + 1 + 2 + 2) * 512);
        assert_eq!(data_blocks(0), 0);
        assert_eq!(data_blocks(512), 1);
        assert_eq!(data_blocks(513), 2);
    }

    #[test]
    #[should_panic(expected = "name too long")]
    fn long_name_rejected() {
        ustar_header(&"x".repeat(100), 0, 0);
    }
}
