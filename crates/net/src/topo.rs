//! Cluster topology and the switched fabric timing model.
//!
//! A topology is a graph of hosts, switches and TCAs joined by
//! full-duplex links. [`Fabric`] owns the per-direction [`Link`] state
//! and per-switch routing latency, and computes packet delivery times
//! with virtual cut-through forwarding: a switch begins forwarding as
//! soon as it has the header (plus the 100 ns routing latency of §4),
//! rather than after store-and-forward of the whole packet.
//!
//! Topologies come from two places: hand-wired [`TopologyBuilder`]
//! calls, or a declarative [`TopoSpec`] (single switch, fat tree,
//! explicit edge list) that also returns a [`TopoMap`] describing the
//! generated structure — which host hangs off which leaf, each
//! switch's parent, and the root — so higher layers can place handlers
//! without re-deriving the shape.
//!
//! Routing is deterministic shortest-path: one breadth-first search per
//! destination fills a dense next-hop table, visiting neighbors in
//! edge-insertion order so equal-length paths always resolve the same
//! way (see docs/DETERMINISM.md). Multi-hop packets pay per-link
//! credits at *each* hop; with [`TopoSpec`]-generated fabrics an
//! upstream link's credit is held until the packet has left the
//! *downstream* hop (chained backpressure), while hand-built and
//! single-switch fabrics keep the seed behavior of freeing the credit
//! at that hop's own arrival.
//!
//! Packet *data* is not carried here — the cluster layer moves the real
//! bytes; the fabric answers "when does it arrive, and what did it cost".

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Traffic;
use asan_sim::{SimDuration, SimTime};

use crate::link::{Link, LinkConfig, LinkTiming};
use crate::packet::NodeId;

/// What a node is; affects nothing in the fabric timing, but lets the
/// cluster attach the right component models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A compute node (host CPU + HCA).
    Host,
    /// A network switch (possibly active).
    Switch,
    /// A target channel adapter fronting the I/O subsystem.
    Tca,
}

/// Per-switch forwarding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Routing decision latency (100 ns in §4).
    pub routing_latency: SimDuration,
    /// Virtual cut-through (§4): forward as soon as the header has been
    /// routed. When disabled the switch stores the whole packet before
    /// forwarding (the classic baseline the paper's switch improves on).
    pub cut_through: bool,
}

impl SwitchSpec {
    /// The paper's switch: 100 ns routing latency, virtual cut-through.
    pub fn paper() -> Self {
        SwitchSpec {
            routing_latency: SimDuration::from_ns(100),
            cut_through: true,
        }
    }

    /// A store-and-forward variant for ablation.
    pub fn store_and_forward() -> Self {
        SwitchSpec {
            cut_through: false,
            ..SwitchSpec::paper()
        }
    }
}

/// Why a topology cannot be finalized into a [`Fabric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoError {
    /// The graph has no nodes at all.
    EmptyTopology,
    /// Some node cannot reach some other node.
    Disconnected {
        /// A node with no route…
        from: NodeId,
        /// …to this destination.
        to: NodeId,
    },
    /// The same unordered node pair was connected twice; parallel links
    /// would make shortest-path tie-breaking depend on insertion
    /// accidents, so they are rejected outright.
    DuplicateLink {
        /// One endpoint of the repeated pair.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A switch with zero connected ports: it can forward nothing and
    /// is always a spec bug.
    IsolatedSwitch(NodeId),
    /// A [`TopoSpec`] parameter is out of range (zero-radix fat tree,
    /// edge referencing an unknown node, …).
    BadSpec(&'static str),
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TopoError::EmptyTopology => write!(f, "topology has no nodes"),
            TopoError::Disconnected { from, to } => {
                write!(f, "topology is disconnected: {from} cannot reach {to}")
            }
            TopoError::DuplicateLink { a, b } => {
                write!(f, "duplicate link between {a} and {b}")
            }
            TopoError::IsolatedSwitch(s) => {
                write!(f, "switch {s} has zero connected ports")
            }
            TopoError::BadSpec(why) => write!(f, "bad topology spec: {why}"),
        }
    }
}

impl std::error::Error for TopoError {}

/// Builder for a cluster topology.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    switch_specs: Vec<Option<SwitchSpec>>,
    edges: Vec<(usize, usize, LinkConfig)>,
    hop_backpressure: bool,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    fn add_node(&mut self, kind: NodeKind, spec: Option<SwitchSpec>) -> NodeId {
        let id = NodeId(u16::try_from(self.kinds.len()).expect("node count fits u16"));
        self.kinds.push(kind);
        self.switch_specs.push(spec);
        id
    }

    /// Adds a host node.
    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host, None)
    }

    /// Adds a switch node.
    pub fn add_switch(&mut self, spec: SwitchSpec) -> NodeId {
        self.add_node(NodeKind::Switch, Some(spec))
    }

    /// Adds a TCA node.
    pub fn add_tca(&mut self) -> NodeId {
        self.add_node(NodeKind::Tca, None)
    }

    /// Connects two nodes with a full-duplex link (one [`Link`] per
    /// direction, both using `cfg`).
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> &mut Self {
        assert!((a.0 as usize) < self.kinds.len(), "unknown node {a}");
        assert!((b.0 as usize) < self.kinds.len(), "unknown node {b}");
        assert_ne!(a, b, "self-loop");
        self.edges.push((a.0 as usize, b.0 as usize, cfg));
        self
    }

    /// Selects the credit-drain model for multi-hop routes. `false`
    /// (the default, and the seed behavior every single-switch golden
    /// digest is pinned to) frees each hop's credit at that hop's own
    /// arrival; `true` chains the drain to the packet leaving the
    /// *next* hop, so congestion on a downstream link backpressures
    /// upstream senders hop by hop.
    pub fn set_hop_backpressure(&mut self, on: bool) -> &mut Self {
        self.hop_backpressure = on;
        self
    }

    /// Finalizes into a [`Fabric`], computing deterministic
    /// shortest-path routes (BFS per destination, neighbors visited in
    /// edge-insertion order).
    ///
    /// # Errors
    ///
    /// [`TopoError::EmptyTopology`] for a node-less graph,
    /// [`TopoError::DuplicateLink`] if an unordered node pair is
    /// connected twice, [`TopoError::IsolatedSwitch`] for a switch with
    /// no ports, and [`TopoError::Disconnected`] if any node cannot
    /// reach any other.
    pub fn try_build(self) -> Result<Fabric, TopoError> {
        let n = self.kinds.len();
        if n == 0 {
            return Err(TopoError::EmptyTopology);
        }
        let mut seen_pairs = BTreeSet::new();
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (neighbor, link idx)
        let mut links = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b, cfg) in &self.edges {
            if !seen_pairs.insert((a.min(b), a.max(b))) {
                return Err(TopoError::DuplicateLink {
                    a: NodeId(a as u16),
                    b: NodeId(b as u16),
                });
            }
            let ab = links.len();
            links.push(Link::new(cfg));
            let ba = links.len();
            links.push(Link::new(cfg));
            adj[a].push((b, ab));
            adj[b].push((a, ba));
        }
        if n > 1 {
            for (i, kind) in self.kinds.iter().enumerate() {
                if *kind == NodeKind::Switch && adj[i].is_empty() {
                    return Err(TopoError::IsolatedSwitch(NodeId(i as u16)));
                }
            }
        }
        // BFS from every destination fills the dense next-hop table
        // `next_hop[from * n + dst] = (neighbor, link)`; `NO_ROUTE`
        // marks from == dst. 8 bytes per entry keeps thousand-node
        // fabrics in tens of megabytes.
        let mut next_hop = vec![NO_ROUTE; n * n];
        for dst in 0..n {
            let mut visited = vec![false; n];
            let mut q = VecDeque::new();
            visited[dst] = true;
            q.push_back(dst);
            while let Some(u) = q.pop_front() {
                for &(v, _) in &adj[u] {
                    if !visited[v] {
                        visited[v] = true;
                        // First hop from v toward dst goes to u.
                        let link = adj[v]
                            .iter()
                            .find(|&&(nb, _)| nb == u)
                            .map(|&(_, l)| l)
                            .expect("symmetric adjacency");
                        next_hop[v * n + dst] = (u as u32, link as u32);
                        q.push_back(v);
                    }
                }
            }
            for v in 0..n {
                if v != dst && next_hop[v * n + dst] == NO_ROUTE {
                    return Err(TopoError::Disconnected {
                        from: NodeId(v as u16),
                        to: NodeId(dst as u16),
                    });
                }
            }
        }
        Ok(Fabric {
            kinds: self.kinds,
            switch_specs: self.switch_specs,
            links,
            next_hop,
            hop_backpressure: self.hop_backpressure,
            traffic: vec![Traffic::default(); n],
        })
    }

    /// Finalizes into a [`Fabric`], computing shortest-path routes.
    ///
    /// # Panics
    ///
    /// Panics on any [`TopoError`] — most commonly a disconnected graph
    /// (every node must reach every other node).
    pub fn build(self) -> Fabric {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// `next_hop` sentinel for "no route" (only ever `from == dst`).
const NO_ROUTE: (u32, u32) = (u32::MAX, u32::MAX);

/// A declarative topology: what to generate, plus the link/switch
/// parameters and credit-drain model to generate it with. `build`
/// returns both the [`Fabric`] and a [`TopoMap`] describing the shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoSpec {
    kind: TopoKind,
    hop_backpressure: bool,
    switch: SwitchSpec,
    link: LinkConfig,
}

/// The topology families a [`TopoSpec`] can generate.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TopoKind {
    /// All hosts and TCAs on one switch (the paper's §4 cluster).
    SingleSwitch { hosts: usize, tcas: usize },
    /// A fat tree of `radix`-port switches: `radix/2` hosts per leaf,
    /// `radix/2`-way aggregation per upper level, TCAs at the root.
    FatTree {
        radix: usize,
        hosts: usize,
        tcas: usize,
    },
    /// An explicit node/edge list (Clos meshes, irregular testbeds).
    Explicit {
        kinds: Vec<NodeKind>,
        edges: Vec<(u16, u16)>,
    },
}

impl TopoSpec {
    /// The paper's canonical cluster: `hosts` hosts and `tcas` TCAs on
    /// one switch. Node order: switch, hosts, TCAs (the seed order all
    /// single-switch golden digests are pinned to). Keeps the seed's
    /// endpoint-drain credit model — on a one-switch fabric the two
    /// models only differ on host→switch→host transits, and the pinned
    /// digests predate chained drains.
    pub fn single_switch(hosts: usize, tcas: usize) -> Self {
        TopoSpec {
            kind: TopoKind::SingleSwitch { hosts, tcas },
            hop_backpressure: false,
            switch: SwitchSpec::paper(),
            link: LinkConfig::paper(),
        }
    }

    /// A fat tree of `radix`-port switches: `radix/2` of each leaf's
    /// ports face hosts, and each level aggregates `radix/2`-way into
    /// the next until a single root remains; TCAs attach to the root.
    /// Node order: leaf switches, hosts, upper switch levels bottom-up,
    /// TCAs. Chained per-hop credit drains are on by default.
    pub fn fat_tree(radix: usize, hosts: usize, tcas: usize) -> Self {
        TopoSpec {
            kind: TopoKind::FatTree { radix, hosts, tcas },
            hop_backpressure: true,
            switch: SwitchSpec::paper(),
            link: LinkConfig::paper(),
        }
    }

    /// An explicit topology: `kinds[i]` is node `i`'s kind, `edges` are
    /// full-duplex links in insertion order. Needs at least one switch
    /// (the [`TopoMap`] root); hosts must attach directly to a switch.
    pub fn explicit(kinds: Vec<NodeKind>, edges: Vec<(u16, u16)>) -> Self {
        TopoSpec {
            kind: TopoKind::Explicit { kinds, edges },
            hop_backpressure: true,
            switch: SwitchSpec::paper(),
            link: LinkConfig::paper(),
        }
    }

    /// Reverts to the seed's endpoint-drain credit model (each hop's
    /// credit frees at that hop's own arrival). The legacy reduction
    /// tree is pinned to this; new fabrics should keep chained drains.
    pub fn endpoint_drain(mut self) -> Self {
        self.hop_backpressure = false;
        self
    }

    /// Replaces the switch parameters used for every generated switch.
    pub fn with_switch(mut self, spec: SwitchSpec) -> Self {
        self.switch = spec;
        self
    }

    /// Replaces the link parameters used for every generated link.
    pub fn with_link(mut self, cfg: LinkConfig) -> Self {
        self.link = cfg;
        self
    }

    /// Canonical label for bench/CI naming: `single-switch`,
    /// `fat-tree-r<radix>`, `explicit`.
    pub fn label(&self) -> String {
        match &self.kind {
            TopoKind::SingleSwitch { .. } => "single-switch".to_string(),
            TopoKind::FatTree { radix, .. } => format!("fat-tree-r{radix}"),
            TopoKind::Explicit { .. } => "explicit".to_string(),
        }
    }

    /// Generates the topology as a [`TopologyBuilder`] (for callers
    /// that need to finish wiring themselves) plus its [`TopoMap`].
    ///
    /// # Errors
    ///
    /// [`TopoError::BadSpec`] for out-of-range parameters (fat-tree
    /// radix below 4, explicit edges referencing unknown nodes, a host
    /// not attached to any switch, …).
    pub fn try_builder(&self) -> Result<(TopologyBuilder, TopoMap), TopoError> {
        match &self.kind {
            TopoKind::SingleSwitch { hosts, tcas } => self.build_single(*hosts, *tcas),
            TopoKind::FatTree { radix, hosts, tcas } => self.build_fat_tree(*radix, *hosts, *tcas),
            TopoKind::Explicit { kinds, edges } => self.build_explicit(kinds, edges),
        }
    }

    /// [`Self::try_builder`], panicking on a bad spec.
    ///
    /// # Panics
    ///
    /// Panics on any [`TopoError`].
    pub fn builder(&self) -> (TopologyBuilder, TopoMap) {
        self.try_builder().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Generates the topology and finalizes it into a routed
    /// [`Fabric`].
    ///
    /// # Errors
    ///
    /// Any [`TopoError`] from the spec or from route construction.
    pub fn try_build(&self) -> Result<(Fabric, TopoMap), TopoError> {
        let (b, map) = self.try_builder()?;
        Ok((b.try_build()?, map))
    }

    /// [`Self::try_build`], panicking on error.
    ///
    /// # Panics
    ///
    /// Panics on any [`TopoError`].
    pub fn build(&self) -> (Fabric, TopoMap) {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    fn build_single(
        &self,
        hosts: usize,
        tcas: usize,
    ) -> Result<(TopologyBuilder, TopoMap), TopoError> {
        let mut b = TopologyBuilder::new();
        b.set_hop_backpressure(self.hop_backpressure);
        let sw = b.add_switch(self.switch);
        let host_ids: Vec<NodeId> = (0..hosts).map(|_| b.add_host()).collect();
        let tca_ids: Vec<NodeId> = (0..tcas).map(|_| b.add_tca()).collect();
        for &h in &host_ids {
            b.connect(h, sw, self.link);
        }
        for &t in &tca_ids {
            b.connect(t, sw, self.link);
        }
        let map = TopoMap {
            host_leaf: vec![sw; hosts],
            hosts: host_ids,
            tcas: tca_ids,
            switches: vec![sw],
            parent: BTreeMap::new(),
            root: sw,
        };
        Ok((b, map))
    }

    fn build_fat_tree(
        &self,
        radix: usize,
        hosts: usize,
        tcas: usize,
    ) -> Result<(TopologyBuilder, TopoMap), TopoError> {
        if radix < 4 {
            // half = radix/2 must be >= 2 or the aggregation loop can
            // never converge to a single root.
            return Err(TopoError::BadSpec("fat-tree radix must be at least 4"));
        }
        if hosts == 0 {
            return Err(TopoError::BadSpec("fat-tree needs at least one host"));
        }
        let half = radix / 2;
        let mut b = TopologyBuilder::new();
        b.set_hop_backpressure(self.hop_backpressure);
        let n_leaves = hosts.div_ceil(half);
        let leaves: Vec<NodeId> = (0..n_leaves).map(|_| b.add_switch(self.switch)).collect();
        let mut host_ids = Vec::with_capacity(hosts);
        let mut host_leaf = Vec::with_capacity(hosts);
        for i in 0..hosts {
            let h = b.add_host();
            let leaf = leaves[i / half];
            b.connect(h, leaf, self.link);
            host_ids.push(h);
            host_leaf.push(leaf);
        }
        // Build the switch tree upward, `half`-way aggregation per level.
        let mut parent = BTreeMap::new();
        let mut level = leaves.clone();
        let mut switches = leaves;
        while level.len() > 1 {
            let n_up = level.len().div_ceil(half);
            let ups: Vec<NodeId> = (0..n_up).map(|_| b.add_switch(self.switch)).collect();
            for (i, &sw) in level.iter().enumerate() {
                let up = ups[i / half];
                b.connect(sw, up, self.link);
                parent.insert(sw, up);
            }
            switches.extend(ups.iter().copied());
            level = ups;
        }
        let root = level[0];
        let tca_ids: Vec<NodeId> = (0..tcas).map(|_| b.add_tca()).collect();
        for &t in &tca_ids {
            b.connect(t, root, self.link);
        }
        let map = TopoMap {
            hosts: host_ids,
            tcas: tca_ids,
            switches,
            host_leaf,
            parent,
            root,
        };
        Ok((b, map))
    }

    fn build_explicit(
        &self,
        kinds: &[NodeKind],
        edges: &[(u16, u16)],
    ) -> Result<(TopologyBuilder, TopoMap), TopoError> {
        if kinds.is_empty() {
            return Err(TopoError::EmptyTopology);
        }
        let mut b = TopologyBuilder::new();
        b.set_hop_backpressure(self.hop_backpressure);
        for k in kinds {
            match k {
                NodeKind::Host => b.add_host(),
                NodeKind::Switch => b.add_switch(self.switch),
                NodeKind::Tca => b.add_tca(),
            };
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); kinds.len()];
        for &(a, bn) in edges {
            let (ai, bi) = (a as usize, bn as usize);
            if ai >= kinds.len() || bi >= kinds.len() {
                return Err(TopoError::BadSpec("edge references unknown node"));
            }
            if ai == bi {
                return Err(TopoError::BadSpec("self-loop edge"));
            }
            adj[ai].push(bi);
            adj[bi].push(ai);
            b.connect(NodeId(a), NodeId(bn), self.link);
        }
        let mut hosts = Vec::new();
        let mut tcas = Vec::new();
        let mut switches = Vec::new();
        for (i, k) in kinds.iter().enumerate() {
            let id = NodeId(i as u16);
            match k {
                NodeKind::Host => hosts.push(id),
                NodeKind::Tca => tcas.push(id),
                NodeKind::Switch => switches.push(id),
            }
        }
        if switches.is_empty() {
            return Err(TopoError::BadSpec(
                "explicit topology needs at least one switch",
            ));
        }
        // Each host's leaf: its first switch neighbor, edge order.
        let mut host_leaf = Vec::with_capacity(hosts.len());
        for &h in &hosts {
            let leaf = adj[h.0 as usize]
                .iter()
                .copied()
                .find(|&nb| kinds[nb] == NodeKind::Switch)
                .ok_or(TopoError::BadSpec("host must attach directly to a switch"))?;
            host_leaf.push(NodeId(leaf as u16));
        }
        // Root: the switch with minimum eccentricity over hosts (ties
        // break to the lowest id) — the natural rendezvous for
        // root-placement policies on irregular graphs.
        let root = switches
            .iter()
            .copied()
            .map(|s| (eccentricity(&adj, s.0 as usize, &hosts), s))
            .min_by_key(|&(ecc, s)| (ecc, s.0))
            .map(|(_, s)| s)
            .expect("at least one switch");
        // Parent chains: BFS over the switch-only subgraph from the
        // root, neighbors in edge order. Switches only reachable
        // through a host keep no parent (they are their own apex).
        let mut parent = BTreeMap::new();
        let mut visited = vec![false; kinds.len()];
        visited[root.0 as usize] = true;
        let mut q = VecDeque::from([root.0 as usize]);
        while let Some(u) = q.pop_front() {
            for &v in &adj[u] {
                if kinds[v] == NodeKind::Switch && !visited[v] {
                    visited[v] = true;
                    parent.insert(NodeId(v as u16), NodeId(u as u16));
                    q.push_back(v);
                }
            }
        }
        Ok((
            b,
            TopoMap {
                hosts,
                tcas,
                switches,
                host_leaf,
                parent,
                root,
            },
        ))
    }
}

/// Max BFS distance from `start` to any of `targets` (`usize::MAX` when
/// some target is unreachable).
fn eccentricity(adj: &[Vec<usize>], start: usize, targets: &[NodeId]) -> usize {
    let mut dist = vec![usize::MAX; adj.len()];
    dist[start] = 0;
    let mut q = VecDeque::from([start]);
    while let Some(u) = q.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                q.push_back(v);
            }
        }
    }
    targets
        .iter()
        .map(|t| dist[t.0 as usize])
        .max()
        .unwrap_or(0)
}

/// Structure of a [`TopoSpec`]-generated topology, for layers that
/// place computation on it (handler placement, aggregation trees)
/// without re-deriving the shape from raw routes.
#[derive(Debug, Clone)]
pub struct TopoMap {
    /// Host node ids, in creation order.
    pub hosts: Vec<NodeId>,
    /// TCA node ids, in creation order.
    pub tcas: Vec<NodeId>,
    /// All switch ids, leaves first then upper levels bottom-up.
    pub switches: Vec<NodeId>,
    /// `host_leaf[i]` is the switch `hosts[i]` attaches to.
    pub host_leaf: Vec<NodeId>,
    /// Each non-root switch's parent in the aggregation tree.
    pub parent: BTreeMap<NodeId, NodeId>,
    /// The apex switch (single switch: the switch; fat tree: the top of
    /// the tree; explicit: minimum host eccentricity, ties to lowest id).
    pub root: NodeId,
}

impl TopoMap {
    /// The leaf switch `host` attaches to, if `host` is a known host.
    pub fn leaf_of(&self, host: NodeId) -> Option<NodeId> {
        self.hosts
            .iter()
            .position(|&h| h == host)
            .map(|i| self.host_leaf[i])
    }

    /// The parent chain from `sw` (inclusive) to its apex (the root, or
    /// the last switch with a recorded parent).
    pub fn chain_to_root(&self, sw: NodeId) -> Vec<NodeId> {
        let mut chain = vec![sw];
        let mut cur = sw;
        while let Some(&up) = self.parent.get(&cur) {
            chain.push(up);
            cur = up;
        }
        chain
    }

    /// The distinct leaf switches hosts attach to, ascending.
    pub fn leaves(&self) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self.host_leaf.iter().copied().collect();
        set.into_iter().collect()
    }
}

/// One link traversal of a packet's route, as recorded by
/// [`Fabric::transmit_recorded`] for the flight recorder: which link
/// carried the bytes, between which nodes, how long the send waited
/// before the link accepted it, and the exact wire occupancy window.
///
/// Recording is observation-only — the timings are the ones the
/// ordinary [`Fabric::transmit`] computes; a recorded transmit is
/// bit-identical to an unrecorded one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Index of the link direction that carried the packet (stable for
    /// a given topology: links are numbered in edge-insertion order,
    /// two directions per edge).
    pub link: u32,
    /// The sending node of this hop.
    pub from: NodeId,
    /// The receiving node of this hop.
    pub to: NodeId,
    /// How long the send waited after the data was ready at this hop
    /// before the first byte left — credit stalls, a busy wire, or an
    /// outage deferral.
    pub wait: SimDuration,
    /// When the first byte left the sender.
    pub start: SimTime,
    /// When serialization finished (the wire freed; excludes
    /// propagation).
    pub busy_until: SimTime,
    /// When the last byte arrived at the receiver.
    pub done: SimTime,
}

/// Result of injecting one packet into the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the header is available at the destination (active dispatch
    /// may begin).
    pub header_at: SimTime,
    /// When the first payload byte is available at the destination.
    pub payload_start: SimTime,
    /// When the last byte arrived.
    pub arrival: SimTime,
    /// Number of links traversed.
    pub hops: usize,
}

impl Delivery {
    /// Arrival time of payload byte `k` of a `len`-byte payload,
    /// linearly interpolated over the final-link serialization.
    pub fn byte_at(&self, k: u64, len: u64) -> SimTime {
        if len == 0 {
            return self.arrival;
        }
        let span = self.arrival.since(self.payload_start).as_ps();
        let frac = (span as u128 * (k.min(len) as u128)) / (len as u128);
        self.payload_start + SimDuration::from_ps(frac as u64)
    }
}

/// The switched fabric: links, routes, and per-node traffic accounting.
///
/// The first four fields are static configuration: they are fixed by
/// the [`TopologyBuilder`]/[`TopoSpec`] that produced this fabric and
/// never change during a run, so `snapshot`/`restore` intentionally
/// skip them — a restoring process rebuilds the identical topology from
/// the same spec before calling [`Fabric::restore`] (which verifies the
/// link and node counts match). Only the link occupancy and traffic
/// counters below are dynamic state.
#[derive(Debug)]
pub struct Fabric {
    kinds: Vec<NodeKind>,                  // asan-lint: allow(snapshot-completeness)
    switch_specs: Vec<Option<SwitchSpec>>, // asan-lint: allow(snapshot-completeness)
    links: Vec<Link>,
    /// `next_hop[from * n + dst] = (neighbor node, link index)`, dense,
    /// [`NO_ROUTE`] on the diagonal.
    next_hop: Vec<(u32, u32)>, // asan-lint: allow(snapshot-completeness)
    /// Credit-drain model (see [`TopologyBuilder::set_hop_backpressure`]).
    hop_backpressure: bool, // asan-lint: allow(snapshot-completeness)
    traffic: Vec<Traffic>,
}

impl Fabric {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0 as usize]
    }

    /// Whether multi-hop routes chain credit drains to the downstream
    /// hop (see [`TopologyBuilder::set_hop_backpressure`]).
    pub fn hop_backpressure(&self) -> bool {
        self.hop_backpressure
    }

    /// Bytes in/out observed at `node`'s network interface.
    pub fn traffic(&self, node: NodeId) -> Traffic {
        self.traffic[node.0 as usize]
    }

    /// The routing-table entry `(neighbor, link)` for the first hop
    /// from `from` toward `dst`; `None` when `from == dst`.
    #[inline]
    fn route(&self, from: usize, dst: usize) -> Option<(usize, usize)> {
        let (nb, link) = self.next_hop[from * self.kinds.len() + dst];
        if nb == u32::MAX {
            None
        } else {
            Some((nb as usize, link as usize))
        }
    }

    /// Number of hops on the route from `src` to `dst` (0 if equal).
    pub fn path_len(&self, src: NodeId, dst: NodeId) -> usize {
        let mut cur = src.0 as usize;
        let dst = dst.0 as usize;
        let mut hops = 0;
        while cur != dst {
            let (nb, _) = self.route(cur, dst).expect("connected");
            cur = nb;
            hops += 1;
        }
        hops
    }

    /// Builds the flight-recorder record for one link traversal.
    /// `entry_ready` is the instant the data was ready to go out on
    /// this hop (routing latency already applied), i.e. the `ready`
    /// value handed to [`Link::send`].
    fn hop_record(
        &self,
        link_idx: usize,
        from: usize,
        to: usize,
        entry_ready: SimTime,
        timing: LinkTiming,
    ) -> Hop {
        // `done` includes propagation; the wire itself frees when
        // serialization ends.
        let busy_until = timing.done - self.links[link_idx].config().propagation;
        Hop {
            link: link_idx as u32,
            from: NodeId(from as u16),
            to: NodeId(to as u16),
            wait: timing.start.since(entry_ready),
            start: timing.start,
            busy_until,
            done: timing.done,
        }
    }

    /// Injects a packet of `wire_bytes` from `src` to `dst`, with the
    /// data ready at the source NIC at `ready`. Returns delivery timing
    /// and records traffic at both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn transmit(
        &mut self,
        wire_bytes: u64,
        src: NodeId,
        dst: NodeId,
        ready: SimTime,
    ) -> Delivery {
        self.transmit_recorded(wire_bytes, src, dst, ready, None)
    }

    /// [`Fabric::transmit`], additionally appending one [`Hop`] record
    /// per link traversal to `hops_out` (when given). Recording is
    /// purely observational: the returned [`Delivery`] and all link
    /// state mutations are bit-identical to an unrecorded transmit.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn transmit_recorded(
        &mut self,
        wire_bytes: u64,
        src: NodeId,
        dst: NodeId,
        ready: SimTime,
        mut hops_out: Option<&mut Vec<Hop>>,
    ) -> Delivery {
        assert_ne!(src, dst, "transmit to self");
        if self.hop_backpressure {
            return self.transmit_chained(wire_bytes, src, dst, ready, hops_out);
        }
        let dst_idx = dst.0 as usize;
        let mut cur = src.0 as usize;
        let mut header_ready = ready;
        let mut hops = 0;
        let mut last_timing: Option<LinkTiming> = None;
        while cur != dst_idx {
            let (nb, link_idx) = self.route(cur, dst_idx).expect("connected");
            // Intermediate switches add their routing latency before the
            // header can go out; endpoints inject directly. A
            // store-and-forward switch additionally waits for the whole
            // packet before routing it.
            if hops > 0 {
                if let Some(spec) = self.switch_specs[cur] {
                    if !spec.cut_through {
                        header_ready = last_timing.expect("hop > 0").done;
                    }
                    header_ready += spec.routing_latency;
                }
            }
            let timing = self.links[link_idx].send(wire_bytes, header_ready);
            // Endpoint-drain model (seed behavior): the receiver's input
            // buffer frees at the packet's own arrival on this hop.
            self.links[link_idx].note_drain(timing.done);
            if let Some(out) = hops_out.as_deref_mut() {
                out.push(self.hop_record(link_idx, cur, nb, header_ready, timing));
            }
            header_ready = timing.header_at;
            last_timing = Some(timing);
            cur = nb;
            hops += 1;
        }
        let t = last_timing.expect("at least one hop");
        self.traffic[src.0 as usize].record_out(wire_bytes);
        self.traffic[dst_idx].record_in(wire_bytes);
        Delivery {
            header_at: t.header_at,
            payload_start: t.header_at,
            arrival: t.done,
            hops,
        }
    }

    /// Multi-hop transmit with chained credit drains: hop `i`'s credit
    /// (the downstream switch's input buffer) is held until the packet
    /// has fully left hop `i + 1`, so a congested downstream link
    /// backpressures every upstream link on the path. The final hop
    /// drains at the endpoint's own arrival, as before.
    fn transmit_chained(
        &mut self,
        wire_bytes: u64,
        src: NodeId,
        dst: NodeId,
        ready: SimTime,
        mut hops_out: Option<&mut Vec<Hop>>,
    ) -> Delivery {
        let dst_idx = dst.0 as usize;
        let mut cur = src.0 as usize;
        let mut header_ready = ready;
        let mut path: Vec<(usize, LinkTiming)> = Vec::with_capacity(8);
        while cur != dst_idx {
            let (nb, link_idx) = self.route(cur, dst_idx).expect("connected");
            if !path.is_empty() {
                if let Some(spec) = self.switch_specs[cur] {
                    if !spec.cut_through {
                        header_ready = path.last().expect("hop > 0").1.done;
                    }
                    header_ready += spec.routing_latency;
                }
            }
            let timing = self.links[link_idx].send(wire_bytes, header_ready);
            if let Some(out) = hops_out.as_deref_mut() {
                out.push(self.hop_record(link_idx, cur, nb, header_ready, timing));
            }
            header_ready = timing.header_at;
            path.push((link_idx, timing));
            cur = nb;
        }
        // Shortest paths never revisit a link, so noting every drain
        // after the walk is equivalent to noting each as soon as its
        // drain time is known.
        for i in 0..path.len() {
            let drain = if i + 1 < path.len() {
                path[i + 1].1.done
            } else {
                path[i].1.done
            };
            self.links[path[i].0].note_drain(drain);
        }
        let t = path.last().expect("at least one hop").1;
        self.traffic[src.0 as usize].record_out(wire_bytes);
        self.traffic[dst_idx].record_in(wire_bytes);
        Delivery {
            header_at: t.header_at,
            payload_start: t.header_at,
            arrival: t.done,
            hops: path.len(),
        }
    }

    /// Total bytes carried by all links (each hop counts).
    pub fn total_link_bytes(&self) -> u64 {
        self.links.iter().map(Link::bytes_carried).sum()
    }

    /// Total credit stalls across all links.
    pub fn total_credit_stalls(&self) -> u64 {
        self.links.iter().map(Link::credit_stalls).sum()
    }

    /// The distribution of credit-stall durations, merged over every
    /// link direction in the fabric.
    pub fn credit_stall_histogram(&self) -> asan_sim::hist::LogHistogram {
        let mut h = asan_sim::hist::LogHistogram::new();
        for l in &self.links {
            h.merge(l.credit_stall_hist());
        }
        h
    }

    /// Injects a transient link-down window `[from, until)` on every
    /// link in the fabric (a fabric-wide brown-out; see
    /// [`Link::inject_outage`]).
    pub fn inject_outage(&mut self, from: SimTime, until: SimTime) {
        for l in &mut self.links {
            l.inject_outage(from, until);
        }
    }

    /// Tightens the credit limit on every link (models receivers
    /// advertising fewer buffers; see [`Link::restrict_credits`]).
    pub fn restrict_credits(&mut self, credits: usize) {
        for l in &mut self.links {
            l.restrict_credits(credits);
        }
    }

    /// Total sends deferred by injected outage windows, across links.
    pub fn total_outage_deferrals(&self) -> u64 {
        self.links.iter().map(Link::outage_deferrals).sum()
    }

    /// Writes the fabric's dynamic state: every link direction (wire
    /// occupancy, credits, in-flight drains, counters) and per-node
    /// traffic accounting. The topology itself (kinds, routes, drain
    /// model) is static and rebuilt by the caller.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.section("fabric");
        w.usize(self.links.len());
        for l in &self.links {
            l.snapshot(w);
        }
        w.usize(self.traffic.len());
        for t in &self.traffic {
            t.snapshot(w);
        }
    }

    /// Overwrites this fabric's dynamic state from a snapshot taken of
    /// a fabric built from the same topology.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("fabric")?;
        let links = r.usize()?;
        if links != self.links.len() {
            return Err(SnapError::Malformed("fabric link count mismatch"));
        }
        for l in &mut self.links {
            l.restore(r)?;
        }
        let nodes = r.usize()?;
        if nodes != self.traffic.len() {
            return Err(SnapError::Malformed("fabric node count mismatch"));
        }
        for t in &mut self.traffic {
            *t = Traffic::restore(r)?;
        }
        Ok(())
    }
}

/// Convenience: the paper's canonical single-switch cluster — `hosts`
/// host nodes and `tcas` TCA nodes all attached to one switch. Returns
/// `(fabric, host_ids, tca_ids, switch_id)`.
pub fn single_switch_cluster(
    hosts: usize,
    tcas: usize,
) -> (Fabric, Vec<NodeId>, Vec<NodeId>, NodeId) {
    let (fabric, map) = TopoSpec::single_switch(hosts, tcas).build();
    (fabric, map.hosts, map.tcas, map.root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_paths() {
        let (f, hosts, tcas, sw) = single_switch_cluster(2, 1);
        assert_eq!(f.num_nodes(), 4);
        assert_eq!(f.path_len(hosts[0], hosts[1]), 2);
        assert_eq!(f.path_len(hosts[0], sw), 1);
        assert_eq!(f.path_len(tcas[0], hosts[0]), 2);
        assert_eq!(f.kind(sw), NodeKind::Switch);
        assert_eq!(f.kind(hosts[0]), NodeKind::Host);
        assert_eq!(f.kind(tcas[0]), NodeKind::Tca);
        assert!(!f.hop_backpressure());
    }

    #[test]
    fn one_hop_delivery_timing() {
        let (mut f, hosts, _, sw) = single_switch_cluster(2, 1);
        let d = f.transmit(528, hosts[0], sw, SimTime::ZERO);
        assert_eq!(d.hops, 1);
        assert_eq!(d.arrival.as_ns(), 538); // 528 ns serialization + 10 ns prop
        assert_eq!(d.header_at.as_ns(), 26);
    }

    #[test]
    fn two_hop_delivery_adds_routing_latency() {
        let (mut f, hosts, _, _) = single_switch_cluster(2, 1);
        let d = f.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
        assert_eq!(d.hops, 2);
        // Hop 1 header at 26 ns; +100 ns routing; hop 2: 528 ns ser +10 prop.
        assert_eq!(d.arrival.as_ns(), 26 + 100 + 528 + 10);
    }

    #[test]
    fn recorded_transmit_reports_hops_without_changing_delivery() {
        let (mut f, hosts, _, sw) = single_switch_cluster(2, 1);
        let (mut g, ghosts, _, _) = single_switch_cluster(2, 1);
        let mut hops = Vec::new();
        let d = f.transmit_recorded(528, hosts[0], hosts[1], SimTime::ZERO, Some(&mut hops));
        let plain = g.transmit(528, ghosts[0], ghosts[1], SimTime::ZERO);
        assert_eq!(d, plain, "recording must not perturb timing");
        assert_eq!(hops.len(), d.hops);
        // Hop 1: host0 → switch, wire busy for the 528 ns serialization,
        // arrival 10 ns of propagation later.
        assert_eq!(hops[0].from, hosts[0]);
        assert_eq!(hops[0].to, sw);
        assert_eq!(hops[0].wait, SimDuration::ZERO);
        assert_eq!(hops[0].start, SimTime::ZERO);
        assert_eq!(hops[0].busy_until.as_ns(), 528);
        assert_eq!(hops[0].done.as_ns(), 538);
        // Hop 2: cut-through switch forwards the header (26 ns) plus
        // 100 ns routing latency before the next wire starts.
        assert_eq!(hops[1].from, sw);
        assert_eq!(hops[1].to, hosts[1]);
        assert_eq!(hops[1].start.as_ns(), 126);
        assert_eq!(hops[1].busy_until.as_ns(), 126 + 528);
        assert_eq!(hops[1].done.as_ns(), 126 + 538);
        assert_ne!(hops[0].link, hops[1].link);
        assert_eq!(hops[1].done, d.arrival);
    }

    #[test]
    fn recorded_transmit_covers_chained_routes_and_stalls() {
        let spec = TopoSpec::fat_tree(4, 4, 0).with_link(LinkConfig {
            credits: 1,
            ..LinkConfig::paper()
        });
        let (mut f, map) = spec.build();
        assert!(f.hop_backpressure());
        let mut hops = Vec::new();
        let d = f.transmit_recorded(
            4096,
            map.hosts[0],
            map.hosts[3],
            SimTime::ZERO,
            Some(&mut hops),
        );
        assert_eq!(hops.len(), d.hops);
        assert!(d.hops >= 3);
        // Back-to-back send on the same route stalls on the
        // single-credit links; the recorded wait is the stall.
        let mut second = Vec::new();
        f.transmit_recorded(
            4096,
            map.hosts[0],
            map.hosts[3],
            SimTime::ZERO,
            Some(&mut second),
        );
        assert!(
            second[0].wait > SimDuration::ZERO,
            "expected a credit stall"
        );
        assert_eq!(second[0].start, SimTime::ZERO + second[0].wait);
    }

    #[test]
    fn chained_drains_do_not_change_uncontended_timing() {
        let spec = TopoSpec::fat_tree(4, 4, 0);
        let (mut bp, map) = spec.build();
        let (mut legacy, _) = spec.clone().endpoint_drain().build();
        assert!(bp.hop_backpressure());
        assert!(!legacy.hop_backpressure());
        let (a, b) = (map.hosts[0], map.hosts[3]);
        let d1 = bp.transmit(528, a, b, SimTime::ZERO);
        let d2 = legacy.transmit(528, a, b, SimTime::ZERO);
        assert_eq!(d1, d2);
        assert!(d1.hops >= 3, "cross-leaf route, got {} hops", d1.hops);
    }

    #[test]
    fn chained_drains_backpressure_upstream_links() {
        // Two hosts fan into one leaf whose uplinks are the bottleneck:
        // with single-credit links, a send stalls on the previous
        // packet's drain. Chained drains release an upstream credit
        // only when the packet leaves the *downstream* hop, so stalls
        // last longer and the burst finishes later than under the
        // seed's endpoint-drain model.
        let run = |chained: bool| {
            let mut spec = TopoSpec::fat_tree(4, 4, 0).with_link(LinkConfig {
                credits: 1,
                ..LinkConfig::paper()
            });
            if !chained {
                spec = spec.endpoint_drain();
            }
            let (mut f, map) = spec.build();
            let dst = map.hosts[3]; // other leaf: all routes share uplinks
            let mut last = SimTime::ZERO;
            for _ in 0..4 {
                let a = f.transmit(4096, map.hosts[0], dst, SimTime::ZERO).arrival;
                let b = f.transmit(4096, map.hosts[1], dst, SimTime::ZERO).arrival;
                last = last.max(a).max(b);
            }
            (f.total_credit_stalls(), last)
        };
        let (chained_stalls, chained_last) = run(true);
        let (endpoint_stalls, endpoint_last) = run(false);
        assert!(chained_stalls > 0 && endpoint_stalls > 0);
        assert!(
            chained_last > endpoint_last,
            "chained burst {chained_last} should outlast endpoint burst {endpoint_last}"
        );
    }

    #[test]
    fn traffic_recorded_at_endpoints_only() {
        let (mut f, hosts, _, _) = single_switch_cluster(2, 1);
        f.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
        assert_eq!(f.traffic(hosts[0]).bytes_out, 528);
        assert_eq!(f.traffic(hosts[1]).bytes_in, 528);
        assert_eq!(f.traffic(hosts[0]).bytes_in, 0);
        // Both hops carried the bytes.
        assert_eq!(f.total_link_bytes(), 2 * 528);
    }

    #[test]
    fn contention_on_shared_output_port() {
        let (mut f, hosts, tcas, _) = single_switch_cluster(2, 1);
        // Host0 and TCA0 both send to host1 at t=0: the second packet
        // serializes after the first on the switch→host1 link.
        let a = f.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
        let b = f.transmit(528, tcas[0], hosts[1], SimTime::ZERO);
        assert!(b.arrival > a.arrival);
        assert_eq!(b.arrival.since(a.arrival).as_ns(), 528);
    }

    #[test]
    fn byte_at_interpolates() {
        let (mut f, hosts, _, sw) = single_switch_cluster(1, 0);
        let d = f.transmit(528, hosts[0], sw, SimTime::ZERO);
        assert_eq!(d.byte_at(0, 512), d.payload_start);
        assert_eq!(d.byte_at(512, 512), d.arrival);
        let mid = d.byte_at(256, 512);
        assert!(mid > d.payload_start && mid < d.arrival);
    }

    #[test]
    fn multi_switch_tree_routes() {
        // Two leaf switches under a root, a host on each leaf.
        let mut b = TopologyBuilder::new();
        let root = b.add_switch(SwitchSpec::paper());
        let l1 = b.add_switch(SwitchSpec::paper());
        let l2 = b.add_switch(SwitchSpec::paper());
        let h1 = b.add_host();
        let h2 = b.add_host();
        b.connect(l1, root, LinkConfig::paper());
        b.connect(l2, root, LinkConfig::paper());
        b.connect(h1, l1, LinkConfig::paper());
        b.connect(h2, l2, LinkConfig::paper());
        let mut f = b.build();
        assert_eq!(f.path_len(h1, h2), 4);
        let d = f.transmit(528, h1, h2, SimTime::ZERO);
        assert_eq!(d.hops, 4);
        // Three intermediate switches each add 100 ns.
        assert_eq!(d.arrival.as_ns(), 26 + 100 + 26 + 100 + 26 + 100 + 528 + 10);
    }

    #[test]
    fn store_and_forward_is_slower_than_cut_through() {
        let build = |spec: SwitchSpec| {
            let mut b = TopologyBuilder::new();
            let s1 = b.add_switch(spec);
            let s2 = b.add_switch(spec);
            let h1 = b.add_host();
            let h2 = b.add_host();
            b.connect(h1, s1, LinkConfig::paper());
            b.connect(s1, s2, LinkConfig::paper());
            b.connect(h2, s2, LinkConfig::paper());
            let mut f = b.build();
            f.transmit(528, h1, h2, SimTime::ZERO).arrival
        };
        let ct = build(SwitchSpec::paper());
        let sf = build(SwitchSpec::store_and_forward());
        // Store-and-forward pays the full serialization per hop.
        assert!(sf > ct, "store-and-forward {sf} <= cut-through {ct}");
        assert!(sf.since(ct).as_ns() >= 900, "diff = {}", sf.since(ct));
    }

    #[test]
    fn fabric_snapshot_preserves_contention_state() {
        let (mut f, hosts, tcas, _) = single_switch_cluster(2, 1);
        // Load the switch→host1 output port so future sends contend.
        f.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
        f.transmit(528, tcas[0], hosts[1], SimTime::ZERO);

        let mut w = SnapWriter::new();
        f.snapshot(&mut w);
        let bytes = w.into_bytes();
        let (mut back, ..) = single_switch_cluster(2, 1);
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();

        // Same occupancy: the next packet sees identical queueing.
        let a = f.transmit(528, hosts[0], hosts[1], SimTime::from_ns(100));
        let b = back.transmit(528, hosts[0], hosts[1], SimTime::from_ns(100));
        assert_eq!(a, b);
        assert_eq!(back.total_link_bytes(), f.total_link_bytes());
        assert_eq!(back.traffic(hosts[1]), f.traffic(hosts[1]));
        // Mismatched topology fails loudly.
        let (mut wrong, ..) = single_switch_cluster(3, 1);
        let mut r2 = SnapReader::new(&bytes).unwrap();
        assert!(wrong.restore(&mut r2).is_err());
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_topology_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_host();
        b.add_host();
        b.build();
    }

    #[test]
    #[should_panic(expected = "transmit to self")]
    fn self_transmit_rejected() {
        let (mut f, hosts, _, _) = single_switch_cluster(1, 1);
        f.transmit(16, hosts[0], hosts[0], SimTime::ZERO);
    }

    #[test]
    fn try_build_reports_each_error() {
        assert_eq!(
            TopologyBuilder::new().try_build().unwrap_err(),
            TopoError::EmptyTopology
        );

        let mut disc = TopologyBuilder::new();
        let a = disc.add_host();
        let b = disc.add_host();
        let err = disc.try_build().unwrap_err();
        // BFS runs destination 0 first, so node 1's missing route to
        // node 0 is reported.
        assert_eq!(err, TopoError::Disconnected { from: b, to: a });
        assert!(err.to_string().contains("disconnected"));

        let mut dup = TopologyBuilder::new();
        let sw = dup.add_switch(SwitchSpec::paper());
        let h = dup.add_host();
        dup.connect(h, sw, LinkConfig::paper());
        dup.connect(sw, h, LinkConfig::paper()); // same pair, reversed
        assert_eq!(
            dup.try_build().unwrap_err(),
            TopoError::DuplicateLink { a: sw, b: h }
        );

        let mut iso = TopologyBuilder::new();
        let s1 = iso.add_switch(SwitchSpec::paper());
        let h1 = iso.add_host();
        let s2 = iso.add_switch(SwitchSpec::paper()); // zero ports
        iso.connect(h1, s1, LinkConfig::paper());
        assert_eq!(iso.try_build().unwrap_err(), TopoError::IsolatedSwitch(s2));
    }

    #[test]
    fn spec_single_switch_matches_hand_built_cluster() {
        let (f, map) = TopoSpec::single_switch(3, 2).build();
        assert_eq!(f.num_nodes(), 6);
        assert_eq!(map.hosts.len(), 3);
        assert_eq!(map.tcas.len(), 2);
        assert_eq!(map.switches, vec![map.root]);
        assert_eq!(map.root, NodeId(0)); // seed order: switch first
        assert_eq!(map.hosts[0], NodeId(1));
        assert!(map.parent.is_empty());
        assert_eq!(map.leaf_of(map.hosts[2]), Some(map.root));
        assert_eq!(map.leaves(), vec![map.root]);
    }

    #[test]
    fn spec_fat_tree_shapes_and_parents() {
        // 20 hosts, radix 8 → half = 4: 5 leaves, then 2 mids, then root.
        let (f, map) = TopoSpec::fat_tree(8, 20, 1).build();
        assert_eq!(map.hosts.len(), 20);
        assert_eq!(map.switches.len(), 5 + 2 + 1);
        assert_eq!(map.tcas.len(), 1);
        assert_eq!(f.num_nodes(), 20 + 8 + 1);
        // Every leaf chains to the root.
        for &h in &map.hosts {
            let leaf = map.leaf_of(h).unwrap();
            assert_eq!(*map.chain_to_root(leaf).last().unwrap(), map.root);
        }
        assert_eq!(map.leaves().len(), 5);
        // TCAs hang off the root.
        assert_eq!(f.path_len(map.tcas[0], map.root), 1);
        // Hosts on the same leaf are two hops apart; the tree is
        // deeper across leaves.
        assert_eq!(f.path_len(map.hosts[0], map.hosts[1]), 2);
        assert!(f.path_len(map.hosts[0], map.hosts[19]) > 2);
    }

    #[test]
    fn spec_explicit_roots_and_errors() {
        use NodeKind::{Host, Switch};
        // h0 - s1 - s2 - h3: both switches are candidates; s1 wins the
        // eccentricity tie-break by id.
        let spec = TopoSpec::explicit(
            vec![Host, Switch, Switch, Host],
            vec![(0, 1), (1, 2), (2, 3)],
        );
        let (_, map) = spec.build();
        assert_eq!(map.root, NodeId(1));
        assert_eq!(map.host_leaf, vec![NodeId(1), NodeId(2)]);
        assert_eq!(map.parent.get(&NodeId(2)), Some(&NodeId(1)));

        let bad = TopoSpec::explicit(vec![Host, Switch], vec![(0, 7)]);
        assert!(matches!(bad.try_build(), Err(TopoError::BadSpec(_))));
        let no_switch = TopoSpec::explicit(vec![Host, Host], vec![(0, 1)]);
        assert!(matches!(no_switch.try_build(), Err(TopoError::BadSpec(_))));
        assert!(matches!(
            TopoSpec::fat_tree(1, 8, 0).try_build(),
            Err(TopoError::BadSpec(_))
        ));
        // Radix 2 gives half = 1: no aggregation, the tree can never
        // converge to a root — must be rejected, not loop forever.
        assert!(matches!(
            TopoSpec::fat_tree(2, 8, 0).try_build(),
            Err(TopoError::BadSpec(_))
        ));
        assert!(matches!(
            TopoSpec::fat_tree(8, 0, 0).try_build(),
            Err(TopoError::BadSpec(_))
        ));
    }

    #[test]
    fn spec_labels_are_canonical() {
        assert_eq!(TopoSpec::single_switch(2, 1).label(), "single-switch");
        assert_eq!(TopoSpec::fat_tree(4, 64, 0).label(), "fat-tree-r4");
        assert_eq!(
            TopoSpec::explicit(vec![NodeKind::Switch], vec![]).label(),
            "explicit"
        );
    }
}
