//! Known-bad: `retries` was added to the stats but never folded into
//! the digest, and the metrics report grew a `dropped_spans` counter
//! its own digest never sees — the golden-digest net cannot catch
//! either one drifting.

pub struct LinkSnapshot {
    pub bytes: u64,
    pub stalls: u64,
}

pub struct ClusterStats {
    pub events: u64,
    pub retries: u64,
    pub link: LinkSnapshot,
}

impl ClusterStats {
    pub fn digest(&self) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, self.events);
        h = fold(h, self.link.bytes);
        fold(h, self.link.stalls)
    }
}

pub struct MetricsReport {
    pub total_ps: u64,
    pub dropped_spans: u64,
}

impl MetricsReport {
    pub fn digest(&self) -> u64 {
        fold(0xcbf2_9ce4_8422_2325, self.total_ps)
    }
}
