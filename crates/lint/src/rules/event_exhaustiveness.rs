//! Rule `event-exhaustiveness`: engines must make a conscious decision
//! per `Event` variant.
//!
//! The event bus routes each [`Event`] variant to exactly one engine's
//! `on_event`. A silent wildcard arm (`_ => {}` or `_ => Ok(())`)
//! would let a freshly added variant fall through unhandled — the
//! simulation keeps running and the digests quietly change. The rule
//! denies wildcard and catch-all-binding arms in any `match` over the
//! event inside an `on_event` body, with one carve-out: a catch-all
//! whose body diverges loudly (`unreachable!` / `panic!` /
//! `unimplemented!` / `todo!`) *is* a conscious decision — "this
//! engine never receives these" — and fails fast at runtime if the
//! routing table disagrees.

use super::{matching_brace, FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Kind, Token};

pub(crate) struct EventExhaustiveness;

impl Rule for EventExhaustiveness {
    fn name(&self) -> &'static str {
        "event-exhaustiveness"
    }

    fn describe(&self) -> &'static str {
        "deny silent wildcard arms matching the Event in engine on_event bodies"
    }

    fn scope(&self) -> &'static str {
        "crates/core/src/engines"
    }

    fn since_pr(&self) -> u32 {
        3
    }

    fn applies(&self, rel_path: &str) -> bool {
        rel_path.starts_with("crates/core/src/engines/")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let toks = ctx.tokens();
        let mut i = 0;
        while i < toks.len() {
            // Locate `fn on_event` and its body.
            let is_on_event = toks[i].kind == Kind::Ident
                && toks[i].text == "fn"
                && matches!(toks.get(i + 1), Some(t) if t.text == "on_event");
            if !is_on_event {
                i += 1;
                continue;
            }
            let Some(open) = (i..toks.len()).find(|&j| is_brace(&toks[j], "{")) else {
                return;
            };
            let close = matching_brace(toks, open);
            self.check_body(ctx, &toks[open..close], out);
            i = close.max(i + 1);
        }
    }
}

impl EventExhaustiveness {
    /// Scans one `on_event` body for matches over the event.
    fn check_body(&self, ctx: &FileCtx<'_>, body: &[Token], out: &mut Vec<Diagnostic>) {
        for (m, t) in body.iter().enumerate() {
            if !(t.kind == Kind::Ident && t.text == "match") {
                continue;
            }
            let Some(open) = (m..body.len()).find(|&j| is_brace(&body[j], "{")) else {
                continue;
            };
            // Only matches whose subject is the event itself.
            let subject = &body[m + 1..open];
            let on_event_subject = subject.iter().any(|t| {
                t.kind == Kind::Ident && matches!(t.text.as_str(), "ev" | "event" | "Event")
            });
            if !on_event_subject {
                continue;
            }
            let close = matching_brace(body, open);
            self.check_arms(ctx, &body[open + 1..close], out);
        }
    }

    /// Walks top-level arms of one match body (the slice between the
    /// match's braces).
    fn check_arms(&self, ctx: &FileCtx<'_>, arms: &[Token], out: &mut Vec<Diagnostic>) {
        let mut depth = 0i32;
        let mut arm_start = 0usize;
        let mut i = 0usize;
        while i < arms.len() {
            let t = &arms[i];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 0 => arm_start = i + 1,
                    "=>" if depth == 0 => {
                        let pattern = &arms[arm_start..i];
                        let body_end = arm_end(arms, i + 1);
                        self.check_one_arm(ctx, pattern, &arms[i + 1..body_end], out);
                        i = body_end;
                        arm_start = i;
                        continue;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }

    /// Judges one arm given its pattern and body tokens.
    fn check_one_arm(
        &self,
        ctx: &FileCtx<'_>,
        pattern: &[Token],
        body: &[Token],
        out: &mut Vec<Diagnostic>,
    ) {
        let catch_all = match pattern {
            // `_` lexes as an identifier; match on text.
            [t] if t.text == "_" => true,
            [t] if t.kind == Kind::Ident && t.text.starts_with(char::is_lowercase) => true,
            _ => false,
        };
        if !catch_all {
            return;
        }
        let diverges = body.iter().any(|t| {
            t.kind == Kind::Ident
                && matches!(
                    t.text.as_str(),
                    "unreachable" | "panic" | "unimplemented" | "todo"
                )
        });
        if diverges {
            return;
        }
        let (line, col) = pattern.first().map_or((0, 0), |t| (t.line, t.col));
        out.push(Diagnostic {
            rule: self.name(),
            severity: Severity::Deny,
            file: ctx.rel_path.to_string(),
            line,
            col,
            message: "silent catch-all arm in an engine's match over `Event`; list the \
                      ignored variants explicitly, or end with a loud \
                      `other => unreachable!(...)` so a misrouted variant fails fast"
                .to_string(),
        });
    }
}

/// Index just past one arm's body starting at `start`: a `{}` block
/// arm ends at its close brace, an expression arm at the next
/// top-level comma (or the end of the match).
fn arm_end(arms: &[Token], start: usize) -> usize {
    if arms.get(start).is_some_and(|t| is_brace(t, "{")) {
        return matching_brace(arms, start) + 1;
    }
    let mut depth = 0i32;
    for (j, t) in arms.iter().enumerate().skip(start) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "," if depth == 0 => return j + 1,
                _ => {}
            }
        }
    }
    arms.len()
}

fn is_brace(t: &Token, s: &str) -> bool {
    t.kind == Kind::Punct && t.text == s
}
