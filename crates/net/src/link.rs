//! Point-to-point link with serialization and credit-based flow control.
//!
//! Each network link (§4) runs at 1 GB/s per direction and uses
//! credit-based flow control: the sender may only inject a packet when
//! the receiver has a free input buffer. We track the times at which the
//! receiver drains each in-flight packet; when all credits are consumed,
//! the next send stalls until the oldest drain completes.

use std::collections::VecDeque;

use asan_sim::hist::LogHistogram;
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Counter;
use asan_sim::{SimDuration, SimTime};

/// Configuration of one link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkConfig {
    /// Serialization bandwidth in bytes/second.
    pub bytes_per_sec: u64,
    /// Propagation delay (cable + PHY).
    pub propagation: SimDuration,
    /// Number of receiver buffers (credits).
    pub credits: usize,
}

impl LinkConfig {
    /// The paper's SAN link: 1 GB/s, short SAN cable, 8 credits
    /// (half the 16 data buffers of a switch input side).
    pub fn paper() -> Self {
        LinkConfig {
            bytes_per_sec: 1_000_000_000,
            propagation: SimDuration::from_ns(10),
            credits: 8,
        }
    }
}

/// Timing of one packet traversal of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTiming {
    /// When the first byte left the sender (after credit + serialization
    /// availability).
    pub start: SimTime,
    /// When the header (first 16 bytes) is available at the receiver —
    /// cut-through forwarding and handler dispatch may begin here.
    pub header_at: SimTime,
    /// When the last byte arrived at the receiver.
    pub done: SimTime,
}

/// One direction of a network link.
///
/// # Example
///
/// ```
/// use asan_net::link::{Link, LinkConfig};
/// use asan_sim::SimTime;
/// let mut l = Link::new(LinkConfig::paper());
/// let t = l.send(528, SimTime::ZERO); // 512 B payload + 16 B header
/// l.note_drain(t.done);               // receiver consumed it instantly
/// assert_eq!(t.done.as_ns(), 538);    // 528 ns wire + 10 ns propagation
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    cfg: LinkConfig,
    busy_until: SimTime,
    /// Drain times of packets currently occupying receiver buffers.
    inflight: VecDeque<SimTime>,
    /// Total bytes carried.
    bytes: Counter,
    /// Packets carried.
    packets: Counter,
    /// Sends that had to wait for a credit.
    credit_stalls: Counter,
    /// Distribution of credit-stall durations (simulated picoseconds).
    /// Only observable here: the stall is the gap between when the send
    /// could otherwise start and when the oldest in-flight packet
    /// drains.
    stall_hist: LogHistogram,
    /// Total busy (serializing) time.
    busy_time: SimDuration,
    /// Injected link-down windows `[from, until)`: sends starting inside
    /// one are deferred to its end (the PHY retrains, nothing is lost).
    outages: Vec<(SimTime, SimTime)>,
    /// Sends deferred by an outage window.
    outage_deferrals: Counter,
}

impl Link {
    /// Creates an idle link with all credits available.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero bandwidth or zero credits.
    pub fn new(cfg: LinkConfig) -> Self {
        assert!(cfg.bytes_per_sec > 0, "zero link bandwidth");
        assert!(cfg.credits > 0, "links need at least one credit");
        Link {
            cfg,
            busy_until: SimTime::ZERO,
            inflight: VecDeque::new(),
            bytes: Counter::default(),
            packets: Counter::default(),
            credit_stalls: Counter::default(),
            stall_hist: LogHistogram::new(),
            busy_time: SimDuration::ZERO,
            outages: Vec::new(),
            outage_deferrals: Counter::default(),
        }
    }

    /// Injects a transient link-down window: any send whose start falls
    /// in `[from, until)` is deferred to `until`.
    ///
    /// # Panics
    ///
    /// Panics if `from > until`.
    pub fn inject_outage(&mut self, from: SimTime, until: SimTime) {
        assert!(from <= until, "outage window ends before it starts");
        self.outages.push((from, until));
    }

    /// Tightens the credit limit (models a receiver advertising fewer
    /// buffers, e.g. after losing some to errors). Cannot raise it.
    ///
    /// # Panics
    ///
    /// Panics if `credits` is zero.
    pub fn restrict_credits(&mut self, credits: usize) {
        assert!(credits > 0, "links need at least one credit");
        self.cfg.credits = self.cfg.credits.min(credits);
    }

    /// The link configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Sends `wire_bytes` (header + payload) that are ready at `ready`.
    ///
    /// The send waits for (a) a credit, (b) the previous packet to finish
    /// serializing; it then occupies the wire for `wire_bytes / bw`.
    /// Callers **must** later report when the receiver freed the buffer
    /// via [`note_drain`](Link::note_drain), otherwise credits leak and
    /// the link eventually stalls forever (deadlock detection in the
    /// cluster will flag this).
    pub fn send(&mut self, wire_bytes: u64, ready: SimTime) -> LinkTiming {
        let mut start = ready.max(self.busy_until);
        // Credit check: all buffers full ⇒ wait for the oldest drain.
        if self.inflight.len() >= self.cfg.credits {
            let oldest = *self.inflight.front().expect("non-empty");
            if oldest > start {
                self.credit_stalls.inc();
                self.stall_hist.record_duration(oldest.since(start));
                start = oldest;
            }
            self.inflight.pop_front();
        }
        // Outage windows: keep deferring while the start lands in one
        // (windows may chain or overlap).
        while let Some(&(_, until)) = self
            .outages
            .iter()
            .find(|&&(from, until)| from <= start && start < until)
        {
            self.outage_deferrals.inc();
            start = until;
        }
        let serialization = SimDuration::transfer(wire_bytes, self.cfg.bytes_per_sec);
        let header_ser = SimDuration::transfer(
            wire_bytes.min(crate::packet::HEADER_BYTES as u64),
            self.cfg.bytes_per_sec,
        );
        let done = start + serialization + self.cfg.propagation;
        let header_at = start + header_ser + self.cfg.propagation;
        self.busy_until = start + serialization;
        self.busy_time += serialization;
        self.bytes.add(wire_bytes);
        self.packets.inc();
        LinkTiming {
            start,
            header_at,
            done,
        }
    }

    /// Reports that the receiver freed the buffer of the *oldest*
    /// undrained packet at time `t` (credits return in FIFO order).
    pub fn note_drain(&mut self, t: SimTime) {
        self.inflight.push_back(t);
    }

    /// Bytes carried so far.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes.get()
    }

    /// Packets carried so far.
    pub fn packets_carried(&self) -> u64 {
        self.packets.get()
    }

    /// Number of sends that stalled waiting for a credit.
    pub fn credit_stalls(&self) -> u64 {
        self.credit_stalls.get()
    }

    /// Distribution of credit-stall durations on this link direction.
    pub fn credit_stall_hist(&self) -> &LogHistogram {
        &self.stall_hist
    }

    /// Number of sends deferred by an injected outage window.
    pub fn outage_deferrals(&self) -> u64 {
        self.outage_deferrals.get()
    }

    /// Total time the wire spent serializing data.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Writes the link's dynamic state: the (possibly restricted)
    /// credit limit, wire occupancy, in-flight drain times, outage
    /// windows and all counters/histograms.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.usize(self.cfg.credits);
        w.time(self.busy_until);
        w.usize(self.inflight.len());
        for &t in &self.inflight {
            w.time(t);
        }
        self.bytes.snapshot(w);
        self.packets.snapshot(w);
        self.credit_stalls.snapshot(w);
        self.stall_hist.snapshot(w);
        w.dur(self.busy_time);
        w.usize(self.outages.len());
        for &(from, until) in &self.outages {
            w.time(from);
            w.time(until);
        }
        self.outage_deferrals.snapshot(w);
    }

    /// Overwrites this link's dynamic state from a snapshot taken of a
    /// link with the same static configuration. The snapshotted credit
    /// limit must not exceed this link's (it may be lower, since
    /// [`restrict_credits`](Link::restrict_credits) only tightens).
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let credits = r.usize()?;
        if credits == 0 || credits > self.cfg.credits {
            return Err(SnapError::Malformed("link credit limit out of range"));
        }
        self.cfg.credits = credits;
        self.busy_until = r.time()?;
        let n = r.usize()?;
        self.inflight.clear();
        for _ in 0..n {
            self.inflight.push_back(r.time()?);
        }
        self.bytes = Counter::restore(r)?;
        self.packets = Counter::restore(r)?;
        self.credit_stalls = Counter::restore(r)?;
        self.stall_hist = LogHistogram::restore(r)?;
        self.busy_time = r.dur()?;
        let outages = r.usize()?;
        self.outages.clear();
        for _ in 0..outages {
            let from = r.time()?;
            let until = r.time()?;
            self.outages.push((from, until));
        }
        self.outage_deferrals = Counter::restore(r)?;
        Ok(())
    }

    /// Utilization of the wire over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let t = now.as_ps();
        if t == 0 {
            0.0
        } else {
            self.busy_time.as_ps() as f64 / t as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_drain(l: &mut Link, wire: u64, ready: SimTime) -> LinkTiming {
        let t = l.send(wire, ready);
        l.note_drain(t.done);
        t
    }

    #[test]
    fn serialization_time_matches_bandwidth() {
        let mut l = Link::new(LinkConfig::paper());
        let t = fast_drain(&mut l, 528, SimTime::ZERO);
        assert_eq!(t.start, SimTime::ZERO);
        assert_eq!(t.done.as_ns(), 528 + 10);
        // Header cut-through point: 16 B + propagation.
        assert_eq!(t.header_at.as_ns(), 16 + 10);
    }

    #[test]
    fn back_to_back_sends_serialize() {
        let mut l = Link::new(LinkConfig::paper());
        let a = fast_drain(&mut l, 528, SimTime::ZERO);
        let b = fast_drain(&mut l, 528, SimTime::ZERO);
        assert_eq!(b.start, a.done - l.config().propagation);
        assert_eq!(b.done.since(a.done).as_ns(), 528);
    }

    #[test]
    fn credit_exhaustion_stalls_sender() {
        let cfg = LinkConfig {
            credits: 2,
            ..LinkConfig::paper()
        };
        let mut l = Link::new(cfg);
        // Two packets sent, neither drained yet.
        let a = l.send(528, SimTime::ZERO);
        let _b = l.send(528, SimTime::ZERO);
        // Receiver is slow: drains the first at 10 us.
        let drain0 = SimTime::from_us(10);
        l.note_drain(drain0);
        l.note_drain(SimTime::from_us(20));
        // Third send must wait for the first drain, not just the wire.
        let c = l.send(528, a.done);
        assert_eq!(c.start, drain0);
        assert_eq!(l.credit_stalls(), 1);
    }

    #[test]
    fn credits_do_not_stall_when_receiver_keeps_up() {
        let mut l = Link::new(LinkConfig::paper());
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let timing = fast_drain(&mut l, 528, t);
            t = timing.done;
        }
        assert_eq!(l.credit_stalls(), 0);
        assert_eq!(l.packets_carried(), 100);
        assert_eq!(l.bytes_carried(), 52_800);
    }

    #[test]
    fn utilization_reflects_busy_fraction() {
        let mut l = Link::new(LinkConfig::paper());
        fast_drain(&mut l, 1000, SimTime::ZERO); // busy 1000 ns
        let u = l.utilization(SimTime::from_us(2));
        assert!((u - 0.5).abs() < 1e-9, "u = {u}");
        assert_eq!(
            Link::new(LinkConfig::paper()).utilization(SimTime::ZERO),
            0.0
        );
    }

    #[test]
    fn small_packet_header_at_equals_done() {
        let mut l = Link::new(LinkConfig::paper());
        let t = fast_drain(&mut l, 16, SimTime::ZERO);
        assert_eq!(t.header_at, t.done);
    }

    #[test]
    fn outage_window_defers_sends() {
        let mut l = Link::new(LinkConfig::paper());
        l.inject_outage(SimTime::from_us(1), SimTime::from_us(3));
        // Before the window: unaffected.
        let a = fast_drain(&mut l, 528, SimTime::ZERO);
        assert_eq!(a.start, SimTime::ZERO);
        // Inside the window: deferred to its end.
        let b = fast_drain(&mut l, 528, SimTime::from_us(2));
        assert_eq!(b.start, SimTime::from_us(3));
        assert_eq!(l.outage_deferrals(), 1);
        // After the window: unaffected again.
        let c = fast_drain(&mut l, 528, SimTime::from_us(10));
        assert_eq!(c.start, SimTime::from_us(10));
    }

    #[test]
    fn snapshot_restores_credits_and_wire_state() {
        let cfg = LinkConfig {
            credits: 3,
            ..LinkConfig::paper()
        };
        let mut l = Link::new(cfg);
        l.inject_outage(SimTime::from_us(50), SimTime::from_us(52));
        l.restrict_credits(2);
        // Fill both credits, no drains yet: the next send must stall.
        let a = l.send(528, SimTime::ZERO);
        let _b = l.send(528, SimTime::ZERO);
        l.note_drain(SimTime::from_us(10));
        l.note_drain(SimTime::from_us(20));

        let mut w = SnapWriter::new();
        l.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = Link::new(cfg); // fresh link: 3 credits, no outage
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();

        // Identical future behaviour: credit stall to the first drain,
        // then the outage window still defers later sends.
        let c1 = l.send(528, a.done);
        let c2 = back.send(528, a.done);
        assert_eq!(c1, c2);
        assert_eq!(c1.start, SimTime::from_us(10));
        assert_eq!(back.credit_stalls(), l.credit_stalls());
        let d1 = l.send(528, SimTime::from_us(51));
        let d2 = back.send(528, SimTime::from_us(51));
        assert_eq!(d1, d2);
        assert_eq!(d1.start, SimTime::from_us(52));
        assert_eq!(back.bytes_carried(), l.bytes_carried());
        assert_eq!(
            back.credit_stall_hist().count(),
            l.credit_stall_hist().count()
        );
    }

    #[test]
    fn restrict_credits_only_tightens() {
        let mut l = Link::new(LinkConfig::paper());
        l.restrict_credits(2);
        assert_eq!(l.config().credits, 2);
        l.restrict_credits(5); // cannot loosen back up
        assert_eq!(l.config().credits, 2);
    }
}
