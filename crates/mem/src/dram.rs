//! RDRAM memory timing model.
//!
//! The paper (§4, citing the Direct RDRAM 256/288-Mbit datasheet) models a
//! memory system with 1.6 GB/s peak bandwidth, 100 ns page-hit latency and
//! 122 ns page-miss latency, for both the host and the switch. We model an
//! open-page policy over interleaved banks plus a single data channel whose
//! occupancy enforces the bandwidth limit.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Counter;
use asan_sim::{SimDuration, SimTime};

/// Configuration of an RDRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Latency from request issue to first data when the bank row is open.
    pub page_hit: SimDuration,
    /// Latency from request issue to first data on a row conflict/closed row.
    pub page_miss: SimDuration,
    /// Peak data bandwidth in bytes/second.
    pub bytes_per_sec: u64,
    /// Number of interleaved banks.
    pub num_banks: usize,
    /// Device page (row) size in bytes.
    pub page_bytes: u64,
}

impl DramConfig {
    /// The paper's RDRAM: 1.6 GB/s, 100 ns hit, 122 ns miss.
    pub fn paper() -> Self {
        DramConfig {
            page_hit: SimDuration::from_ns(100),
            page_miss: SimDuration::from_ns(122),
            bytes_per_sec: 1_600_000_000,
            num_banks: 16,
            page_bytes: 2048,
        }
    }
}

/// Timing of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// When the request was presented to the controller.
    pub issued: SimTime,
    /// When the first double-word of data is available (critical word
    /// first; a blocked load may resume here).
    pub first_data: SimTime,
    /// When the full transfer finishes (the channel is busy until then).
    pub complete: SimTime,
    /// Whether the access hit an open row.
    pub page_hit: bool,
}

/// DRAM statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Row-buffer hits.
    pub page_hits: Counter,
    /// Row-buffer misses (activation required).
    pub page_misses: Counter,
    /// Total bytes transferred.
    pub bytes: Counter,
}

/// An RDRAM channel with open-page banks.
///
/// # Example
///
/// ```
/// use asan_mem::dram::{Dram, DramConfig};
/// use asan_sim::SimTime;
/// let mut d = Dram::new(DramConfig::paper());
/// let a = d.access(0, 128, SimTime::ZERO);
/// assert!(!a.page_hit); // cold bank
/// let b = d.access(128, 128, a.complete);
/// assert!(b.page_hit);  // same row
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig, // asan-lint: allow(snapshot-completeness)
    open_row: Vec<Option<u64>>,
    channel_free: SimTime,
    stats: DramStats,
}

impl Dram {
    /// Builds a channel with all banks closed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks, zero bandwidth, or a
    /// non-power-of-two page size.
    pub fn new(cfg: DramConfig) -> Self {
        assert!(cfg.num_banks > 0, "need at least one bank");
        assert!(cfg.bytes_per_sec > 0, "zero bandwidth");
        assert!(cfg.page_bytes.is_power_of_two(), "page size must be 2^k");
        Dram {
            open_row: vec![None; cfg.num_banks],
            cfg,
            channel_free: SimTime::ZERO,
            stats: DramStats::default(),
        }
    }

    /// The configured timing parameters.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Performs an access of `bytes` bytes at `addr`, arriving at the
    /// controller at `now`. Returns the access timing; the channel is
    /// reserved until `complete`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn access(&mut self, addr: u64, bytes: u64, now: SimTime) -> DramAccess {
        assert!(bytes > 0, "zero-length DRAM access");
        let page = addr / self.cfg.page_bytes;
        let bank = (page % self.cfg.num_banks as u64) as usize;
        let row = page / self.cfg.num_banks as u64;

        let page_hit = self.open_row[bank] == Some(row);
        let lat = if page_hit {
            self.stats.page_hits.inc();
            self.cfg.page_hit
        } else {
            self.stats.page_misses.inc();
            self.cfg.page_miss
        };
        self.open_row[bank] = Some(row);
        self.stats.bytes.add(bytes);

        // The activation/CAS latency pipelines behind the previous
        // transfer: data starts moving when both the latency has elapsed
        // and the channel is free, so back-to-back streaming reaches peak
        // bandwidth while an isolated access sees the full latency.
        let data_start = (now + lat).max(self.channel_free);
        // Critical word (8 B) first, then the remainder streams out.
        let first_burst = SimDuration::transfer(bytes.min(8), self.cfg.bytes_per_sec);
        let full_burst = SimDuration::transfer(bytes, self.cfg.bytes_per_sec);
        let first_data = data_start + first_burst;
        let complete = data_start + full_burst;
        self.channel_free = complete;

        DramAccess {
            issued: now,
            first_data,
            complete,
            page_hit,
        }
    }

    /// Closes all rows (e.g. between benchmark configurations).
    pub fn flush(&mut self) {
        self.open_row.iter_mut().for_each(|r| *r = None);
        self.channel_free = SimTime::ZERO;
    }

    /// Writes per-bank open rows, channel occupancy and statistics.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.usize(self.open_row.len());
        for &row in &self.open_row {
            w.opt_u64(row);
        }
        w.time(self.channel_free);
        self.stats.page_hits.snapshot(w);
        self.stats.page_misses.snapshot(w);
        self.stats.bytes.snapshot(w);
    }

    /// Overwrites this channel's dynamic state from a snapshot taken of
    /// a channel with the same configuration.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let banks = r.usize()?;
        if banks != self.open_row.len() {
            return Err(SnapError::Malformed("DRAM bank count mismatch"));
        }
        for row in &mut self.open_row {
            *row = r.opt_u64()?;
        }
        self.channel_free = r.time()?;
        self.stats = DramStats {
            page_hits: Counter::restore(r)?,
            page_misses: Counter::restore(r)?,
            bytes: Counter::restore(r)?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_is_page_miss_with_paper_latency() {
        let mut d = Dram::new(DramConfig::paper());
        let a = d.access(0, 8, SimTime::ZERO);
        assert!(!a.page_hit);
        // 122 ns activation + 5 ns to move 8 B at 1.6 GB/s.
        assert_eq!(a.first_data.as_ns(), 127);
        assert_eq!(a.complete, a.first_data);
    }

    #[test]
    fn open_row_hits_are_faster() {
        let mut d = Dram::new(DramConfig::paper());
        let a = d.access(64, 8, SimTime::ZERO);
        let b = d.access(72, 8, a.complete);
        assert!(b.page_hit);
        assert_eq!(b.first_data.since(b.issued).as_ns(), 105); // 100 + 5
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let cfg = DramConfig::paper();
        let mut d = Dram::new(cfg);
        let stride = cfg.page_bytes * cfg.num_banks as u64; // same bank, next row
        d.access(0, 8, SimTime::ZERO);
        let b = d.access(stride, 8, SimTime::from_ns(1000));
        assert!(!b.page_hit);
    }

    #[test]
    fn adjacent_pages_hit_different_banks() {
        let cfg = DramConfig::paper();
        let mut d = Dram::new(cfg);
        d.access(0, 8, SimTime::ZERO);
        // Next page lands in the next bank; both rows stay open.
        d.access(cfg.page_bytes, 8, SimTime::from_ns(500));
        let again = d.access(16, 8, SimTime::from_ns(1000));
        assert!(again.page_hit);
    }

    #[test]
    fn channel_contention_serializes_requests() {
        let mut d = Dram::new(DramConfig::paper());
        let a = d.access(0, 128, SimTime::ZERO);
        // A second request presented at time zero cannot move data until
        // the channel frees up.
        let b = d.access(1 << 20, 128, SimTime::ZERO);
        assert!(b.first_data > a.complete);
        assert_eq!(
            b.complete.since(a.complete),
            SimDuration::transfer(128, 1_600_000_000)
        );
    }

    #[test]
    fn bandwidth_bound_matches_config() {
        let mut d = Dram::new(DramConfig::paper());
        // Stream 1 MB in 128 B lines, all requests queued up front; the
        // total time must be close to 1 MB / 1.6 GB/s = 655 us since the
        // per-access latency pipelines behind the channel.
        let mut t = SimTime::ZERO;
        let total: u64 = 1 << 20;
        for off in (0..total).step_by(128) {
            t = d.access(off, 128, SimTime::ZERO).complete;
        }
        let secs = t.as_secs_f64();
        let ideal = total as f64 / 1.6e9;
        assert!(
            secs >= ideal,
            "faster than peak bandwidth: {secs} < {ideal}"
        );
        assert!(secs < ideal * 1.2, "too much overhead: {secs} vs {ideal}");
    }

    #[test]
    fn snapshot_restores_rows_and_channel() {
        let mut d = Dram::new(DramConfig::paper());
        d.access(0, 128, SimTime::ZERO);
        d.access(4096, 64, SimTime::from_ns(50));
        let mut w = SnapWriter::new();
        d.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = Dram::new(DramConfig::paper());
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();
        // Identical future timing: open rows and channel occupancy match.
        let t = SimTime::from_ns(300);
        assert_eq!(d.access(16, 8, t), back.access(16, 8, t));
        assert_eq!(d.access(1 << 24, 128, t), back.access(1 << 24, 128, t));
        assert_eq!(back.stats().bytes.get(), d.stats().bytes.get());
    }

    #[test]
    fn flush_closes_rows() {
        let mut d = Dram::new(DramConfig::paper());
        let a = d.access(0, 8, SimTime::ZERO);
        d.flush();
        let b = d.access(8, 8, a.complete);
        assert!(!b.page_hit);
    }

    #[test]
    fn stats_count_bytes_and_hits() {
        let mut d = Dram::new(DramConfig::paper());
        let a = d.access(0, 128, SimTime::ZERO);
        d.access(128, 128, a.complete);
        assert_eq!(d.stats().bytes.get(), 256);
        assert_eq!(d.stats().page_misses.get(), 1);
        assert_eq!(d.stats().page_hits.get(), 1);
    }
}
