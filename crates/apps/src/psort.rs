//! Parallel Sort, distribution phase (§5, Datamation format).
//!
//! One-pass parallel sort over `p` nodes with a uniform key
//! distribution: each node reads `1/p` of the data and redistributes
//! records to their range owners; the local sort phase is identical in
//! all configurations and is therefore not simulated (as in the paper:
//! "Our experiment only simulates the data distribution phase").
//!
//! * **normal**: each host reads its share and sends each record's
//!   bytes to the owning peer.
//! * **active**: the switch handler redistributes ("the redistribution
//!   is done by the switch handler so that each node only gets the
//!   records assigned to it").
//!
//! Shape (Figures 13–14): like Grep; per-node traffic in the active
//! case is ~40 % of normal at p = 4 (limit `p/(3p−2)` → 1/3).

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::cluster::{ClusterConfig, Dest, HostCtx, HostMsg, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::{HandlerId, NodeId};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::blockio::{BlockPlan, BlockReader};
use crate::cost;
use crate::data::{self, SORT_KEY, SORT_RECORD};
use crate::runner::{drive, standard_cluster, AppRun, Variant};

/// Handler ID of the redistribution handler.
pub const SORT_HANDLER: HandlerId = HandlerId::new_const(5);

/// Flow tag of record batches between nodes.
pub const RECORDS: HandlerId = HandlerId::new_const(40);

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Total data bytes across all nodes (16 MB in Table 1).
    pub total_bytes: u64,
    /// Participating hosts (4 in §5).
    pub nodes: usize,
    /// I/O request size.
    pub io_block: u64,
    /// Batch size for host-to-host record transfers.
    pub send_batch: u64,
}

impl Params {
    /// The paper's configuration: 16 MB of Datamation records, 4 nodes.
    pub fn paper() -> Self {
        Params {
            total_bytes: 16 << 20,
            nodes: 4,
            io_block: 64 * 1024,
            send_batch: 8 * 1024,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        Params {
            total_bytes: 1 << 20,
            ..Params::paper()
        }
    }

    /// Records per node's input share.
    pub fn records_per_node(&self) -> u64 {
        self.total_bytes / self.nodes as u64 / SORT_RECORD as u64
    }
}

/// Pure-Rust reference: how many records each node should own.
pub fn reference_counts(shares: &[Vec<u8>], p: usize) -> Vec<u64> {
    let mut counts = vec![0u64; p];
    for share in shares {
        for rec in share.chunks_exact(SORT_RECORD) {
            counts[data::sort_bucket(&rec[..SORT_KEY], p)] += 1;
        }
    }
    counts
}

/// Normal-case host program for one node.
struct NormalSortNode {
    share: Arc<Vec<u8>>, // asan-lint: allow(snapshot-completeness)
    p: Params,           // asan-lint: allow(snapshot-completeness)
    me: usize,           // asan-lint: allow(snapshot-completeness)
    peers: Vec<NodeId>,  // asan-lint: allow(snapshot-completeness)
    reader: BlockReader,
    /// Index of the next unprocessed record (alignment carry).
    next_rec: usize,
    /// Outgoing batches being assembled, one per peer.
    batches: Vec<Vec<u8>>,
    kept: u64,
    received: u64,
    recv_bytes: u64,
    received_from_peers: u64,
    expected: u64, // asan-lint: allow(snapshot-completeness)
    read_done: bool,
    sent_eof: bool,
    eofs_seen: usize,
}

impl NormalSortNode {
    /// Processes every record fully contained in the data available so
    /// far (`[0, off + len)`), carrying alignment across 64 KB blocks —
    /// records are 100 B and do not divide the block size.
    fn partition_block(&mut self, ctx: &mut HostCtx<'_>, off: u64, len: u64) {
        let avail = (off + len) as usize;
        while (self.next_rec + 1) * SORT_RECORD <= avail {
            let lo = self.next_rec * SORT_RECORD;
            let rec = &self.share[lo..lo + SORT_RECORD];
            self.next_rec += 1;
            ctx.cpu().compute(cost::SORT_PARTITION_INSTR);
            ctx.cpu().load(0x1000_0000 + lo as u64);
            let owner = data::sort_bucket(&rec[..SORT_KEY], self.p.nodes);
            if owner == self.me {
                // Copy into the local run.
                ctx.cpu().compute(cost::SORT_COPY_INSTR);
                ctx.cpu()
                    .store(0x5000_0000 + self.kept * SORT_RECORD as u64);
                self.kept += 1;
                self.received += 1;
            } else {
                ctx.cpu().compute(cost::SORT_COPY_INSTR);
                self.batches[owner].extend_from_slice(rec);
                if self.batches[owner].len() as u64 >= self.p.send_batch {
                    let data = std::mem::take(&mut self.batches[owner]);
                    ctx.send(self.peers[owner], Some(RECORDS), 0, data);
                }
            }
        }
    }

    fn maybe_finish(&mut self, ctx: &mut HostCtx<'_>) {
        if self.read_done && !self.sent_eof {
            self.sent_eof = true;
            for owner in 0..self.p.nodes {
                if owner != self.me {
                    let data = std::mem::take(&mut self.batches[owner]);
                    ctx.send(self.peers[owner], Some(RECORDS), 0, data);
                    // Zero-length EOF marker flow.
                    ctx.send(self.peers[owner], Some(SORT_HANDLER), 1, Vec::new());
                }
            }
        }
        if self.read_done && self.received >= self.expected && self.eofs_seen == self.p.nodes - 1 {
            ctx.finish();
        }
    }
}

impl HostProgram for NormalSortNode {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        let Some((off, len)) = self.reader.on_complete(ctx, req) else {
            return;
        };
        self.partition_block(ctx, off, len);
        self.reader.refill(ctx);
        if self.reader.done() {
            self.read_done = true;
        }
        self.maybe_finish(ctx);
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if msg.handler == Some(SORT_HANDLER) {
            self.eofs_seen += 1;
        } else {
            // Batches arrive packetized; count whole records via a byte
            // tally (records may span MTU packets).
            self.recv_bytes += msg.data.len() as u64;
            let whole = self.recv_bytes / SORT_RECORD as u64;
            let n = whole - self.received_from_peers;
            self.received_from_peers = whole;
            self.received += n;
            ctx.cpu().compute(n * cost::SORT_COPY_INSTR);
            ctx.cpu().touch_lines(
                0x5000_0000 + self.received * SORT_RECORD as u64,
                msg.data.len() as u64,
                1,
                true,
            );
        }
        self.maybe_finish(ctx);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.usize(self.next_rec);
        w.usize(self.batches.len());
        for b in &self.batches {
            w.bytes(b);
        }
        w.u64(self.kept);
        w.u64(self.received);
        w.u64(self.recv_bytes);
        w.u64(self.received_from_peers);
        w.bool(self.read_done);
        w.bool(self.sent_eof);
        w.usize(self.eofs_seen);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.next_rec = r.usize()?;
        let n = r.usize()?;
        if n != self.batches.len() {
            return Err(SnapError::Malformed("sort batch count"));
        }
        for b in &mut self.batches {
            *b = r.bytes()?;
        }
        self.kept = r.u64()?;
        self.received = r.u64()?;
        self.recv_bytes = r.u64()?;
        self.received_from_peers = r.u64()?;
        self.read_done = r.bool()?;
        self.sent_eof = r.bool()?;
        self.eofs_seen = r.usize()?;
        Ok(())
    }
}

/// The redistribution handler: splits the record stream by key range
/// and forwards each record to its owner, batching per destination.
pub struct SortHandler {
    p: Params,          // asan-lint: allow(snapshot-completeness)
    hosts: Vec<NodeId>, // asan-lint: allow(snapshot-completeness)
    /// Partial record carried across packet boundaries, per source
    /// stream (the four nodes' shares interleave at the switch).
    carry: std::collections::BTreeMap<NodeId, Vec<u8>>,
    /// Per-destination batch contents.
    batches: Vec<Vec<u8>>,
    batch_bufs: Vec<Option<asan_core::BufId>>,
    out_addr: Vec<u32>,
    seen: u64,
    expect: u64, // asan-lint: allow(snapshot-completeness)
    counts: Vec<u64>,
}

impl SortHandler {
    fn new(p: Params, hosts: Vec<NodeId>, expect: u64) -> Self {
        let n = hosts.len();
        SortHandler {
            p,
            hosts,
            carry: std::collections::BTreeMap::new(),
            batches: vec![Vec::new(); n],
            batch_bufs: vec![None; n],
            out_addr: vec![0; n],
            seen: 0,
            expect,
            counts: vec![0; n],
        }
    }

    /// Records forwarded per destination.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn flush(&mut self, ctx: &mut HandlerCtx<'_>, owner: usize) {
        if let Some(buf) = self.batch_bufs[owner].take() {
            if self.batches[owner].is_empty() {
                ctx.free_buffer(buf);
            } else {
                ctx.send_buffer(buf, self.hosts[owner], Some(RECORDS), self.out_addr[owner]);
                self.out_addr[owner] =
                    self.out_addr[owner].wrapping_add(self.batches[owner].len() as u32);
                self.batches[owner].clear();
            }
        }
    }
}

impl Handler for SortHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let payload = ctx.payload();
        self.seen += payload.len() as u64;
        let src = ctx.msg().src;
        let mut stream = self.carry.remove(&src).unwrap_or_default();
        stream.extend_from_slice(&payload);
        let whole = stream.len() / SORT_RECORD * SORT_RECORD;
        for rec in stream[..whole].chunks_exact(SORT_RECORD) {
            ctx.compute(cost::SORT_PARTITION_INSTR);
            let owner = data::sort_bucket(&rec[..SORT_KEY], self.p.nodes);
            self.counts[owner] += 1;
            if self.batch_bufs[owner].is_none() {
                self.batch_bufs[owner] = Some(ctx.alloc_buffer());
            }
            let buf = self.batch_bufs[owner].expect("just set");
            ctx.buffer_write(buf, self.batches[owner].len(), rec);
            self.batches[owner].extend_from_slice(rec);
            if self.batches[owner].len() + SORT_RECORD > asan_core::BUFFER_BYTES {
                self.flush(ctx, owner);
            }
        }
        if whole < stream.len() {
            self.carry.insert(src, stream[whole..].to_vec());
        }
        if self.seen >= self.expect {
            for owner in 0..self.hosts.len() {
                self.flush(ctx, owner);
                ctx.send(self.hosts[owner], Some(SORT_HANDLER), 1, &[]);
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.usize(self.carry.len());
        for (node, tail) in &self.carry {
            w.u16(node.0);
            w.bytes(tail);
        }
        w.usize(self.batches.len());
        for i in 0..self.batches.len() {
            w.bytes(&self.batches[i]);
            w.opt_u64(self.batch_bufs[i].map(|b| u64::from(b.0)));
            w.u32(self.out_addr[i]);
            w.u64(self.counts[i]);
        }
        w.u64(self.seen);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.carry.clear();
        for _ in 0..n {
            let node = NodeId(r.u16()?);
            let tail = r.bytes()?;
            self.carry.insert(node, tail);
        }
        let n = r.usize()?;
        if n != self.batches.len() {
            return Err(SnapError::Malformed("sort handler batch count"));
        }
        for i in 0..n {
            self.batches[i] = r.bytes()?;
            self.batch_bufs[i] = match r.opt_u64()? {
                Some(v) => {
                    Some(asan_core::BufId(u8::try_from(v).map_err(|_| {
                        SnapError::Malformed("buffer id out of range")
                    })?))
                }
                None => None,
            };
            self.out_addr[i] = r.u32()?;
            self.counts[i] = r.u64()?;
        }
        self.seen = r.u64()?;
        Ok(())
    }
}

/// Active-case host program for one node.
struct ActiveSortNode {
    reader: BlockReader,
    received: u64,
    expected: u64, // asan-lint: allow(snapshot-completeness)
    eof: bool,
    read_done: bool,
}

impl HostProgram for ActiveSortNode {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        self.reader.on_complete(ctx, req);
        self.reader.refill(ctx);
        if self.reader.done() {
            self.read_done = true;
        }
        self.maybe_finish(ctx);
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if msg.handler == Some(SORT_HANDLER) {
            self.eof = true;
        } else {
            let n = (msg.data.len() / SORT_RECORD) as u64;
            self.received += n;
            ctx.cpu().compute(n * cost::SORT_COPY_INSTR);
            ctx.cpu().touch_lines(
                0x5000_0000 + self.received * SORT_RECORD as u64,
                msg.data.len() as u64,
                1,
                true,
            );
        }
        self.maybe_finish(ctx);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.u64(self.received);
        w.bool(self.eof);
        w.bool(self.read_done);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.received = r.u64()?;
        self.eof = r.bool()?;
        self.read_done = r.bool()?;
        Ok(())
    }
}

impl ActiveSortNode {
    fn maybe_finish(&mut self, ctx: &mut HostCtx<'_>) {
        if self.read_done && self.eof && self.received >= self.expected {
            ctx.finish();
        }
    }
}

/// Runs the Parallel Sort distribution phase in one configuration,
/// validating per-node record counts.
///
/// # Panics
///
/// Panics if record conservation or ownership is violated.
pub fn run(variant: Variant, p: &Params) -> AppRun {
    let per_node = p.records_per_node();
    let shares: Vec<Vec<u8>> = (0..p.nodes)
        .map(|i| data::datamation(per_node as usize, &format!("sort-share-{i}")))
        .collect();
    let want = reference_counts(&shares, p.nodes);

    let share_bytes = per_node * SORT_RECORD as u64;
    let build = || {
        let (mut cl, hs, ts, sw) = standard_cluster(p.nodes, p.nodes, ClusterConfig::paper());
        let files: Vec<_> = (0..p.nodes)
            .map(|i| {
                cl.add_file(ts[i], shares[i].clone())
                    .expect("cluster setup")
            })
            .collect();

        if variant.is_active() {
            cl.register_handler(
                sw,
                SORT_HANDLER,
                Box::new(SortHandler::new(
                    p.clone(),
                    hs.clone(),
                    share_bytes * p.nodes as u64,
                )),
            )
            .expect("cluster setup");
            for i in 0..p.nodes {
                cl.set_program(
                    hs[i],
                    Box::new(ActiveSortNode {
                        reader: BlockReader::new(BlockPlan {
                            file: files[i],
                            total: share_bytes,
                            block: p.io_block,
                            outstanding: variant.outstanding(),
                            dest: Dest::Mapped {
                                node: sw,
                                handler: SORT_HANDLER,
                                base_addr: (i as u32) << 24,
                            },
                        }),
                        received: 0,
                        expected: want[i],
                        eof: false,
                        read_done: false,
                    }),
                )
                .expect("cluster setup");
            }
        } else {
            for i in 0..p.nodes {
                cl.set_program(
                    hs[i],
                    Box::new(NormalSortNode {
                        share: Arc::new(shares[i].clone()),
                        p: p.clone(),
                        me: i,
                        peers: hs.clone(),
                        reader: BlockReader::new(BlockPlan {
                            file: files[i],
                            total: share_bytes,
                            block: p.io_block,
                            outstanding: variant.outstanding(),
                            dest: Dest::HostBuf { addr: 0x1000_0000 },
                        }),
                        next_rec: 0,
                        batches: vec![Vec::new(); p.nodes],
                        kept: 0,
                        received: 0,
                        recv_bytes: 0,
                        received_from_peers: 0,
                        expected: want[i],
                        read_done: false,
                        sent_eof: false,
                        eofs_seen: 0,
                    }),
                )
                .expect("cluster setup");
            }
        }
        (cl, hs)
    };

    let (mut cl, hs, report) = drive(&format!("psort-{}", variant.label()), build);
    // Validate per-node counts.
    let mut total_received = 0u64;
    for i in 0..p.nodes {
        let program = cl.take_program(hs[i]).expect("program");
        let received = if variant.is_active() {
            program
                .as_any()
                .and_then(|a| a.downcast_ref::<ActiveSortNode>())
                .expect("active sort node")
                .received
        } else {
            program
                .as_any()
                .and_then(|a| a.downcast_ref::<NormalSortNode>())
                .expect("normal sort node")
                .received
        };
        assert_eq!(received, want[i], "node {i} record count");
        total_received += received;
    }
    assert_eq!(
        total_received,
        per_node * p.nodes as u64,
        "records not conserved"
    );
    AppRun::from_report(variant, &cl, &report, report.finish, total_received)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_counts_match_reference() {
        let p = Params::small();
        let per_node = p.records_per_node();
        let shares: Vec<Vec<u8>> = (0..p.nodes)
            .map(|i| data::datamation(per_node as usize, &format!("sort-share-{i}")))
            .collect();
        let want = reference_counts(&shares, p.nodes);
        let r = run(Variant::Active, &p);
        // run() already validates per-node receipt; also check the sum
        // against the reference directly.
        assert_eq!(r.artifact, want.iter().sum::<u64>());
    }

    #[test]
    fn records_conserved_in_all_variants() {
        let p = Params::small();
        for v in Variant::ALL {
            let r = run(v, &p);
            assert_eq!(r.artifact, p.records_per_node() * p.nodes as u64, "{v:?}");
        }
    }

    #[test]
    fn active_traffic_approaches_40pct() {
        let p = Params::small();
        let normal = run(Variant::NormalPref, &p);
        let active = run(Variant::ActivePref, &p);
        let ratio = active.host_traffic as f64 / normal.host_traffic as f64;
        // Paper: 40 % at p = 4 (limit 1/3).
        assert!((0.3..0.55).contains(&ratio), "traffic ratio {ratio}");
    }
}
