//! Fault-tolerant, resumable parameter-sweep driver.
//!
//! A sweep is a grid of independent simulation *cells* (benchmark ×
//! configuration). Each finished cell is persisted to its own
//! digest-keyed cache file (`cell-<key>.json`, written atomically via
//! a temp file + rename), so a sweep killed at any point — including
//! `SIGKILL` mid-write — resumes by recomputing only the missing
//! cells. The final `sweep_results.json` is assembled in canonical
//! (submission) order from deterministic fields only, so an
//! interrupted-and-resumed sweep is **byte-identical** to an
//! uninterrupted one at any worker count.
//!
//! Transient cell failures (a panicking run, a full disk during the
//! cache write) are retried with bounded exponential backoff before
//! the sweep gives up.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering}; // asan-lint: allow(domain-isolation) — host-level retry counter for the sweep driver, not model state
use std::time::Duration; // asan-lint: allow(no-wall-clock) — host-level retry backoff

use crate::{json, pool};

/// The deterministic outputs of one finished cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Canonical cluster-stats digest of the run.
    pub digest: u64,
    /// Events the simulation processed.
    pub events: u64,
    /// High-water mark of the scheduler's pending-event queue.
    pub peak_queue: u64,
}

/// A re-runnable cell body (re-invoked on retry).
pub type CellRun = Box<dyn Fn() -> CellResult + Send + Sync>;

/// One cell of the sweep grid.
pub struct Cell {
    /// Benchmark name (e.g. `grep`).
    pub name: String,
    /// Configuration label (e.g. `active`, `p16`).
    pub config: String,
    /// Runs the simulation for this cell.
    pub run: CellRun,
}

/// One finished cell, as recorded in the results document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellRecord {
    /// Benchmark name.
    pub name: String,
    /// Configuration label.
    pub config: String,
    /// The cell's deterministic outputs.
    pub result: CellResult,
}

/// Sweep driver knobs.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Directory holding the per-cell cache and the results document.
    pub dir: PathBuf,
    /// Attempts per cell before the sweep gives up (≥ 1).
    pub max_attempts: u32,
    /// Base backoff between attempts; doubles per retry.
    pub backoff: Duration,
    /// Worker threads (see [`pool::default_workers`]).
    pub workers: usize,
}

impl SweepConfig {
    /// Default driver: 3 attempts, 25 ms base backoff, pool default
    /// workers.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SweepConfig {
            dir: dir.into(),
            max_attempts: 3,
            backoff: Duration::from_millis(25),
            workers: pool::default_workers(),
        }
    }
}

/// What a finished sweep did.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Every cell in canonical (submission) order.
    pub records: Vec<CellRecord>,
    /// Cells served from the on-disk cache.
    pub cached: usize,
    /// Cells computed this run.
    pub computed: usize,
    /// Retries spent recovering transient cell failures.
    pub retries: u64,
}

/// FNV-1a over the cell descriptor — the cache-file key. Each part is
/// length-prefixed so no delimiter choice can make two descriptors
/// collide.
fn cell_key(name: &str, config: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in [name, config] {
        for b in (part.len() as u64)
            .to_le_bytes()
            .iter()
            .chain(part.as_bytes())
        {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

fn cell_path(dir: &Path, name: &str, config: &str) -> PathBuf {
    dir.join(format!("cell-{:016x}.json", cell_key(name, config)))
}

/// Minimal JSON string escaping for cell names/configs.
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn cell_json(rec: &CellRecord) -> String {
    format!(
        "{{\"name\":\"{}\",\"config\":\"{}\",\"digest\":\"{:016x}\",\"events\":{},\"peak_queue\":{}}}",
        esc(&rec.name),
        esc(&rec.config),
        rec.result.digest,
        rec.result.events,
        rec.result.peak_queue,
    )
}

/// Parses one cell document; `None` on any mismatch (malformed file,
/// foreign cell under a colliding key) so the caller recomputes.
fn parse_cell(text: &str, name: &str, config: &str) -> Option<CellRecord> {
    let v = json::parse(text).ok()?;
    if v.get("name")?.as_str()? != name || v.get("config")?.as_str()? != config {
        return None;
    }
    let digest = u64::from_str_radix(v.get("digest")?.as_str()?, 16).ok()?;
    Some(CellRecord {
        name: name.to_string(),
        config: config.to_string(),
        result: CellResult {
            digest,
            events: v.get("events")?.as_u64()?,
            peak_queue: v.get("peak_queue")?.as_u64()?,
        },
    })
}

/// Writes `text` to `path` atomically: temp file in the same
/// directory, then rename. A crash at any instant leaves either the
/// old file or the new one, never a torn write.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_atomic(path: &Path, text: &str) -> std::io::Result<()> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, text)?;
    std::fs::rename(&tmp, path)
}

/// Runs `body` with bounded exponential backoff, counting retries into
/// `retries`. Panics propagate only after `max_attempts` failures.
fn with_retry<T>(
    body: impl Fn() -> T,
    max_attempts: u32,
    backoff: Duration,
    retries: &AtomicU64,
) -> T {
    let mut attempt = 0u32;
    loop {
        match catch_unwind(AssertUnwindSafe(&body)) {
            Ok(v) => return v,
            Err(payload) => {
                attempt += 1;
                if attempt >= max_attempts.max(1) {
                    std::panic::resume_unwind(payload);
                }
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(backoff * 2u32.saturating_pow(attempt - 1)); // asan-lint: allow(domain-isolation) — host-level backoff between repro retries
            }
        }
    }
}

/// The canonical results document: one cell object per line, in
/// submission order, deterministic fields only.
pub fn results_json(records: &[CellRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, rec) in records.iter().enumerate() {
        out.push_str(&cell_json(rec));
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("]\n");
    out
}

/// Runs the sweep: serves finished cells from the cache, computes the
/// rest on the worker pool (retrying transient failures with bounded
/// backoff), persists each finished cell atomically, and writes
/// `sweep_results.json` in canonical order.
///
/// # Errors
///
/// Returns the underlying I/O error if the results directory or the
/// results document cannot be written.
///
/// # Panics
///
/// Propagates a cell panic once its retry budget is exhausted.
pub fn run(cells: Vec<Cell>, cfg: &SweepConfig) -> std::io::Result<SweepOutcome> {
    std::fs::create_dir_all(&cfg.dir)?;
    let retries = std::sync::Arc::new(AtomicU64::new(0)); // asan-lint: allow(domain-isolation) — retry counter shared with worker closures

    // Serve what the cache already holds.
    let mut slots: Vec<Option<CellRecord>> = Vec::with_capacity(cells.len());
    let mut missing: Vec<(usize, Cell)> = Vec::new();
    for (i, cell) in cells.into_iter().enumerate() {
        let path = cell_path(&cfg.dir, &cell.name, &cell.config);
        let cached = std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_cell(&text, &cell.name, &cell.config));
        slots.push(cached);
        if slots[i].is_none() {
            missing.push((i, cell));
        }
    }
    let cached = slots.iter().filter(|s| s.is_some()).count();
    let computed = missing.len();

    // Compute the rest; each cell persists itself the moment it
    // finishes, so a kill loses at most the in-flight cells.
    let jobs: Vec<pool::Job<(usize, CellRecord)>> = missing
        .into_iter()
        .map(|(i, cell)| {
            let dir = cfg.dir.clone();
            let max_attempts = cfg.max_attempts;
            let backoff = cfg.backoff;
            let retries = std::sync::Arc::clone(&retries); // asan-lint: allow(domain-isolation) — retry counter shared with worker closures
            Box::new(move || {
                let rec = with_retry(
                    || {
                        let result = (cell.run)();
                        let rec = CellRecord {
                            name: cell.name.clone(),
                            config: cell.config.clone(),
                            result,
                        };
                        let path = cell_path(&dir, &rec.name, &rec.config);
                        write_atomic(&path, &cell_json(&rec))
                            .unwrap_or_else(|e| panic!("persist {}: {e}", path.display()));
                        rec
                    },
                    max_attempts,
                    backoff,
                    &retries,
                );
                (i, rec)
            }) as pool::Job<(usize, CellRecord)>
        })
        .collect();
    for (i, rec) in pool::run_indexed(jobs, cfg.workers) {
        slots[i] = Some(rec);
    }

    let records: Vec<CellRecord> = slots
        .into_iter()
        .map(|s| s.expect("every cell resolved"))
        .collect();
    write_atomic(&cfg.dir.join("sweep_results.json"), &results_json(&records))?;
    Ok(SweepOutcome {
        records,
        cached,
        computed,
        retries: retries.load(Ordering::Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32; // asan-lint: allow(domain-isolation) — test-only probe counters
    use std::sync::Arc; // asan-lint: allow(domain-isolation) — test-only probe counters

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("asan-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn grid(counter: &Arc<AtomicU32>) -> Vec<Cell> {
        (0..6u64)
            .map(|i| {
                let counter = Arc::clone(counter);
                Cell {
                    name: format!("bench{}", i / 2),
                    config: if i % 2 == 0 { "normal" } else { "active" }.to_string(),
                    run: Box::new(move || {
                        counter.fetch_add(1, Ordering::Relaxed);
                        CellResult {
                            digest: 0x1000 + i,
                            events: 10 * i,
                            peak_queue: i,
                        }
                    }),
                }
            })
            .collect()
    }

    #[test]
    fn second_run_is_fully_cached_and_byte_identical() {
        let dir = tmpdir("cache");
        let runs = Arc::new(AtomicU32::new(0));
        let cfg = SweepConfig::new(&dir);
        let first = run(grid(&runs), &cfg).unwrap();
        assert_eq!((first.cached, first.computed), (0, 6));
        let bytes1 = std::fs::read(dir.join("sweep_results.json")).unwrap();

        let second = run(grid(&runs), &cfg).unwrap();
        assert_eq!((second.cached, second.computed), (6, 0));
        assert_eq!(runs.load(Ordering::Relaxed), 6, "cache hits re-ran cells");
        let bytes2 = std::fs::read(dir.join("sweep_results.json")).unwrap();
        assert_eq!(bytes1, bytes2);
        assert_eq!(first.records, second.records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_cache_resumes_byte_identical_at_any_worker_count() {
        let dir = tmpdir("resume");
        let runs = Arc::new(AtomicU32::new(0));
        let cfg = SweepConfig::new(&dir);
        run(grid(&runs), &cfg).unwrap();
        let full = std::fs::read(dir.join("sweep_results.json")).unwrap();

        // Simulate a kill: drop the results document and two cells.
        std::fs::remove_file(dir.join("sweep_results.json")).unwrap();
        std::fs::remove_file(cell_path(&dir, "bench0", "normal")).unwrap();
        std::fs::remove_file(cell_path(&dir, "bench2", "active")).unwrap();

        for workers in [1usize, 4] {
            let cfg = SweepConfig {
                workers,
                ..SweepConfig::new(&dir)
            };
            let resumed = run(grid(&runs), &cfg).unwrap();
            assert!(resumed.cached >= 4, "resume recomputed cached cells");
            let bytes = std::fs::read(dir.join("sweep_results.json")).unwrap();
            assert_eq!(bytes, full, "workers = {workers}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cell_is_recomputed() {
        let dir = tmpdir("corrupt");
        let runs = Arc::new(AtomicU32::new(0));
        let cfg = SweepConfig::new(&dir);
        run(grid(&runs), &cfg).unwrap();
        let full = std::fs::read(dir.join("sweep_results.json")).unwrap();

        // A torn or foreign cache file must be ignored, not trusted.
        std::fs::write(cell_path(&dir, "bench1", "normal"), "{\"name\":\"bench1\"").unwrap();
        std::fs::write(
            cell_path(&dir, "bench1", "active"),
            "{\"name\":\"other\",\"config\":\"active\",\"digest\":\"0\",\"events\":0,\"peak_queue\":0}",
        )
        .unwrap();
        let resumed = run(grid(&runs), &cfg).unwrap();
        assert_eq!(resumed.computed, 2);
        assert_eq!(std::fs::read(dir.join("sweep_results.json")).unwrap(), full);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_panic_is_retried_with_backoff() {
        let dir = tmpdir("retry");
        let attempts = Arc::new(AtomicU32::new(0));
        let flaky = {
            let attempts = Arc::clone(&attempts);
            Cell {
                name: "flaky".to_string(),
                config: "normal".to_string(),
                run: Box::new(move || {
                    if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                        panic!("transient failure");
                    }
                    CellResult {
                        digest: 7,
                        events: 1,
                        peak_queue: 1,
                    }
                }),
            }
        };
        let cfg = SweepConfig {
            backoff: Duration::from_millis(1),
            ..SweepConfig::new(&dir)
        };
        let outcome = run(vec![flaky], &cfg).unwrap();
        assert_eq!(outcome.retries, 1);
        assert_eq!(outcome.records[0].result.digest, 7);
        assert_eq!(attempts.load(Ordering::Relaxed), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let dir = tmpdir("budget");
        let attempts = Arc::new(AtomicU32::new(0));
        let doomed = {
            let attempts = Arc::clone(&attempts);
            Cell {
                name: "doomed".to_string(),
                config: "normal".to_string(),
                run: Box::new(move || {
                    attempts.fetch_add(1, Ordering::Relaxed);
                    panic!("permanent failure");
                }),
            }
        };
        let cfg = SweepConfig {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            workers: 1,
            dir: dir.clone(),
        };
        let hit = catch_unwind(AssertUnwindSafe(|| run(vec![doomed], &cfg)));
        assert!(hit.is_err(), "permanent failure must propagate");
        assert_eq!(attempts.load(Ordering::Relaxed), 3, "exactly max_attempts");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_ne!(cell_key("grep", "active"), cell_key("grep", "normal"));
        assert_ne!(cell_key("a/b", "c"), cell_key("a", "b/c"));
        // Stable across processes (pure function of the descriptor).
        assert_eq!(cell_key("grep", "active"), cell_key("grep", "active"));
    }
}
