//! The observability layer: the in-run probe and the end-of-run
//! metrics report.
//!
//! [`Probe`] is the single point every engine reports to while a run is
//! in flight: each timed interval of simulated work becomes one latency
//! sample in a [`LogHistogram`] and — when a [`TraceSink`] is installed
//! — one typed [`Span`]. [`MetricsReport`] is the end-of-run snapshot:
//! the five latency distributions (packet end-to-end, handler
//! occupancy, disk service, buffer wait, credit stall) plus the
//! per-phase time breakdown the paper's evaluation figures are built
//! from.
//!
//! Instrumentation is observation-only: nothing here schedules events
//! or advances clocks, so golden digests are bit-identical whether a
//! sink is installed or not. All times are simulated picoseconds
//! ([`SimTime`]); wall-clock reads are banned by asan-lint's
//! `no-wall-clock` rule.

use std::fmt;

use asan_net::NodeId;
use asan_sim::faults::fnv1a_fold;
use asan_sim::hist::LogHistogram;
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::trace::{Span, SpanKind, TraceSink};
use asan_sim::{SimDuration, SimTime};

/// Where the simulated cycles of a run went, one bucket per pipeline
/// phase. The buckets measure *occupancy*, not a partition: phases
/// overlap in time (a packet crosses the fabric while a disk seeks),
/// so the shares can sum past 100% of `total_ps` — exactly like the
/// stacked per-component bars in the paper's breakdown figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Host CPU busy + cache-stall picoseconds, summed over hosts.
    pub host_ps: u64,
    /// Picoseconds packets spent crossing the fabric (sum of packet
    /// end-to-end spans).
    pub fabric_ps: u64,
    /// Picoseconds switch handlers occupied engine CPUs (sum of
    /// handler-occupancy spans, including fallback engines).
    pub handler_ps: u64,
    /// Picoseconds disks spent servicing requests (sum of disk-service
    /// spans).
    pub storage_ps: u64,
    /// Total simulated run time (the drain time).
    pub total_ps: u64,
}

impl PhaseBreakdown {
    /// `part_ps` as a fraction of the total run time (0 when the run
    /// was empty).
    pub fn share(&self, part_ps: u64) -> f64 {
        if self.total_ps == 0 {
            0.0
        } else {
            part_ps as f64 / self.total_ps as f64
        }
    }
}

/// The end-of-run metrics snapshot: latency distributions plus the
/// per-phase time breakdown. Produced by
/// [`Cluster::metrics`](crate::cluster::Cluster::metrics) alongside
/// [`ClusterStats`](crate::stats::ClusterStats).
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Packet end-to-end latency (fabric injection → last byte
    /// delivered), all delivered packets.
    pub packet_e2e: LogHistogram,
    /// Handler occupancy (dispatch start → invocation complete),
    /// including host-side fallback engines.
    pub handler_occupancy: LogHistogram,
    /// Disk service time (request issue → service done), reads and
    /// aggregated archive writes.
    pub disk_service: LogHistogram,
    /// Buffer-allocation wait (dispatch request → buffer granted);
    /// zero when a buffer was free.
    pub buffer_wait: LogHistogram,
    /// Credit-stall durations on fabric links (merged over every link
    /// direction).
    pub credit_stall: LogHistogram,
    /// Links traversed per delivered packet (unitless counts, not
    /// picoseconds): 1–2 on a single switch, deeper on multi-switch
    /// fabrics — the per-switch transit dimension of a run.
    pub packet_hops: LogHistogram,
    /// Where the run's simulated cycles went.
    pub phases: PhaseBreakdown,
}

impl MetricsReport {
    /// FNV-1a digest over every counter: the five histograms' full
    /// bucket state and each phase bucket, in fixed order. Keeps the
    /// metrics layer under the same determinism contract as
    /// `ClusterStats::digest` (asan-lint's `digest-completeness` rule
    /// checks the fold covers every numeric field).
    pub fn digest(&self) -> u64 {
        let mut h = self.packet_e2e.fold_digest(0xcbf2_9ce4_8422_2325);
        h = self.handler_occupancy.fold_digest(h);
        h = self.disk_service.fold_digest(h);
        h = self.buffer_wait.fold_digest(h);
        h = self.credit_stall.fold_digest(h);
        h = self.packet_hops.fold_digest(h);
        let PhaseBreakdown {
            host_ps,
            fabric_ps,
            handler_ps,
            storage_ps,
            total_ps,
        } = self.phases;
        for v in [host_ps, fabric_ps, handler_ps, storage_ps, total_ps] {
            h = fnv1a_fold(h, v);
        }
        h
    }

    /// The named latency histograms, in canonical order.
    pub fn latencies(&self) -> [(&'static str, &LogHistogram); 5] {
        [
            ("packet", &self.packet_e2e),
            ("handler", &self.handler_occupancy),
            ("disk", &self.disk_service),
            ("buffer_wait", &self.buffer_wait),
            ("credit_stall", &self.credit_stall),
        ]
    }

    /// Deterministic JSON encoding (fixed field order, integral
    /// picoseconds) for the `asan-bench` analyzer.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"phases\":{");
        let PhaseBreakdown {
            host_ps,
            fabric_ps,
            handler_ps,
            storage_ps,
            total_ps,
        } = self.phases;
        out.push_str(&format!(
            "\"host_ps\":{host_ps},\"fabric_ps\":{fabric_ps},\
             \"handler_ps\":{handler_ps},\"storage_ps\":{storage_ps},\
             \"total_ps\":{total_ps}}},\"latency\":{{"
        ));
        for (i, (name, h)) in self.latencies().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"p50_ps\":{},\"p90_ps\":{},\
                 \"p99_ps\":{},\"max_ps\":{},\"mean_ps\":{}}}",
                h.count(),
                h.percentile(50),
                h.percentile(90),
                h.percentile(99),
                h.max(),
                h.mean(),
            ));
        }
        out.push_str(&format!(
            "}},\"packet_hops\":{{\"count\":{},\"p50\":{},\"max\":{},\"mean\":{}}}}}",
            self.packet_hops.count(),
            self.packet_hops.percentile(50),
            self.packet_hops.max(),
            self.packet_hops.mean(),
        ));
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = &self.phases;
        writeln!(
            f,
            "  phase occupancy (of {} total):",
            SimDuration::from_ps(p.total_ps)
        )?;
        for (name, ps) in [
            ("host compute", p.host_ps),
            ("fabric", p.fabric_ps),
            ("switch handler", p.handler_ps),
            ("storage", p.storage_ps),
        ] {
            writeln!(
                f,
                "    {name:<15} {:>12} {:>6.1}%",
                format!("{}", SimDuration::from_ps(ps)),
                p.share(ps) * 100.0,
            )?;
        }
        writeln!(
            f,
            "  latency percentiles:\n    {:<15} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "p50", "p90", "p99"
        )?;
        for (name, h) in self.latencies() {
            writeln!(
                f,
                "    {name:<15} {:>8} {:>12} {:>12} {:>12}",
                h.count(),
                format!("{}", SimDuration::from_ps(h.percentile(50))),
                format!("{}", SimDuration::from_ps(h.percentile(90))),
                format!("{}", SimDuration::from_ps(h.percentile(99))),
            )?;
        }
        writeln!(
            f,
            "  fabric hops/packet: p50 {} max {} over {} packets",
            self.packet_hops.percentile(50),
            self.packet_hops.max(),
            self.packet_hops.count(),
        )?;
        Ok(())
    }
}

/// The in-run observability probe: engines report every timed interval
/// here. Histograms always record (they are cheap and deterministic);
/// spans reach a [`TraceSink`] only when one is installed, so the
/// default configuration pays no formatting or I/O cost.
#[derive(Debug, Default)]
pub struct Probe {
    sink: Option<Box<dyn TraceSink>>, // asan-lint: allow(snapshot-completeness)
    packet_e2e: LogHistogram,
    handler_occupancy: LogHistogram,
    disk_service: LogHistogram,
    buffer_wait: LogHistogram,
    packet_hops: LogHistogram,
    /// Deterministic span sequence number (emission order).
    next_id: u64,
}

impl Probe {
    /// Installs `sink`; subsequent spans are delivered to it.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Whether a sink is installed.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// The installed sink, for read-back (e.g. downcasting a
    /// `RingSink` in tests).
    pub fn sink(&self) -> Option<&dyn TraceSink> {
        self.sink.as_deref()
    }

    /// Flushes the sink (end of run).
    pub fn flush(&mut self) {
        if let Some(s) = self.sink.as_mut() {
            s.flush();
        }
    }

    fn span(&mut self, kind: SpanKind, node: NodeId, start: SimTime, end: SimTime, bytes: u64) {
        let id = self.next_id;
        self.next_id += 1;
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&Span {
                kind,
                node: node.0 as u64,
                id,
                start,
                end,
                bytes,
            });
        }
    }

    /// One packet delivered: injected at `start`, last byte at `end`,
    /// after crossing `hops` links.
    pub(crate) fn packet(
        &mut self,
        dst: NodeId,
        start: SimTime,
        end: SimTime,
        wire: u64,
        hops: usize,
    ) {
        self.packet_e2e.record_duration(end.saturating_since(start));
        self.packet_hops.record(hops as u64);
        self.span(SpanKind::Packet, dst, start, end, wire);
    }

    /// One handler invocation on `node`'s engine.
    pub(crate) fn handler(&mut self, node: NodeId, start: SimTime, end: SimTime, bytes: u64) {
        self.handler_occupancy
            .record_duration(end.saturating_since(start));
        self.span(SpanKind::Handler, node, start, end, bytes);
    }

    /// One disk request serviced by `tca`'s array.
    pub(crate) fn disk(&mut self, tca: NodeId, start: SimTime, end: SimTime, bytes: u64) {
        self.disk_service
            .record_duration(end.saturating_since(start));
        self.span(SpanKind::Disk, tca, start, end, bytes);
    }

    /// One data buffer held on `node` from `seize` (grant) to
    /// `release`, after waiting `wait` for a free buffer.
    pub(crate) fn buffer(
        &mut self,
        node: NodeId,
        seize: SimTime,
        release: SimTime,
        wait: SimDuration,
        bytes: u64,
    ) {
        self.buffer_wait.record_duration(wait);
        self.span(SpanKind::Buffer, node, seize, release, bytes);
    }

    /// Writes the probe's dynamic state (histograms and the span
    /// sequence cursor). The trace sink is a process-local resource and
    /// is not captured; a restored run re-installs one if tracing is
    /// enabled.
    pub(crate) fn snapshot_state(&self, w: &mut SnapWriter) {
        self.packet_e2e.snapshot(w);
        self.handler_occupancy.snapshot(w);
        self.disk_service.snapshot(w);
        self.buffer_wait.snapshot(w);
        self.packet_hops.snapshot(w);
        w.u64(self.next_id);
    }

    /// Overwrites the probe's histograms and span cursor from a
    /// snapshot, keeping any installed sink.
    pub(crate) fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.packet_e2e = LogHistogram::restore(r)?;
        self.handler_occupancy = LogHistogram::restore(r)?;
        self.disk_service = LogHistogram::restore(r)?;
        self.buffer_wait = LogHistogram::restore(r)?;
        self.packet_hops = LogHistogram::restore(r)?;
        self.next_id = r.u64()?;
        Ok(())
    }

    /// Snapshot of the probe-side histograms as a partially filled
    /// report (credit stalls and phases are merged in by
    /// [`Cluster::metrics`](crate::cluster::Cluster::metrics)).
    pub(crate) fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            packet_e2e: self.packet_e2e.clone(),
            handler_occupancy: self.handler_occupancy.clone(),
            disk_service: self.disk_service.clone(),
            buffer_wait: self.buffer_wait.clone(),
            credit_stall: LogHistogram::new(),
            packet_hops: self.packet_hops.clone(),
            phases: PhaseBreakdown::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_sim::trace::RingSink;

    #[test]
    fn probe_records_histograms_without_a_sink() {
        let mut p = Probe::default();
        p.packet(NodeId(1), SimTime::ZERO, SimTime::from_ns(5), 528, 2);
        p.handler(NodeId(2), SimTime::from_ns(5), SimTime::from_ns(9), 512);
        p.disk(NodeId(3), SimTime::ZERO, SimTime::from_us(2), 4096);
        p.buffer(
            NodeId(2),
            SimTime::from_ns(5),
            SimTime::from_ns(9),
            SimDuration::from_ns(1),
            512,
        );
        let m = p.snapshot();
        assert_eq!(m.packet_e2e.count(), 1);
        assert_eq!(m.handler_occupancy.count(), 1);
        assert_eq!(m.disk_service.count(), 1);
        assert_eq!(m.buffer_wait.count(), 1);
        assert_eq!(m.buffer_wait.max(), 1000);
        assert_eq!(m.packet_hops.count(), 1);
        assert_eq!(m.packet_hops.max(), 2);
        assert!(!p.has_sink());
    }

    #[test]
    fn probe_delivers_spans_to_the_sink_in_order() {
        let mut p = Probe::default();
        p.set_sink(Box::new(RingSink::new(16)));
        p.packet(NodeId(1), SimTime::ZERO, SimTime::from_ns(5), 528, 1);
        p.disk(NodeId(3), SimTime::ZERO, SimTime::from_us(2), 4096);
        let ring = p
            .sink()
            .and_then(|s| s.as_any())
            .and_then(|a| a.downcast_ref::<RingSink>())
            .expect("ring sink");
        let ids: Vec<u64> = ring.spans().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1]);
        assert_eq!(ring.spans().next().unwrap().kind, SpanKind::Packet);
    }

    #[test]
    fn digest_covers_phases_and_histograms() {
        let mut a = MetricsReport::default();
        let b = MetricsReport::default();
        assert_eq!(a.digest(), b.digest());
        a.phases.handler_ps = 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = MetricsReport::default();
        c.packet_e2e.record(5);
        assert_ne!(c.digest(), b.digest());
    }

    #[test]
    fn json_has_fixed_shape() {
        let mut m = MetricsReport::default();
        m.packet_e2e.record(1000);
        m.phases.total_ps = 2000;
        let j = m.to_json();
        assert!(j.starts_with("{\"phases\":{\"host_ps\":0,"));
        assert!(j.contains("\"total_ps\":2000"));
        assert!(j.contains("\"packet\":{\"count\":1,\"p50_ps\":1000,"));
        assert!(j.contains("\"credit_stall\":{\"count\":0,"));
        assert!(j.ends_with("}}"));
    }

    #[test]
    fn display_renders_phase_and_percentile_tables() {
        let mut m = MetricsReport::default();
        m.packet_e2e.record(1_000_000);
        m.phases = PhaseBreakdown {
            host_ps: 500,
            fabric_ps: 1_000_000,
            handler_ps: 0,
            storage_ps: 0,
            total_ps: 2_000_000,
        };
        let text = m.to_string();
        assert!(text.contains("phase occupancy"));
        assert!(text.contains("host compute"));
        assert!(text.contains("50.0%"), "text:\n{text}");
        assert!(text.contains("packet"));
        assert!(text.contains("credit_stall"));
    }
}
