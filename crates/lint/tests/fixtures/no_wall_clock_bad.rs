//! Known-bad: a model component timing itself with the host's clock —
//! the simulated outcome now depends on machine load.

use std::time::Instant;

pub fn handler_cost_ns() -> u64 {
    let t0 = Instant::now();
    let spin: u64 = (0..1000).sum();
    t0.elapsed().as_nanos() as u64 + (spin & 1)
}
