//! Known-bad: accumulates per-node statistics by iterating a HashMap,
//! so the fold order — and any order-sensitive digest of it — changes
//! between processes.

use std::collections::HashMap;

pub fn total_latency(per_node: &HashMap<u16, u64>) -> u64 {
    let mut acc = 0u64;
    for (_node, ns) in per_node.iter() {
        acc = acc.rotate_left(1) ^ ns;
    }
    acc
}
