//! Rule `no-wall-clock`: simulated time only.
//!
//! The simulator has exactly one clock — `asan_sim::SimTime`, advanced
//! by the scheduler. A model that reads `std::time` couples its
//! behaviour to the machine it runs on, which is invisible until a
//! digest diverges on someone else's laptop. Wall-clock reads are
//! legitimate in exactly one place: the benchmark harness timing real
//! executions (`crates/bench/benches/`).

use super::{is_ident, is_punct, FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::Kind;

pub(crate) struct NoWallClock;

impl Rule for NoWallClock {
    fn name(&self) -> &'static str {
        "no-wall-clock"
    }

    fn describe(&self) -> &'static str {
        "deny std::time / Instant::now / SystemTime outside crates/bench/benches"
    }

    fn scope(&self) -> &'static str {
        "everywhere except crates/bench/benches"
    }

    fn since_pr(&self) -> u32 {
        3
    }

    fn applies(&self, rel_path: &str) -> bool {
        !rel_path.starts_with("crates/bench/benches/")
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let toks = ctx.tokens();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident {
                continue;
            }
            let hit = match t.text.as_str() {
                // `std::time` in a use declaration or path.
                "std" => is_punct(toks, i + 1, "::") && is_ident(toks, i + 2, "time"),
                // Any `Instant::...` read (now / elapsed via now).
                "Instant" => is_punct(toks, i + 1, "::"),
                "SystemTime" => true,
                _ => false,
            };
            if hit {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: Severity::Deny,
                    file: ctx.rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: "wall-clock time read; simulation code must use \
                              `asan_sim::SimTime` (only crates/bench/benches may time \
                              real executions)"
                        .to_string(),
                });
            }
        }
    }
}
