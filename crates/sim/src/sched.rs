//! Run-loop facade over the [`EventQueue`]: pop counting and event
//! tracing in one place.
//!
//! Simulators that drive an [`EventQueue`] by hand end up re-implementing
//! the same bookkeeping: a processed-event counter (for safety limits and
//! diagnostics) and an optional per-event trace. [`Scheduler`] bundles
//! both. The trace switch is resolved *once* — from the `ASAN_TRACE`
//! environment variable via [`Tracer::from_env`] — instead of per event,
//! which keeps the hot loop free of `env` syscalls.
//!
//! # Example
//!
//! ```
//! use asan_sim::sched::{Scheduler, Traceable};
//! use asan_sim::SimTime;
//!
//! struct Tick;
//! impl Traceable for Tick {
//!     fn trace_label(&self) -> &'static str {
//!         "Tick"
//!     }
//! }
//!
//! let mut s: Scheduler<Tick> = Scheduler::new();
//! s.push(SimTime::from_ns(3), Tick);
//! let (t, _) = s.pop().unwrap();
//! assert_eq!(t, SimTime::from_ns(3));
//! assert_eq!(s.processed(), 1);
//! ```

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Types that can name themselves for the event trace.
pub trait Traceable {
    /// A short static label naming this event's kind.
    fn trace_label(&self) -> &'static str;
}

/// Event-trace switch, resolved once per run instead of per event.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tracer {
    enabled: bool,
}

impl Tracer {
    /// A tracer armed iff the `ASAN_TRACE` environment variable is set.
    pub fn from_env() -> Self {
        Tracer {
            enabled: std::env::var_os("ASAN_TRACE").is_some(),
        }
    }

    /// A tracer that never prints.
    pub fn disabled() -> Self {
        Tracer { enabled: false }
    }

    /// Whether tracing is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }
}

/// The pending-event set plus run bookkeeping: a processed-event
/// counter and an optional trace of every pop.
///
/// Ordering semantics are exactly those of [`EventQueue`]: events pop
/// in `(time, insertion sequence)` order, so simulations stay
/// reproducible bit for bit.
#[derive(Debug)]
pub struct Scheduler<E> {
    queue: EventQueue<E>,
    tracer: Tracer,
    processed: u64,
}

impl<E: Traceable> Scheduler<E> {
    /// Creates an empty scheduler with tracing off.
    pub fn new() -> Self {
        Scheduler {
            queue: EventQueue::new(),
            tracer: Tracer::disabled(),
            processed: 0,
        }
    }

    /// Installs `tracer` (typically [`Tracer::from_env`], called once at
    /// the start of a run).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.queue.push(time, event);
    }

    /// Removes and returns the earliest event, counting it as processed
    /// and emitting a trace line if the tracer is armed.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        self.processed += 1;
        if self.tracer.is_enabled() {
            eprintln!("[ev {}] t={} {:?}", self.processed, t, ev.trace_label());
        }
        Some((t, ev))
    }

    /// Events popped so far (across every run driven by this scheduler).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<E: Traceable> Default for Scheduler<E> {
    fn default() -> Self {
        Scheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ev(u32);
    impl Traceable for Ev {
        fn trace_label(&self) -> &'static str {
            "Ev"
        }
    }

    #[test]
    fn pops_in_order_and_counts() {
        let mut s = Scheduler::new();
        s.push(SimTime::from_ns(5), Ev(2));
        s.push(SimTime::from_ns(1), Ev(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop().unwrap().1, Ev(1));
        assert_eq!(s.pop().unwrap().1, Ev(2));
        assert!(s.pop().is_none());
        assert_eq!(s.processed(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.push(SimTime::from_ns(7), Ev(i));
        }
        for i in 0..10 {
            assert_eq!(s.pop().unwrap().1, Ev(i));
        }
    }

    #[test]
    fn processed_persists_across_drains() {
        let mut s = Scheduler::new();
        s.push(SimTime::ZERO, Ev(0));
        s.pop();
        s.push(SimTime::ZERO, Ev(1));
        s.pop();
        assert_eq!(s.processed(), 2);
    }

    #[test]
    fn tracer_state_is_explicit() {
        assert!(!Tracer::disabled().is_enabled());
        let mut s: Scheduler<Ev> = Scheduler::default();
        s.set_tracer(Tracer::disabled());
        s.push(SimTime::ZERO, Ev(0));
        assert_eq!(s.pop().unwrap().1, Ev(0));
    }
}
