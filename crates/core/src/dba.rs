//! The data buffer administrator (DBA).
//!
//! §3: "a data buffer administrator that aids in buffer allocation and
//! de-allocation … In our design, we have 16 data buffers, each 512
//! bytes long (MTU of the network)."
//!
//! Allocation is time-aware: a request made at time `t` when all buffers
//! are busy returns the buffer that frees earliest together with the
//! time the allocation actually succeeds, so callers (the dispatch unit
//! and handler send paths) naturally model buffer back-pressure.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::{Counter, Summary};
use asan_sim::SimTime;

use crate::buffer::{BufId, DataBuffer};

/// Number of data buffers in the paper's switch.
pub const NUM_BUFFERS: usize = 16;

/// The buffer file plus its administrator.
#[derive(Debug)]
pub struct BufferAdmin {
    buffers: Vec<DataBuffer>,
    /// `None` = free; `Some(t)` = busy, frees at `t` (MAX if open-ended).
    busy: Vec<Option<SimTime>>,
    allocs: Counter,
    alloc_waits: Counter,
    occupancy: Summary,
}

impl BufferAdmin {
    /// Creates an administrator over `n` buffers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds 255 (the `BufId` range).
    pub fn new(n: usize) -> Self {
        assert!(n > 0 && n <= 255, "buffer count out of range");
        BufferAdmin {
            buffers: (0..n).map(|_| DataBuffer::new()).collect(),
            busy: vec![None; n],
            allocs: Counter::default(),
            alloc_waits: Counter::default(),
            occupancy: Summary::default(),
        }
    }

    /// The paper's 16-buffer administrator.
    pub fn paper() -> Self {
        BufferAdmin::new(NUM_BUFFERS)
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether there are no buffers (never true for a valid admin).
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }

    /// Buffers currently busy at `t`.
    pub fn busy_count(&self, t: SimTime) -> usize {
        self.busy
            .iter()
            .filter(|b| matches!(b, Some(free) if *free > t))
            .count()
    }

    /// Allocates a buffer for use starting at `now`. If all are busy,
    /// the allocation waits for the earliest release. Returns the buffer
    /// and the time the allocation succeeded.
    pub fn alloc(&mut self, now: SimTime) -> (BufId, SimTime) {
        self.allocs.inc();
        self.occupancy.record(self.busy_count(now) as u64);
        // Prefer a buffer already free at `now`.
        let mut best: Option<(usize, SimTime)> = None;
        for (i, b) in self.busy.iter().enumerate() {
            let free_at = match b {
                None => SimTime::ZERO,
                Some(t) => *t,
            };
            if best.is_none_or(|(_, bt)| free_at < bt) {
                best = Some((i, free_at));
            }
        }
        let (idx, free_at) = best.expect("non-empty buffer file");
        let granted = now.max(free_at);
        if free_at > now {
            self.alloc_waits.inc();
        }
        // Mark open-ended busy; `release` closes it.
        self.busy[idx] = Some(SimTime::MAX);
        self.buffers[idx].reset();
        (BufId(idx as u8), granted)
    }

    /// Releases `id` at time `t` (handler done with it, or the send unit
    /// finished draining it).
    ///
    /// # Panics
    ///
    /// Panics if the buffer was not allocated.
    pub fn release(&mut self, id: BufId, t: SimTime) {
        let slot = &mut self.busy[id.0 as usize];
        assert!(slot.is_some(), "releasing free buffer {id:?}");
        *slot = Some(t);
    }

    /// Access to a buffer's contents.
    pub fn buffer(&self, id: BufId) -> &DataBuffer {
        &self.buffers[id.0 as usize]
    }

    /// Mutable access to a buffer's contents.
    pub fn buffer_mut(&mut self, id: BufId) -> &mut DataBuffer {
        &mut self.buffers[id.0 as usize]
    }

    /// Total allocations.
    pub fn allocs(&self) -> u64 {
        self.allocs.get()
    }

    /// Allocations that had to wait for a release.
    pub fn alloc_waits(&self) -> u64 {
        self.alloc_waits.get()
    }

    /// Occupancy distribution sampled at each allocation.
    pub fn occupancy(&self) -> &Summary {
        &self.occupancy
    }

    /// Writes every buffer's contents, the busy map, and the allocation
    /// statistics.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.usize(self.buffers.len());
        for b in &self.buffers {
            b.snapshot(w);
        }
        for busy in &self.busy {
            w.opt_time(*busy);
        }
        self.allocs.snapshot(w);
        self.alloc_waits.snapshot(w);
        self.occupancy.snapshot(w);
    }

    /// Overwrites this administrator's state from a snapshot taken of
    /// an administrator with the same buffer count.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n != self.buffers.len() {
            return Err(SnapError::Malformed("buffer count mismatch"));
        }
        for b in &mut self.buffers {
            b.restore(r)?;
        }
        for busy in &mut self.busy {
            *busy = r.opt_time()?;
        }
        self.allocs = Counter::restore(r)?;
        self.alloc_waits = Counter::restore(r)?;
        self.occupancy = Summary::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_buffer_is_immediate() {
        let mut a = BufferAdmin::paper();
        let (id, t) = a.alloc(SimTime::from_ns(5));
        assert_eq!(t, SimTime::from_ns(5));
        assert_eq!(a.busy_count(SimTime::from_ns(5)), 1);
        a.release(id, SimTime::from_ns(100));
        assert_eq!(a.busy_count(SimTime::from_ns(101)), 0);
    }

    #[test]
    fn exhaustion_waits_for_earliest_release() {
        let mut a = BufferAdmin::new(2);
        let (b0, _) = a.alloc(SimTime::ZERO);
        let (b1, _) = a.alloc(SimTime::ZERO);
        a.release(b0, SimTime::from_ns(300));
        a.release(b1, SimTime::from_ns(200));
        let (id, t) = a.alloc(SimTime::from_ns(10));
        // b1 frees first.
        assert_eq!(id, b1);
        assert_eq!(t, SimTime::from_ns(200));
        assert_eq!(a.alloc_waits(), 1);
    }

    #[test]
    fn streaming_needs_only_two_buffers() {
        // The paper's observation: one input + one output stream = 2
        // buffers. Simulate 100 packets with prompt release.
        let mut a = BufferAdmin::new(2);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            let (inb, granted) = a.alloc(t);
            let done = granted + asan_sim::SimDuration::from_ns(500);
            a.release(inb, done);
            let (outb, granted_o) = a.alloc(granted);
            a.release(outb, granted_o + asan_sim::SimDuration::from_ns(600));
            t = done;
        }
        // Two buffers sustain the pipeline: every allocation succeeds and
        // at most both are ever in flight.
        assert_eq!(a.allocs(), 200);
        assert!(a.occupancy().max().unwrap() <= 2);
    }

    #[test]
    #[should_panic(expected = "releasing free buffer")]
    fn releasing_unallocated_buffer_panics() {
        let mut a = BufferAdmin::new(2);
        a.release(BufId(1), SimTime::ZERO);
    }

    #[test]
    fn occupancy_summary_tracks_high_water() {
        let mut a = BufferAdmin::new(4);
        let (x, _) = a.alloc(SimTime::ZERO);
        let (_y, _) = a.alloc(SimTime::ZERO);
        let (_z, _) = a.alloc(SimTime::ZERO);
        a.release(x, SimTime::from_ns(1));
        let _ = a.alloc(SimTime::from_ns(2));
        assert_eq!(a.occupancy().max(), Some(2));
        assert_eq!(a.occupancy().count(), 4);
    }

    #[test]
    fn buffer_contents_reset_on_alloc() {
        let mut a = BufferAdmin::new(1);
        let (id, _) = a.alloc(SimTime::ZERO);
        a.buffer_mut(id).fill_local(&[1u8; 64], SimTime::ZERO);
        a.release(id, SimTime::from_ns(1));
        let (id2, _) = a.alloc(SimTime::from_ns(2));
        assert_eq!(id, id2);
        assert!(a.buffer(id2).is_empty());
    }
}
