//! Rule `snapshot-completeness`: every field of a snapshottable struct
//! is covered by its snapshot/restore pair.
//!
//! The crash-safe checkpoint subsystem (`asan_sim::snap`) round-trips
//! simulation state through `fn snapshot*` / `fn restore*` methods. A
//! field added to a snapshottable struct but forgotten in those
//! bodies silently desynchronizes a restored run from the original —
//! exactly the drift the golden-digest net can only catch after the
//! fact. This rule finds every struct whose same-file `impl` blocks
//! define a `snapshot*` or `restore*` method, unions the identifiers
//! across **all** of those bodies (some fields are only referenced on
//! the restore side, e.g. a reader rebuilt from a rediscovered plan),
//! and requires each named field to appear in that union. Static
//! configuration that is intentionally rebuilt — not serialized —
//! carries `// asan-lint: allow(snapshot-completeness)` on its
//! declaration line.

use std::collections::BTreeMap;

use super::{is_punct, matching_brace, FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Kind, Token};

/// One struct field: name and declaration line.
struct Field {
    name: String,
    line: u32,
    col: u32,
}

pub(crate) struct SnapshotCompleteness;

impl Rule for SnapshotCompleteness {
    fn name(&self) -> &'static str {
        "snapshot-completeness"
    }

    fn describe(&self) -> &'static str {
        "every field of a struct with snapshot*/restore* methods must appear in those bodies"
    }

    fn scope(&self) -> &'static str {
        "files whose impls define snapshot*/restore* methods (self-scoped)"
    }

    fn since_pr(&self) -> u32 {
        6
    }

    fn applies(&self, _rel_path: &str) -> bool {
        // Self-scoping: only files whose impls define snapshot/restore
        // methods have anything to check.
        true
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let toks = ctx.tokens();
        let hooks = snapshot_idents_by_type(toks);
        if hooks.is_empty() {
            return;
        }
        let structs = collect_structs(toks);
        for (ty, idents) in &hooks {
            let Some(fields) = structs.get(ty.as_str()) else {
                // The struct lives in another file (or is a tuple
                // struct delegating through `.0`); nothing named to
                // check here.
                continue;
            };
            for f in fields {
                if !idents.contains(&f.name) {
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: Severity::Deny,
                        file: ctx.rel_path.to_string(),
                        line: f.line,
                        col: f.col,
                        message: format!(
                            "field `{}::{}` never appears in this file's snapshot*/restore* \
                             bodies; serialize it (restored runs must be bit-identical) or \
                             annotate `// asan-lint: allow(snapshot-completeness)`",
                            ty, f.name,
                        ),
                    });
                }
            }
        }
    }
}

/// Collects `struct Name { field: Type, ... }` declarations (named
/// fields only — tuple and unit structs have nothing to check).
fn collect_structs(toks: &[Token]) -> BTreeMap<String, Vec<Field>> {
    let mut out = BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "struct") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == Kind::Ident) else {
            i += 1;
            continue;
        };
        let mut j = i + 2;
        while j < toks.len() && !matches!(toks[j].text.as_str(), "{" | "(" | ";") {
            j += 1;
        }
        if !is_punct(toks, j, "{") {
            i = j.max(i + 1);
            continue;
        }
        let close = matching_brace(toks, j);
        out.insert(name.text.clone(), collect_fields(&toks[j + 1..close]));
        i = close;
    }
    out
}

/// Splits one struct body into named fields (top-level `name: type`).
fn collect_fields(body: &[Token]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            i += 1;
            continue;
        }
        if depth == 0 && t.kind == Kind::Ident && is_punct(body, i + 1, ":") {
            let name = t.text.clone();
            let (line, col) = (t.line, t.col);
            // Skip the type tokens to the field-separating comma.
            let mut j = i + 2;
            let mut tdepth = 0i32;
            while j < body.len() {
                let tt = &body[j];
                if tt.kind == Kind::Punct {
                    match tt.text.as_str() {
                        "<" | "(" | "[" => tdepth += 1,
                        ">" | ")" | "]" => tdepth -= 1,
                        "," if tdepth <= 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            fields.push(Field { name, line, col });
            i = j;
            continue;
        }
        i += 1;
    }
    fields
}

/// For every `impl` block in the file that defines a `fn snapshot*` or
/// `fn restore*` method, the union of identifiers across those method
/// bodies, keyed by the implemented type's name.
fn snapshot_idents_by_type(toks: &[Token]) -> BTreeMap<String, Vec<String>> {
    let mut out: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "impl") {
            i += 1;
            continue;
        }
        let Some(open) = (i..toks.len()).find(|&j| is_punct(toks, j, "{")) else {
            break;
        };
        let Some(ty) = impl_target(&toks[i + 1..open]) else {
            i = open + 1;
            continue;
        };
        let close = matching_brace(toks, open);
        let mut idents = Vec::new();
        let mut j = open + 1;
        while j < close {
            let is_hook = toks[j].kind == Kind::Ident
                && toks[j].text == "fn"
                && toks.get(j + 1).is_some_and(|t| {
                    t.kind == Kind::Ident
                        && (t.text.starts_with("snapshot") || t.text.starts_with("restore"))
                });
            if !is_hook {
                j += 1;
                continue;
            }
            let Some(body_open) = (j..close).find(|&k| is_punct(toks, k, "{")) else {
                break;
            };
            let body_close = matching_brace(toks, body_open);
            idents.extend(
                toks[body_open..body_close]
                    .iter()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone()),
            );
            j = body_close + 1;
        }
        if !idents.is_empty() {
            out.entry(ty).or_default().extend(idents);
        }
        i = close + 1;
    }
    out
}

/// The type an `impl` header targets: the first identifier after `for`
/// (trait impls), else the first identifier outside the generic
/// parameter list (inherent impls).
fn impl_target(header: &[Token]) -> Option<String> {
    let mut depth = 0i32;
    let mut first_ty: Option<&Token> = None;
    let mut after_for = false;
    for t in header {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                _ => {}
            }
            continue;
        }
        if t.kind != Kind::Ident || depth > 0 {
            continue;
        }
        if t.text == "for" {
            after_for = true;
            continue;
        }
        if after_for {
            return Some(t.text.clone());
        }
        if first_ty.is_none() && t.text != "dyn" {
            first_ty = Some(t);
        }
    }
    first_ty.map(|t| t.text.clone())
}
