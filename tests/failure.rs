//! Failure-injection and back-pressure tests: the system must degrade
//! gracefully (or fail loudly and precisely) when pushed past its
//! resource limits.

use asan_core::active::{ActiveSwitch, ActiveSwitchConfig};
use asan_core::cluster::{Cluster, ClusterConfig, HostCtx, HostProgram};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::{HandlerId, Header, LinkConfig, NodeId, Packet};
use asan_sim::{SimDuration, SimTime};

fn single_switch(hosts: usize) -> (TopologyBuilder, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let hs: Vec<NodeId> = (0..hosts).map(|_| b.add_host()).collect();
    for &h in &hs {
        b.connect(h, sw, LinkConfig::paper());
    }
    (b, hs, sw)
}

/// A handler that hoards buffers: the DBA must stall its allocations
/// rather than hand out overlapping buffers, and the pipeline must
/// still make forward progress.
#[test]
fn buffer_hoarding_backpressures_but_progresses() {
    struct Hoarder {
        held: Vec<asan_core::BufId>,
        invocations: u32,
    }
    impl Handler for Hoarder {
        fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
            let _ = ctx.payload();
            // Hold up to 12 of the 16 buffers indefinitely.
            if self.held.len() < 12 {
                self.held.push(ctx.alloc_buffer());
            }
            self.invocations += 1;
        }
        fn as_any(&self) -> Option<&dyn std::any::Any> {
            Some(self)
        }
    }

    let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
    sw.register(
        HandlerId::new(1),
        Box::new(Hoarder {
            held: Vec::new(),
            invocations: 0,
        }),
    );
    let mut last_done = SimTime::ZERO;
    for i in 0..40u32 {
        let pkt = Packet::new(
            Header {
                src: NodeId(1),
                dst: NodeId(0),
                len: 512,
                handler: Some(HandlerId::new(1)),
                addr: (i % 16) * 512,
                seq: i,
            },
            vec![0; 512],
        );
        let t = SimTime::from_us(i as u64 * 2);
        let r = sw.dispatch(&pkt, t, t, t + SimDuration::from_ns(512));
        assert!(r.done >= last_done, "time went backwards");
        last_done = r.done;
    }
    // 12 hoarded + in-flight inputs stayed within the file; the
    // remaining invocations still completed.
    assert!(sw.dba().alloc_waits() == 0 || sw.dba().occupancy().max().unwrap() <= 16);
    let h = sw.take_handler(HandlerId::new(1)).unwrap();
    let hoarder = h
        .as_any()
        .and_then(|a| a.downcast_ref::<Hoarder>())
        .unwrap();
    assert_eq!(hoarder.invocations, 40, "pipeline stalled permanently");
}

/// Dispatching a message whose handler was never registered is a
/// protocol violation and must fail loudly, not drop silently.
#[test]
#[should_panic(expected = "no handler registered")]
fn unregistered_handler_fails_loudly() {
    let mut sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
    let pkt = Packet::new(
        Header {
            src: NodeId(1),
            dst: NodeId(0),
            len: 0,
            handler: Some(HandlerId::new(9)),
            addr: 0,
            seq: 0,
        },
        Vec::new(),
    );
    sw.dispatch(&pkt, SimTime::ZERO, SimTime::ZERO, SimTime::ZERO);
}

/// The event-count guard converts a runaway message loop into a
/// diagnosable panic instead of an endless simulation.
#[test]
#[should_panic(expected = "event limit exceeded")]
fn livelock_guard_trips() {
    struct PingPong {
        peer: NodeId,
    }
    impl HostProgram for PingPong {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            ctx.send(self.peer, None, 0, vec![1]);
        }
        fn on_message(&mut self, ctx: &mut HostCtx<'_>, _msg: &asan_core::cluster::HostMsg) {
            // Reply forever: a protocol bug.
            ctx.send(self.peer, None, 0, vec![1]);
        }
    }
    let (topo, hs, _) = single_switch(2);
    let mut cfg = ClusterConfig::paper();
    cfg.max_events = 10_000;
    let mut cl = Cluster::new(topo, cfg);
    cl.set_program(hs[0], Box::new(PingPong { peer: hs[1] }));
    cl.set_program(hs[1], Box::new(PingPong { peer: hs[0] }));
    cl.run();
}

/// Reading past a file's end is caught at issue time.
#[test]
#[should_panic(expected = "read beyond file end")]
fn read_past_eof_rejected() {
    struct BadReader {
        file: asan_core::cluster::FileId,
    }
    impl HostProgram for BadReader {
        fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
            let len = ctx.file_len(self.file);
            ctx.read_file(
                self.file,
                len,
                1,
                asan_core::cluster::Dest::HostBuf { addr: 0 },
            );
        }
    }
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let h = b.add_host();
    let t = b.add_tca();
    b.connect(h, sw, LinkConfig::paper());
    b.connect(t, sw, LinkConfig::paper());
    let mut cl = Cluster::new(b, ClusterConfig::paper());
    let file = cl.add_file(t, vec![0u8; 100]);
    cl.set_program(h, Box::new(BadReader { file }));
    cl.run();
}

/// A slow receiver exhausts link credits; the sender stalls but the
/// fabric stays consistent and every byte is eventually carried.
#[test]
fn credit_exhaustion_is_transient() {
    use asan_net::link::{Link, LinkConfig};
    let cfg = LinkConfig {
        credits: 2,
        ..LinkConfig::paper()
    };
    let mut l = Link::new(cfg);
    // Receiver drains each packet 10 µs after it arrives.
    let mut drains: Vec<SimTime> = Vec::new();
    let mut total = 0u64;
    for i in 0..50u64 {
        let t = l.send(528, SimTime::from_ns(i * 100));
        drains.push(t.done + SimDuration::from_us(10));
        l.note_drain(*drains.last().unwrap());
        total += 528;
    }
    assert_eq!(l.bytes_carried(), total);
    assert!(l.credit_stalls() > 0, "expected credit pressure");
    // Throughput degraded to the receiver's drain rate, not to zero.
    let span = drains.last().unwrap().since(SimTime::ZERO);
    assert!(span.as_us() >= 10 * 48 / 2, "span = {span}");
}

/// Zero-length reads are rejected before they corrupt schedules.
#[test]
#[should_panic(expected = "zero-length read")]
fn zero_length_read_rejected() {
    use asan_io::storage::{Storage, StorageConfig};
    let mut s = Storage::new(StorageConfig::paper());
    s.read_stream(0, 0, SimTime::ZERO);
}
