//! The fabric subsystem: packet injection, fault fates, and the
//! retransmit/timeout reliability protocol.
//!
//! This engine is (almost) stateless: the protocol state it operates on
//! — per-request delivery bitmaps, retry counters, backed-off timeouts —
//! lives in the shared request table on the [`EventBus`], because the
//! host and dispatch subsystems consult the same state when packets
//! arrive. What belongs *here* is every decision made while a packet is
//! in flight: whether it is delivered, corrupted, or dropped, and how
//! the loss is detected and repaired (NAK retransmits, end-to-end
//! timeouts with exponential backoff).

use asan_net::{Fabric, HEADER_BYTES, MTU};
use asan_sim::faults::{FaultInjector, FaultPlan, PacketFate};
use asan_sim::trace::TraceCtx;
use asan_sim::SimTime;

use crate::error::SimError;
use crate::events::{Dest, Event, EventBus, ReqId};

use super::Engine;

/// The fabric subsystem engine: the packet reliability protocol over
/// the shared request table.
#[derive(Debug, Default)]
pub struct FabricEngine;

impl Engine for FabricEngine {
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError> {
        match ev {
            Event::InjectIoPacket {
                src,
                dst,
                handler,
                addr,
                payload,
                seq,
                io_req,
                trace,
            } => {
                let wire = (payload.len() + HEADER_BYTES) as u64;
                if let Some(req) = io_req.filter(|_| bus.injector.is_some()) {
                    match bus.injector.as_mut().expect("armed").packet_fate() {
                        PacketFate::Deliver => {}
                        PacketFate::Corrupt(bit) => {
                            // The corrupted packet still occupies the
                            // wire; the receiver's ICRC check rejects it
                            // on arrival.
                            let d = bus.fabric.transmit(wire, src, dst, t);
                            let mut pkt = asan_net::Packet::new(
                                asan_net::Header {
                                    src,
                                    dst,
                                    len: u16::try_from(payload.len())
                                        .expect("payload bounded by MTU"),
                                    handler,
                                    addr,
                                    seq,
                                },
                                payload,
                            );
                            pkt.corrupt_payload_bit(bit);
                            debug_assert!(!pkt.icrc_ok(), "corruption must break the ICRC");
                            bus.mark_faulted(req, seq, 1);
                            let inj = bus.injector.as_mut().expect("armed");
                            inj.stats.packet_corrupt.detected += 1;
                            let nak = inj.plan().nak_retransmit;
                            let delay = inj.plan().nak_delay;
                            if nak {
                                bus.push(d.arrival + delay, Event::Retransmit { req, seq });
                            }
                            return Ok(());
                        }
                        PacketFate::Drop => {
                            // Lost in flight: the wire was consumed, and
                            // the receiver's sequence-gap NAK (or the
                            // end-to-end timeout) detects the hole.
                            let d = bus.fabric.transmit(wire, src, dst, t);
                            bus.mark_faulted(req, seq, 2);
                            let inj = bus.injector.as_mut().expect("armed");
                            inj.stats.packet_drop.detected += 1;
                            let nak = inj.plan().nak_retransmit;
                            let delay = inj.plan().nak_delay;
                            if nak {
                                bus.push(d.arrival + delay, Event::Retransmit { req, seq });
                            }
                            return Ok(());
                        }
                    }
                }
                let d = bus.transmit(wire, src, dst, t, TraceCtx { trace, parent: 0 });
                bus.deliver(src, dst, handler, addr, payload, seq, d, io_req, trace);
            }
            Event::Retransmit { req, seq } => {
                let Some(st) = bus.reqs.get(&req) else {
                    return Ok(());
                };
                if st.got.get(seq as usize).copied().unwrap_or(true) {
                    return Ok(()); // delivered in the meantime
                }
                Self::retransmit_seq(req, seq, t, bus);
            }
            Event::RequestTimeout { req, attempt } => {
                let max = match bus.injector.as_ref() {
                    Some(i) => i.plan().max_retries,
                    None => return Ok(()),
                };
                let Some(st) = bus.reqs.get_mut(&req) else {
                    return Ok(());
                };
                if st.attempt != attempt {
                    return Ok(()); // superseded by a newer timer
                }
                if !st.got.is_empty() && st.got.iter().all(|&g| g) {
                    return Ok(()); // fully delivered; completion in flight
                }
                if attempt >= max {
                    return Err(SimError::RetriesExhausted {
                        req: req.0,
                        attempts: attempt + 1,
                    });
                }
                st.attempt += 1;
                // Exponential backoff; saturates so a timer armed near
                // the u64-picosecond horizon clamps instead of wrapping
                // to the past (which would busy-loop the watchdog).
                st.timeout = st.timeout.saturating_add(st.timeout);
                let next_attempt = st.attempt;
                let next_at = t.saturating_add(st.timeout);
                let missing: Vec<u32> = st
                    .got
                    .iter()
                    .enumerate()
                    .filter(|&(_, &g)| !g)
                    .map(|(i, _)| i as u32)
                    .collect();
                bus.injector.as_mut().expect("armed").stats.timeouts += 1;
                for seq in missing {
                    Self::retransmit_seq(req, seq, t, bus);
                }
                bus.push(
                    next_at,
                    Event::RequestTimeout {
                        req,
                        attempt: next_attempt,
                    },
                );
            }
            Event::CompletionNotice { tca, host, req } => {
                let wire = HEADER_BYTES as u64;
                let ctx = bus.probe.trace_for_req(req.0);
                let d = bus.transmit(wire, tca, host, t, ctx);
                bus.push(d.arrival, Event::IoComplete { host, req });
            }
            other => unreachable!("not a fabric event: {other:?}"),
        }
        Ok(())
    }
}

impl FabricEngine {
    /// Arms the run-scoped fabric faults of `plan`: scheduled link
    /// outages and the restricted credit limit.
    pub(crate) fn arm(plan: &FaultPlan, fabric: &mut Fabric) {
        for &(from, until) in &plan.link_outages {
            fabric.inject_outage(from, until);
        }
        if let Some(credits) = plan.credit_limit {
            fabric.restrict_credits(credits);
        }
    }

    /// Link-outage accounting at end of run: each deferred send hit a
    /// down window (detected by the link layer) and was delayed
    /// (degradation).
    pub(crate) fn outage_accounting(injector: &mut Option<FaultInjector>, fabric: &Fabric) {
        if let Some(inj) = injector.as_mut() {
            let deferrals = fabric.total_outage_deferrals();
            inj.stats.link_outage.injected = inj.plan().link_outages.len() as u64;
            inj.stats.link_outage.detected = deferrals;
            inj.stats.link_outage.degraded = deferrals;
        }
    }

    /// Re-injects packet `seq` of `req` from its TCA. The TCA keeps a
    /// request's transmitted stripes in its buffer cache until the
    /// request completes, so a retransmission is a memory re-read, not
    /// a disk I/O — it pays only wire time (plus the NAK/timeout delay
    /// that scheduled it), and it passes through fault injection again.
    fn retransmit_seq(req: ReqId, seq: u32, now: SimTime, bus: &mut EventBus<'_>) {
        let st = &bus.reqs[&req];
        let (dst, handler, base_addr) = match st.dest {
            Dest::HostBuf { addr } => (st.host, None, addr as u32),
            Dest::Mapped {
                node,
                handler,
                base_addr,
            } => (node, Some(handler), base_addr),
        };
        let prefix: u64 = st.lens[..seq as usize].iter().map(|&l| l as u64).sum();
        let start = st.offset as usize + prefix as usize;
        let plen = st.lens[seq as usize] as usize;
        let payload = bus.files.data[st.file.0].slice(start..start + plen);
        let src = st.tca;
        bus.injector.as_mut().expect("armed").stats.retransmits += 1;
        // Retransmits stay on the original request's causal trace.
        let trace = bus.probe.trace_for_req(req.0).trace;
        bus.push(
            now,
            Event::InjectIoPacket {
                src,
                dst,
                handler,
                addr: base_addr.wrapping_add(seq.wrapping_mul(MTU as u32)),
                payload,
                seq,
                io_req: Some(req),
                trace,
            },
        );
    }
}
