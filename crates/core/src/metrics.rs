//! The observability layer: the in-run probe and the end-of-run
//! metrics report.
//!
//! [`Probe`] is the single point every engine reports to while a run is
//! in flight: each timed interval of simulated work becomes one latency
//! sample in a [`LogHistogram`] and — when a [`TraceSink`] is installed
//! — one typed [`Span`]. [`MetricsReport`] is the end-of-run snapshot:
//! the five latency distributions (packet end-to-end, handler
//! occupancy, disk service, buffer wait, credit stall) plus the
//! per-phase time breakdown the paper's evaluation figures are built
//! from.
//!
//! Instrumentation is observation-only: nothing here schedules events
//! or advances clocks, so golden digests are bit-identical whether a
//! sink is installed or not. All times are simulated picoseconds
//! ([`SimTime`]); wall-clock reads are banned by asan-lint's
//! `no-wall-clock` rule.

use std::collections::BTreeMap;
use std::fmt;

use asan_net::{Hop, NodeId};
use asan_sim::faults::fnv1a_fold;
use asan_sim::hist::LogHistogram;
use asan_sim::series::{self, TimeSeries, Timeline};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::trace::{Span, SpanKind, TraceCtx, TraceSink};
use asan_sim::{SimDuration, SimTime};

/// Where the simulated cycles of a run went, one bucket per pipeline
/// phase. The buckets measure *occupancy*, not a partition: phases
/// overlap in time (a packet crosses the fabric while a disk seeks),
/// so the shares can sum past 100% of `total_ps` — exactly like the
/// stacked per-component bars in the paper's breakdown figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Host CPU busy + cache-stall picoseconds, summed over hosts.
    pub host_ps: u64,
    /// Picoseconds packets spent crossing the fabric (sum of packet
    /// end-to-end spans).
    pub fabric_ps: u64,
    /// Picoseconds switch handlers occupied engine CPUs (sum of
    /// handler-occupancy spans, including fallback engines).
    pub handler_ps: u64,
    /// Picoseconds disks spent servicing requests (sum of disk-service
    /// spans).
    pub storage_ps: u64,
    /// Total simulated run time (the drain time).
    pub total_ps: u64,
}

impl PhaseBreakdown {
    /// `part_ps` as a fraction of the total run time (0 when the run
    /// was empty).
    pub fn share(&self, part_ps: u64) -> f64 {
        if self.total_ps == 0 {
            0.0
        } else {
            part_ps as f64 / self.total_ps as f64
        }
    }
}

/// The end-of-run metrics snapshot: latency distributions plus the
/// per-phase time breakdown. Produced by
/// [`Cluster::metrics`](crate::cluster::Cluster::metrics) alongside
/// [`ClusterStats`](crate::stats::ClusterStats).
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Packet end-to-end latency (fabric injection → last byte
    /// delivered), all delivered packets.
    pub packet_e2e: LogHistogram,
    /// Handler occupancy (dispatch start → invocation complete),
    /// including host-side fallback engines.
    pub handler_occupancy: LogHistogram,
    /// Disk service time (request issue → service done), reads and
    /// aggregated archive writes.
    pub disk_service: LogHistogram,
    /// Buffer-allocation wait (dispatch request → buffer granted);
    /// zero when a buffer was free.
    pub buffer_wait: LogHistogram,
    /// Credit-stall durations on fabric links (merged over every link
    /// direction).
    pub credit_stall: LogHistogram,
    /// Links traversed per delivered packet (unitless counts, not
    /// picoseconds): 1–2 on a single switch, deeper on multi-switch
    /// fabrics — the per-switch transit dimension of a run.
    pub packet_hops: LogHistogram,
    /// Where the run's simulated cycles went.
    pub phases: PhaseBreakdown,
    /// Windowed time-series telemetry: per-link utilization and
    /// send-wait occupancy, per-node handler occupancy, and the event
    /// queue's per-window depth high-water mark.
    pub timeline: Timeline,
}

impl MetricsReport {
    /// FNV-1a digest over every counter: the five histograms' full
    /// bucket state and each phase bucket, in fixed order. Keeps the
    /// metrics layer under the same determinism contract as
    /// `ClusterStats::digest` (asan-lint's `digest-completeness` rule
    /// checks the fold covers every numeric field).
    pub fn digest(&self) -> u64 {
        let mut h = self.packet_e2e.fold_digest(0xcbf2_9ce4_8422_2325);
        h = self.handler_occupancy.fold_digest(h);
        h = self.disk_service.fold_digest(h);
        h = self.buffer_wait.fold_digest(h);
        h = self.credit_stall.fold_digest(h);
        h = self.packet_hops.fold_digest(h);
        let PhaseBreakdown {
            host_ps,
            fabric_ps,
            handler_ps,
            storage_ps,
            total_ps,
        } = self.phases;
        for v in [host_ps, fabric_ps, handler_ps, storage_ps, total_ps] {
            h = fnv1a_fold(h, v);
        }
        self.timeline.digest(h)
    }

    /// The named latency histograms, in canonical order.
    pub fn latencies(&self) -> [(&'static str, &LogHistogram); 5] {
        [
            ("packet", &self.packet_e2e),
            ("handler", &self.handler_occupancy),
            ("disk", &self.disk_service),
            ("buffer_wait", &self.buffer_wait),
            ("credit_stall", &self.credit_stall),
        ]
    }

    /// The metrics-JSON schema version emitted by [`Self::to_json`].
    /// Bumped whenever the document shape changes; the `asan-bench`
    /// analyzer refuses documents with any other version.
    pub const JSON_SCHEMA: u32 = 2;

    /// Deterministic JSON encoding (fixed field order, integral
    /// picoseconds) for the `asan-bench` analyzer. The leading
    /// `schema` field carries [`Self::JSON_SCHEMA`].
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"schema\":{},\"phases\":{{", Self::JSON_SCHEMA);
        let PhaseBreakdown {
            host_ps,
            fabric_ps,
            handler_ps,
            storage_ps,
            total_ps,
        } = self.phases;
        out.push_str(&format!(
            "\"host_ps\":{host_ps},\"fabric_ps\":{fabric_ps},\
             \"handler_ps\":{handler_ps},\"storage_ps\":{storage_ps},\
             \"total_ps\":{total_ps}}},\"latency\":{{"
        ));
        for (i, (name, h)) in self.latencies().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"p50_ps\":{},\"p90_ps\":{},\
                 \"p99_ps\":{},\"max_ps\":{},\"mean_ps\":{}}}",
                h.count(),
                h.percentile(50),
                h.percentile(90),
                h.percentile(99),
                h.max(),
                h.mean(),
            ));
        }
        out.push_str(&format!(
            "}},\"packet_hops\":{{\"count\":{},\"p50\":{},\"max\":{},\"mean\":{}}},\
             \"timeline\":{}}}",
            self.packet_hops.count(),
            self.packet_hops.percentile(50),
            self.packet_hops.max(),
            self.packet_hops.mean(),
            self.timeline.to_json(),
        ));
        out
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = &self.phases;
        writeln!(
            f,
            "  phase occupancy (of {} total):",
            SimDuration::from_ps(p.total_ps)
        )?;
        for (name, ps) in [
            ("host compute", p.host_ps),
            ("fabric", p.fabric_ps),
            ("switch handler", p.handler_ps),
            ("storage", p.storage_ps),
        ] {
            writeln!(
                f,
                "    {name:<15} {:>12} {:>6.1}%",
                format!("{}", SimDuration::from_ps(ps)),
                p.share(ps) * 100.0,
            )?;
        }
        writeln!(
            f,
            "  latency percentiles:\n    {:<15} {:>8} {:>12} {:>12} {:>12}",
            "span", "count", "p50", "p90", "p99"
        )?;
        for (name, h) in self.latencies() {
            writeln!(
                f,
                "    {name:<15} {:>8} {:>12} {:>12} {:>12}",
                h.count(),
                format!("{}", SimDuration::from_ps(h.percentile(50))),
                format!("{}", SimDuration::from_ps(h.percentile(90))),
                format!("{}", SimDuration::from_ps(h.percentile(99))),
            )?;
        }
        writeln!(
            f,
            "  fabric hops/packet: p50 {} max {} over {} packets",
            self.packet_hops.percentile(50),
            self.packet_hops.max(),
            self.packet_hops.count(),
        )?;
        Ok(())
    }
}

/// The in-run observability probe: engines report every timed interval
/// here. Histograms, the time-series, span ids and trace ids always
/// advance (they are cheap and deterministic, and the metrics digest
/// must not depend on whether anyone is watching); spans reach a
/// [`TraceSink`] only when one is installed, so the default
/// configuration pays no formatting or I/O cost.
#[derive(Debug, Default)]
pub struct Probe {
    sink: Option<Box<dyn TraceSink>>, // asan-lint: allow(snapshot-completeness)
    /// Scratch buffer for per-hop records, reused across transmits
    /// (always empty between events, so never snapshotted).
    hop_buf: Vec<Hop>, // asan-lint: allow(snapshot-completeness)
    packet_e2e: LogHistogram,
    handler_occupancy: LogHistogram,
    disk_service: LogHistogram,
    buffer_wait: LogHistogram,
    packet_hops: LogHistogram,
    /// Deterministic span sequence number (emission order).
    next_id: u64,
    /// Deterministic causal trace-id allocator; 0 means "untraced", so
    /// the first allocated trace is 1.
    next_trace: u64,
    /// Trace id of each in-flight I/O request, keyed by request id;
    /// entries are dropped when the request completes.
    req_traces: BTreeMap<u64, u64>,
    /// Always-on windowed time-series telemetry.
    series: TimeSeries,
}

impl Probe {
    /// Installs `sink`; subsequent spans are delivered to it.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Whether a sink is installed.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// The installed sink, for read-back (e.g. downcasting a
    /// `RingSink` in tests).
    pub fn sink(&self) -> Option<&dyn TraceSink> {
        self.sink.as_deref()
    }

    /// Flushes the sink (end of run).
    pub fn flush(&mut self) {
        if let Some(s) = self.sink.as_mut() {
            s.flush();
        }
    }

    /// Allocates a fresh causal trace id, rooting a new lifecycle
    /// (e.g. one host send with all its MTU chunks).
    pub(crate) fn fresh_trace(&mut self) -> TraceCtx {
        self.next_trace += 1;
        TraceCtx {
            trace: self.next_trace,
            parent: 0,
        }
    }

    /// The trace id of I/O request `req`, allocated on first use. Every
    /// span of the request's lifecycle — issue packet, retransmits,
    /// disk service, mapped-handler work, completion notice — shares
    /// it, so a flight-recorder query for the trace reconstructs the
    /// whole causal chain.
    pub(crate) fn trace_for_req(&mut self, req: u64) -> TraceCtx {
        if let Some(&trace) = self.req_traces.get(&req) {
            return TraceCtx { trace, parent: 0 };
        }
        let ctx = self.fresh_trace();
        self.req_traces.insert(req, ctx.trace);
        ctx
    }

    /// Forgets request `req`'s trace mapping (the request completed).
    pub(crate) fn end_req(&mut self, req: u64) {
        self.req_traces.remove(&req);
    }

    /// Hands out the reusable hop-record buffer (empty). Return it with
    /// [`Self::put_hop_buf`] after the transmit so the next packet
    /// reuses the allocation.
    pub(crate) fn take_hop_buf(&mut self) -> Vec<Hop> {
        std::mem::take(&mut self.hop_buf)
    }

    /// Returns the hop buffer taken by [`Self::take_hop_buf`].
    pub(crate) fn put_hop_buf(&mut self, mut buf: Vec<Hop>) {
        buf.clear();
        self.hop_buf = buf;
    }

    /// Resizes the time-series window (only before any sample exists;
    /// see [`TimeSeries::set_window`]).
    pub(crate) fn set_timeline_window(&mut self, window: SimDuration) {
        self.series.set_window(window);
    }

    /// Records the scheduler's pending-event count at instant `t` into
    /// the queue-depth track (per-window high-water mark).
    pub(crate) fn sample_queue_depth(&mut self, t: SimTime, depth: u64) {
        self.series.gauge_max(series::KIND_QUEUE_DEPTH, 0, t, depth);
    }

    #[allow(clippy::too_many_arguments)]
    fn span(
        &mut self,
        kind: SpanKind,
        node: u64,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        trace_id: u64,
        parent: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        if let Some(sink) = self.sink.as_mut() {
            sink.record(&Span {
                kind,
                node,
                id,
                start,
                end,
                bytes,
                trace_id,
                parent,
            });
        }
        id
    }

    /// One packet delivered: injected at `start`, last byte at `end`,
    /// crossing the recorded `hops`. Emits the packet span plus one
    /// link-occupancy child span per hop (and a stall child when the
    /// hop waited before its wire accepted the bytes), and feeds the
    /// link-utilization and send-wait time-series tracks.
    pub(crate) fn packet(
        &mut self,
        dst: NodeId,
        start: SimTime,
        end: SimTime,
        wire: u64,
        hops: &[Hop],
        ctx: TraceCtx,
    ) {
        self.packet_e2e.record_duration(end.saturating_since(start));
        self.packet_hops.record(hops.len() as u64);
        let pid = self.span(
            SpanKind::Packet,
            dst.0 as u64,
            start,
            end,
            wire,
            ctx.trace,
            ctx.parent,
        );
        for &h in hops {
            self.series
                .add_occupancy(series::KIND_LINK_UTIL, h.link as u64, h.start, h.busy_until);
            self.span(
                SpanKind::Link,
                h.from.0 as u64,
                h.start,
                h.done,
                wire,
                ctx.trace,
                pid,
            );
            if h.wait > SimDuration::ZERO {
                let waited_from = h.start - h.wait;
                self.series.add_occupancy(
                    series::KIND_CREDIT_STALL,
                    h.link as u64,
                    waited_from,
                    h.start,
                );
                self.span(
                    SpanKind::Stall,
                    h.from.0 as u64,
                    waited_from,
                    h.start,
                    wire,
                    ctx.trace,
                    pid,
                );
            }
        }
    }

    /// One handler invocation on `node`'s engine. Also feeds the
    /// per-node handler-occupancy time-series track.
    pub(crate) fn handler(
        &mut self,
        node: NodeId,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        ctx: TraceCtx,
    ) {
        self.handler_occupancy
            .record_duration(end.saturating_since(start));
        self.series
            .add_occupancy(series::KIND_HANDLER_OCC, node.0 as u64, start, end);
        self.span(
            SpanKind::Handler,
            node.0 as u64,
            start,
            end,
            bytes,
            ctx.trace,
            ctx.parent,
        );
    }

    /// One disk request serviced by `tca`'s array.
    pub(crate) fn disk(
        &mut self,
        tca: NodeId,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        ctx: TraceCtx,
    ) {
        self.disk_service
            .record_duration(end.saturating_since(start));
        self.span(
            SpanKind::Disk,
            tca.0 as u64,
            start,
            end,
            bytes,
            ctx.trace,
            ctx.parent,
        );
    }

    /// One data buffer held on `node` from `seize` (grant) to
    /// `release`, after waiting `wait` for a free buffer.
    pub(crate) fn buffer(
        &mut self,
        node: NodeId,
        seize: SimTime,
        release: SimTime,
        wait: SimDuration,
        bytes: u64,
        ctx: TraceCtx,
    ) {
        self.buffer_wait.record_duration(wait);
        self.span(
            SpanKind::Buffer,
            node.0 as u64,
            seize,
            release,
            bytes,
            ctx.trace,
            ctx.parent,
        );
    }

    /// Writes the probe's dynamic state (histograms, the span and
    /// trace cursors, live request traces, and the time-series). The
    /// trace sink is a process-local resource and is not captured; a
    /// restored run re-installs one if tracing is enabled.
    pub(crate) fn snapshot_state(&self, w: &mut SnapWriter) {
        self.packet_e2e.snapshot(w);
        self.handler_occupancy.snapshot(w);
        self.disk_service.snapshot(w);
        self.buffer_wait.snapshot(w);
        self.packet_hops.snapshot(w);
        w.u64(self.next_id);
        w.u64(self.next_trace);
        w.u64(self.req_traces.len() as u64);
        for (&req, &trace) in &self.req_traces {
            w.u64(req);
            w.u64(trace);
        }
        self.series.snapshot(w);
    }

    /// Overwrites the probe's dynamic state from a snapshot, keeping
    /// any installed sink.
    pub(crate) fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.packet_e2e = LogHistogram::restore(r)?;
        self.handler_occupancy = LogHistogram::restore(r)?;
        self.disk_service = LogHistogram::restore(r)?;
        self.buffer_wait = LogHistogram::restore(r)?;
        self.packet_hops = LogHistogram::restore(r)?;
        self.next_id = r.u64()?;
        self.next_trace = r.u64()?;
        let n = r.u64()?;
        let mut req_traces = BTreeMap::new();
        for _ in 0..n {
            let req = r.u64()?;
            let trace = r.u64()?;
            req_traces.insert(req, trace);
        }
        self.req_traces = req_traces;
        self.series = TimeSeries::restore(r)?;
        Ok(())
    }

    /// Snapshot of the probe-side histograms and timeline as a
    /// partially filled report (credit stalls and phases are merged in
    /// by [`Cluster::metrics`](crate::cluster::Cluster::metrics)).
    pub(crate) fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            packet_e2e: self.packet_e2e.clone(),
            handler_occupancy: self.handler_occupancy.clone(),
            disk_service: self.disk_service.clone(),
            buffer_wait: self.buffer_wait.clone(),
            credit_stall: LogHistogram::new(),
            packet_hops: self.packet_hops.clone(),
            phases: PhaseBreakdown::default(),
            timeline: self.series.timeline(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_sim::trace::RingSink;

    fn hop(link: u32, from: u16, to: u16, wait_ns: u64, start_ns: u64, ser_ns: u64) -> Hop {
        let start = SimTime::from_ns(start_ns);
        Hop {
            link,
            from: NodeId(from),
            to: NodeId(to),
            wait: SimDuration::from_ns(wait_ns),
            start,
            busy_until: start + SimDuration::from_ns(ser_ns),
            done: start + SimDuration::from_ns(ser_ns + 10),
        }
    }

    #[test]
    fn probe_records_histograms_without_a_sink() {
        let mut p = Probe::default();
        let hops = [hop(0, 1, 9, 0, 0, 2), hop(1, 9, 2, 0, 2, 2)];
        p.packet(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_ns(5),
            528,
            &hops,
            TraceCtx::NONE,
        );
        p.handler(
            NodeId(2),
            SimTime::from_ns(5),
            SimTime::from_ns(9),
            512,
            TraceCtx::NONE,
        );
        p.disk(
            NodeId(3),
            SimTime::ZERO,
            SimTime::from_us(2),
            4096,
            TraceCtx::NONE,
        );
        p.buffer(
            NodeId(2),
            SimTime::from_ns(5),
            SimTime::from_ns(9),
            SimDuration::from_ns(1),
            512,
            TraceCtx::NONE,
        );
        let m = p.snapshot();
        assert_eq!(m.packet_e2e.count(), 1);
        assert_eq!(m.handler_occupancy.count(), 1);
        assert_eq!(m.disk_service.count(), 1);
        assert_eq!(m.buffer_wait.count(), 1);
        assert_eq!(m.buffer_wait.max(), 1000);
        assert_eq!(m.packet_hops.count(), 1);
        assert_eq!(m.packet_hops.max(), 2);
        assert!(!p.has_sink());
        // The hops fed the always-on link-utilization timeline.
        assert_eq!(m.timeline.tracks_of(series::KIND_LINK_UTIL).count(), 2);
    }

    #[test]
    fn probe_delivers_spans_to_the_sink_in_order() {
        let mut p = Probe::default();
        p.set_sink(Box::new(RingSink::new(16)));
        let ctx = p.fresh_trace();
        p.packet(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_ns(5),
            528,
            &[hop(3, 0, 1, 2, 2, 1)],
            ctx,
        );
        p.disk(
            NodeId(3),
            SimTime::ZERO,
            SimTime::from_us(2),
            4096,
            TraceCtx::NONE,
        );
        let ring = p
            .sink()
            .and_then(|s| s.as_any())
            .and_then(|a| a.downcast_ref::<RingSink>())
            .expect("ring sink");
        // Packet span, its link child, the stall child (wait > 0), then
        // the unrelated disk span — ids in emission order.
        let kinds: Vec<SpanKind> = ring.spans().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                SpanKind::Packet,
                SpanKind::Link,
                SpanKind::Stall,
                SpanKind::Disk
            ]
        );
        let ids: Vec<u64> = ring.spans().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let spans: Vec<Span> = ring.spans().copied().collect();
        assert_eq!(spans[0].trace_id, 1);
        assert_eq!(spans[0].parent, 0);
        assert_eq!(spans[1].trace_id, 1);
        assert_eq!(spans[1].parent, spans[0].id);
        assert_eq!(spans[2].parent, spans[0].id);
        // The stall child covers the wait leading into the hop start.
        assert_eq!(spans[2].start, SimTime::ZERO);
        assert_eq!(spans[2].end, SimTime::from_ns(2));
        assert_eq!(spans[3].trace_id, 0);
    }

    #[test]
    fn trace_ids_are_stable_per_request_and_released_on_end() {
        let mut p = Probe::default();
        let a = p.trace_for_req(7);
        let b = p.trace_for_req(7);
        assert_eq!(a.trace, b.trace);
        let c = p.trace_for_req(9);
        assert_ne!(a.trace, c.trace);
        p.end_req(7);
        let d = p.trace_for_req(7);
        assert_ne!(a.trace, d.trace, "completed request gets a new trace");
        assert_eq!(p.fresh_trace().trace, d.trace + 1);
    }

    #[test]
    fn probe_state_snapshot_round_trips_traces_and_series() {
        let mut p = Probe::default();
        let ctx = p.trace_for_req(42);
        p.packet(
            NodeId(1),
            SimTime::ZERO,
            SimTime::from_ns(5),
            528,
            &[hop(0, 0, 1, 0, 0, 3)],
            ctx,
        );
        p.sample_queue_depth(SimTime::from_ns(3), 17);
        let mut w = SnapWriter::new();
        p.snapshot_state(&mut w);
        let bytes = w.into_bytes();
        let mut q = Probe::default();
        let mut r = SnapReader::new(&bytes).unwrap();
        q.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(q.trace_for_req(42).trace, ctx.trace);
        assert_eq!(q.snapshot().timeline, p.snapshot().timeline);
        assert_eq!(q.snapshot().digest(), p.snapshot().digest());
    }

    #[test]
    fn digest_covers_phases_and_histograms() {
        let mut a = MetricsReport::default();
        let b = MetricsReport::default();
        assert_eq!(a.digest(), b.digest());
        a.phases.handler_ps = 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = MetricsReport::default();
        c.packet_e2e.record(5);
        assert_ne!(c.digest(), b.digest());
        let mut d = MetricsReport::default();
        d.timeline.tracks.push(asan_sim::series::Track {
            kind: series::KIND_LINK_UTIL,
            key: 0,
            samples: vec![1],
        });
        assert_ne!(d.digest(), b.digest(), "digest covers the timeline");
    }

    #[test]
    fn json_has_fixed_shape() {
        let mut m = MetricsReport::default();
        m.packet_e2e.record(1000);
        m.phases.total_ps = 2000;
        let j = m.to_json();
        assert!(j.starts_with("{\"schema\":2,\"phases\":{\"host_ps\":0,"));
        assert!(j.contains("\"total_ps\":2000"));
        assert!(j.contains("\"packet\":{\"count\":1,\"p50_ps\":1000,"));
        assert!(j.contains("\"credit_stall\":{\"count\":0,"));
        assert!(j.ends_with("\"timeline\":{\"window_ps\":0,\"tracks\":[]}}"));
    }

    #[test]
    fn display_renders_phase_and_percentile_tables() {
        let mut m = MetricsReport::default();
        m.packet_e2e.record(1_000_000);
        m.phases = PhaseBreakdown {
            host_ps: 500,
            fabric_ps: 1_000_000,
            handler_ps: 0,
            storage_ps: 0,
            total_ps: 2_000_000,
        };
        let text = m.to_string();
        assert!(text.contains("phase occupancy"));
        assert!(text.contains("host compute"));
        assert!(text.contains("50.0%"), "text:\n{text}");
        assert!(text.contains("packet"));
        assert!(text.contains("credit_stall"));
    }
}
