//! Rule `no-unit-mixing`: no arithmetic across time-unit boundaries.
//!
//! The simulator's clock is picoseconds end to end (`SimTime` /
//! `SimDuration` wrap a ps-count `u64`), but configuration knobs and
//! paper figures speak nanoseconds and microseconds, so `*_ns` and
//! `*_us` locals are everywhere at the edges. `deadline_ps +
//! timeout_ns` type-checks (both are `u64`) and is off by a factor of
//! a thousand — the classic silent unit bug. The rule inspects every
//! binary `+ - * / %` whose two operand runs both *name* a unit
//! (suffix `_ps`/`_ns`/`_us`/`_ms`, or an `as_ns()`-style accessor)
//! and denies when the units differ. Explicit conversions are the
//! escape hatch and the fix: `from_ns(x)` makes a run opaque, and a
//! trailing `as_ps()` stamps the run with the unit it actually
//! carries.

use super::{FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::{Kind, Token};

/// Crates that model hardware quantities (same set `lossy-model-cast`
/// patrols — these are where ps/ns boundaries live).
const SCOPED: [&str; 7] = [
    "crates/core/",
    "crates/net/",
    "crates/io/",
    "crates/mem/",
    "crates/cpu/",
    "crates/sim/",
    "crates/apps/",
];

/// Recognized time units, finest first.
const UNITS: [&str; 4] = ["ps", "ns", "us", "ms"];

/// The binary operators checked. Comparisons are deliberately left
/// out: `<`/`>` double as generic brackets in a token stream and a
/// misordered comparison at least fails loudly in tests, while
/// mixed-unit arithmetic just produces a plausible wrong number.
const OPS: [&str; 5] = ["+", "-", "*", "/", "%"];

pub(crate) struct UnitMixing;

impl Rule for UnitMixing {
    fn name(&self) -> &'static str {
        "no-unit-mixing"
    }

    fn describe(&self) -> &'static str {
        "deny arithmetic mixing *_ps with *_ns/*_us/*_ms operands without explicit conversion"
    }

    fn scope(&self) -> &'static str {
        "model crates (core, net, io, mem, cpu, sim, apps)"
    }

    fn since_pr(&self) -> u32 {
        8
    }

    fn applies(&self, rel_path: &str) -> bool {
        SCOPED.iter().any(|p| rel_path.starts_with(p))
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let toks = ctx.tokens();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Punct || !OPS.contains(&t.text.as_str()) {
                continue;
            }
            // A unary `-x` / `*ptr` / `&*y` has punctuation (or
            // nothing) on its left; such an op has an empty left run
            // and `run_unit` returns `None` for it naturally.
            let Some(start) = left_run_start(toks, i) else {
                continue;
            };
            let lhs = run_unit(toks, start, i);
            let rhs = run_unit(toks, i + 1, right_run_end(toks, i + 1));
            let (Some(l), Some(r)) = (lhs, rhs) else {
                continue;
            };
            if l != r {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: Severity::Deny,
                    file: ctx.rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{}` combines a {l} quantity with a {r} quantity; convert \
                         explicitly (e.g. `SimDuration::from_{r}(..)` / `.as_{l}()`) \
                         before doing arithmetic",
                        t.text,
                    ),
                });
            }
        }
    }
}

/// The unit a `name`d value carries, judged by suffix. `SimTime` is
/// the ps-based clock type itself.
fn ident_unit(name: &str) -> Option<&'static str> {
    if name == "SimTime" {
        return Some("ps");
    }
    UNITS
        .iter()
        .find(|u| name == **u || name.ends_with(&format!("_{u}")))
        .copied()
}

/// Start of the operand run ending just before the operator at `op`:
/// walks left over identifier / literal / `.` / `::` tokens and over
/// balanced `(..)` / `[..]` groups (a call's arguments or an index).
/// `None` when the run is empty (unary operator).
fn left_run_start(toks: &[Token], op: usize) -> Option<usize> {
    let mut j = op;
    while j > 0 {
        let t = &toks[j - 1];
        let step = match t.kind {
            Kind::Ident | Kind::Lit => true,
            Kind::Punct if t.text == "." || t.text == "::" => true,
            Kind::Punct if t.text == ")" || t.text == "]" => {
                // Skip back over the balanced group.
                let (open, close) = if t.text == ")" {
                    ("(", ")")
                } else {
                    ("[", "]")
                };
                let mut depth = 0i32;
                let mut k = j - 1;
                loop {
                    if toks[k].kind == Kind::Punct {
                        if toks[k].text == close {
                            depth += 1;
                        } else if toks[k].text == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                j = k + 1;
                true
            }
            _ => false,
        };
        if !step {
            break;
        }
        j -= 1;
    }
    if j == op {
        None
    } else {
        Some(j)
    }
}

/// End (exclusive) of the operand run starting at `from`: walks right
/// over identifier / literal / `.` / `::` tokens and balanced `(..)` /
/// `[..]` groups, stopping at anything else (another operator, a
/// comma, a close brace).
fn right_run_end(toks: &[Token], from: usize) -> usize {
    let mut j = from;
    while j < toks.len() {
        let t = &toks[j];
        match t.kind {
            Kind::Ident | Kind::Lit => j += 1,
            Kind::Punct if t.text == "." || t.text == "::" => j += 1,
            Kind::Punct if t.text == "(" || t.text == "[" => {
                let close = if t.text == "(" {
                    super::matching_delim(toks, j, "(", ")")
                } else {
                    super::matching_delim(toks, j, "[", "]")
                };
                j = (close + 1).min(toks.len());
            }
            _ => break,
        }
    }
    j
}

/// The unit of one operand run. Scans left to right: a plain
/// identifier with a unit suffix stamps the run; a `from_*` call makes
/// it opaque (an explicit conversion produced a typed value); an
/// `as_<unit>` accessor stamps it with that unit. Call arguments and
/// index contents are skipped — their identifiers belong to inner
/// expressions the outer scan visits on its own.
fn run_unit(toks: &[Token], start: usize, end: usize) -> Option<&'static str> {
    let mut unit = None;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if t.kind == Kind::Ident {
            if super::is_punct(toks, j + 1, "(") {
                if let Some(sfx) = t.text.strip_prefix("as_") {
                    if let Some(u) = UNITS.iter().find(|u| **u == sfx) {
                        unit = Some(*u);
                    }
                } else if t.text.starts_with("from_") {
                    unit = None;
                }
                j = super::matching_delim(toks, j + 1, "(", ")") + 1;
                continue;
            }
            if let Some(u) = ident_unit(&t.text) {
                unit = Some(u);
            }
        } else if t.kind == Kind::Punct && (t.text == "(" || t.text == "[") {
            // A grouping paren or index: inner expressions are judged
            // when the outer loop reaches their own operators.
            let (o, c) = if t.text == "(" {
                ("(", ")")
            } else {
                ("[", "]")
            };
            j = super::matching_delim(toks, j, o, c) + 1;
            continue;
        }
        j += 1;
    }
    unit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn findings(src: &str) -> usize {
        let lexed = lex(src);
        let ctx = FileCtx {
            rel_path: "crates/sim/src/t.rs",
            lexed: &lexed,
        };
        let mut out = Vec::new();
        UnitMixing.check(&ctx, &mut out);
        out.len()
    }

    #[test]
    fn mixed_suffixes_are_denied() {
        assert_eq!(
            findings("fn f(a_ps: u64, b_ns: u64) -> u64 { a_ps + b_ns }"),
            1
        );
        assert_eq!(
            findings("fn f(t_us: u64, d_ms: u64) -> u64 { t_us - d_ms }"),
            1
        );
    }

    #[test]
    fn same_unit_and_unitless_arithmetic_pass() {
        assert_eq!(
            findings("fn f(a_ps: u64, b_ps: u64) -> u64 { a_ps + b_ps }"),
            0
        );
        assert_eq!(findings("fn f(a: u64, b_ns: u64) -> u64 { a + b_ns }"), 0);
        assert_eq!(findings("fn f(a: u64) -> u64 { -1 + a }"), 0);
    }

    #[test]
    fn explicit_conversion_is_the_escape_hatch() {
        assert_eq!(
            findings(
                "fn f(a_ps: u64, b_ns: u64) -> u64 { a_ps + SimDuration::from_ns(b_ns).as_ps() }"
            ),
            0
        );
        assert_eq!(
            findings("fn f(a_ps: u64, d: SimDuration) -> u64 { a_ps + d.as_ns() }"),
            1
        );
    }

    #[test]
    fn accessor_methods_carry_their_unit() {
        assert_eq!(
            findings("fn f(t: SimTime, d: SimDuration) -> u64 { t.as_ps() % d.as_us() }"),
            1
        );
    }
}
