//! Known-bad: `ProgState` grew a `pending` queue and a `phase` cursor,
//! but its snapshot/restore pair only round-trips `cursor` — a restored
//! run silently restarts with an empty queue in phase 0, and the
//! divergence only surfaces as golden-digest drift much later.

pub struct ProgState {
    pub cursor: u64,
    pub pending: Vec<u64>,
    pub phase: u8,
}

impl Snapshottable for ProgState {
    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.u64(self.cursor);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cursor = r.u64()?;
        Ok(())
    }
}

pub struct ChainState {
    pub sum: u64,
    pub carry: u64,
}

impl ChainState {
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.sum);
    }
}
