//! The dispatch subsystem: active switches, active TCAs, and the
//! handler-trap fallback path.
//!
//! Owns every active engine in the cluster — the switch-resident ones,
//! the optional active-TCA engines ("two-level active I/O", §6), and
//! the host-side software engines that inherit handlers disabled by an
//! injected trap. Also owns the per-request reorder buffers that keep
//! mapped storage flows in sequence order under fault injection.

use std::collections::{BTreeMap, BTreeSet};

use asan_net::{HandlerId, NodeId, HEADER_BYTES};
use asan_sim::faults::{BufferSeize, FaultInjector};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::trace::TraceCtx;
use asan_sim::SimTime;

use crate::active::{ActiveSwitch, ActiveSwitchConfig, DispatchResult};
use crate::cluster::{ClusterConfig, SwitchReport};
use crate::error::SimError;
use crate::events::{Event, EventBus, FlowState, ReqId};
use crate::handler::Handler;
use crate::stats::{snap_cpu, SwitchSnapshot};

use super::Engine;

/// The dispatch subsystem engine: every active engine plus the trap /
/// fallback machinery.
#[derive(Debug, Default)]
pub struct DispatchEngine {
    switches: BTreeMap<NodeId, ActiveSwitch>,
    /// Optional active engines on TCA nodes: "a two-level active I/O
    /// system" (§6) — intelligent disks below the active switches.
    active_tcas: BTreeMap<NodeId, ActiveSwitch>,
    /// `(switch, handler)` pairs whose jump-table entry was disabled by
    /// a trap; their streams route to the fallback host.
    trapped: BTreeSet<(NodeId, HandlerId)>,
    /// Host-side software engines holding migrated handlers, keyed by
    /// the original switch so handler state stays per-switch.
    fallback_engines: BTreeMap<NodeId, ActiveSwitch>,
    /// The host that runs fallback engines (lowest-numbered host).
    fallback_host: Option<NodeId>,
    /// Memoized configuration for host-side fallback engines, built
    /// once on first trap instead of recloning `ActiveCfg`/`CpuCfg`
    /// inside the event loop for every trapping switch.
    fallback_cfg: Option<ActiveSwitchConfig>,
    /// Reorder buffers for mapped flows under faults.
    flows: BTreeMap<ReqId, FlowState>,
}

impl Engine for DispatchEngine {
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError> {
        match ev {
            Event::PacketToSwitch {
                sw,
                pkt,
                payload_start,
                payload_end,
                io_req,
                trace,
            } => match io_req {
                // Mapped storage data under a fault plan: release to
                // the handler strictly in sequence order.
                Some(req) => self.mapped_arrival(req, sw, pkt, t, bus, trace),
                None => self.dispatch_active(sw, &pkt, t, payload_start, payload_end, bus, trace),
            },
            Event::FallbackDispatch { sw, pkt, trace } => {
                let fb = self.fallback_host.expect("fallback host exists");
                let result = self
                    .fallback_engines
                    .get_mut(&sw)
                    .expect("fallback engine exists")
                    .dispatch(&pkt, t, t, t);
                bus.injector.as_mut().expect("armed").stats.fallback_packets += 1;
                Self::record_dispatch_spans(sw, &pkt, t, &result, bus, trace);
                self.apply_dispatch_result(sw, fb, pkt.header.seq, result, bus, trace);
            }
            other => unreachable!("not a dispatch event: {other:?}"),
        }
        Ok(())
    }
}

impl DispatchEngine {
    /// Adds the active switch engine at `id`.
    pub(crate) fn add_switch(&mut self, id: NodeId, cfg: ActiveSwitchConfig) {
        self.switches.insert(id, ActiveSwitch::new(id, cfg));
    }

    /// Registers `handler` under `id` on switch `node`.
    pub(crate) fn register(
        &mut self,
        node: NodeId,
        id: HandlerId,
        handler: Box<dyn Handler>,
    ) -> Result<(), SimError> {
        self.switches
            .get_mut(&node)
            .ok_or(SimError::NotASwitch(node))?
            .register(id, handler);
        Ok(())
    }

    /// Places one handler per switch of an aggregation tree: the
    /// placement policy decided *where* (see [`crate::placement`]),
    /// this installs the handlers there, ascending node id.
    pub(crate) fn place(
        &mut self,
        tree: &crate::placement::AggregationTree,
        id: HandlerId,
        make: &mut dyn FnMut(NodeId, &crate::placement::AggNode) -> Box<dyn Handler>,
    ) -> Result<(), SimError> {
        for (&sw, role) in &tree.nodes {
            self.register(sw, id, make(sw, role))?;
        }
        Ok(())
    }

    /// Removes a handler: the original engine first, then any host-side
    /// fallback engine a trap migrated it to.
    pub(crate) fn take_handler(&mut self, node: NodeId, id: HandlerId) -> Option<Box<dyn Handler>> {
        if let Some(h) = self
            .switches
            .get_mut(&node)
            .and_then(|s| s.take_handler(id))
        {
            return Some(h);
        }
        if let Some(h) = self
            .active_tcas
            .get_mut(&node)
            .and_then(|e| e.take_handler(id))
        {
            return Some(h);
        }
        self.fallback_engines.get_mut(&node)?.take_handler(id)
    }

    /// Installs an active engine on TCA node `node`.
    pub(crate) fn enable_active_tca(&mut self, node: NodeId, cfg: ActiveSwitchConfig) {
        self.active_tcas.insert(node, ActiveSwitch::new(node, cfg));
    }

    /// Registers `handler` on an active TCA's engine.
    pub(crate) fn register_tca_handler(
        &mut self,
        node: NodeId,
        id: HandlerId,
        handler: Box<dyn Handler>,
    ) -> Result<(), SimError> {
        self.active_tcas
            .get_mut(&node)
            .ok_or(SimError::TcaNotActive(node))?
            .register(id, handler);
        Ok(())
    }

    /// The active switch at `node`, if any.
    pub(crate) fn switch(&self, node: NodeId) -> Option<&ActiveSwitch> {
        self.switches.get(&node)
    }

    /// Sets the host that runs fallback engines under a fault plan.
    pub(crate) fn set_fallback_host(&mut self, host: Option<NodeId>) {
        self.fallback_host = host;
    }

    /// Seizes `seize.count` buffers on every active engine (switches,
    /// then active TCAs, each in ascending node order) and books the
    /// injected/degraded counts.
    pub(crate) fn arm_buffer_seize(&mut self, seize: BufferSeize, inj: &mut FaultInjector) {
        let mut seized = 0u64;
        for engine in self
            .switches
            .values_mut()
            .chain(self.active_tcas.values_mut())
        {
            seized += seize
                .count
                .min(engine.config().num_buffers.saturating_sub(1)) as u64;
            engine.seize_buffers(seize.count, seize.release_at);
        }
        let s = &mut inj.stats.buffer_seize;
        s.injected += seized;
        s.degraded += seized;
    }

    /// Per-switch reports, idle-padded to `finish`. A trapped handler's
    /// work continued on a host-side fallback engine; its counters
    /// still belong to the original switch logically.
    pub(crate) fn reports(&self, finish: SimTime) -> Vec<SwitchReport> {
        self.switches
            .iter()
            .map(|(&id, s)| {
                let fb = self.fallback_engines.get(&id);
                let mut bs = s.cpu_breakdowns();
                for b in &mut bs {
                    b.pad_idle_to(finish.since(SimTime::ZERO));
                }
                SwitchReport {
                    node: id,
                    cpu_breakdowns: bs,
                    invocations: s.stats().invocations.get()
                        + fb.map_or(0, |f| f.stats().invocations.get()),
                    bytes_in: s.stats().bytes_in.get() + fb.map_or(0, |f| f.stats().bytes_in.get()),
                    bytes_out: s.stats().bytes_out.get()
                        + fb.map_or(0, |f| f.stats().bytes_out.get()),
                }
            })
            .collect()
    }

    /// Per-switch low-level statistics snapshots (fallback counters
    /// folded into their original switch, as in [`Self::reports`]).
    pub(crate) fn snapshots(&self) -> Vec<SwitchSnapshot> {
        self.switches
            .iter()
            .map(|(&id, s)| {
                let fb = self.fallback_engines.get(&id);
                SwitchSnapshot {
                    node: id,
                    invocations: s.stats().invocations.get()
                        + fb.map_or(0, |f| f.stats().invocations.get()),
                    bytes_in: s.stats().bytes_in.get() + fb.map_or(0, |f| f.stats().bytes_in.get()),
                    bytes_out: s.stats().bytes_out.get()
                        + fb.map_or(0, |f| f.stats().bytes_out.get()),
                    buffer_allocs: s.dba().allocs(),
                    buffer_waits: s.dba().alloc_waits(),
                    buffer_peak: s.dba().occupancy().max().unwrap_or(0),
                    atb_hits: (0..s.config().num_cpus).map(|i| s.atb(i).hits()).sum(),
                    atb_misses: (0..s.config().num_cpus).map(|i| s.atb(i).misses()).sum(),
                    cpus: s.cpus().iter().map(snap_cpu).collect(),
                }
            })
            .collect()
    }

    /// Writes the engine's dynamic state: the fallback host, the trap
    /// set, every active engine (switches, active TCAs, fallback
    /// engines), and the per-request reorder buffers.
    pub(crate) fn snapshot(&self, w: &mut SnapWriter) {
        w.section("dispatch");
        w.opt_u64(self.fallback_host.map(|n| u64::from(n.0)));
        w.usize(self.trapped.len());
        for (sw, hid) in &self.trapped {
            w.u16(sw.0);
            w.u8(hid.as_u8());
        }
        w.usize(self.switches.len());
        for (&id, s) in &self.switches {
            w.u16(id.0);
            s.snapshot(w);
        }
        w.usize(self.active_tcas.len());
        for (&id, s) in &self.active_tcas {
            w.u16(id.0);
            s.snapshot(w);
        }
        w.usize(self.fallback_engines.len());
        for (&id, s) in &self.fallback_engines {
            w.u16(id.0);
            s.snapshot(w);
        }
        w.usize(self.flows.len());
        for (req, flow) in &self.flows {
            w.u64(req.0);
            flow.snapshot(w);
        }
    }

    /// Overwrites the engine's dynamic state from a snapshot taken of
    /// an identically built engine (same switches, active TCAs, and
    /// registered handlers).
    ///
    /// Handler traps are replayed first: each `(switch, handler)` pair
    /// in the snapshotted trap set has its (freshly re-registered)
    /// handler migrated from the original engine to a host-side
    /// fallback engine — exactly as the live trap did — so jump-table
    /// occupancy matches before engine state is overwritten.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is malformed or the
    /// engine set does not match.
    pub(crate) fn restore(
        &mut self,
        r: &mut SnapReader<'_>,
        cfg: &ClusterConfig,
    ) -> Result<(), SnapError> {
        r.section("dispatch")?;
        self.fallback_host = match r.opt_u64()? {
            Some(v) => Some(NodeId(
                u16::try_from(v).map_err(|_| SnapError::Malformed("fallback host id"))?,
            )),
            None => None,
        };
        let ntrap = r.usize()?;
        for _ in 0..ntrap {
            let sw = NodeId(r.u16()?);
            let raw = r.u8()?;
            if raw >= 64 {
                return Err(SnapError::Malformed("trapped handler id out of range"));
            }
            let hid = HandlerId::new(raw);
            let handler = self
                .switches
                .get_mut(&sw)
                .or_else(|| self.active_tcas.get_mut(&sw))
                .and_then(|e| e.take_handler(hid))
                .ok_or(SnapError::Malformed("trapped handler not registered"))?;
            let fallback_cfg = self.fallback_cfg.get_or_insert_with(|| {
                let mut fcfg = cfg.active.clone();
                fcfg.cpu = cfg.host_cpu.clone();
                fcfg.num_cpus = 1;
                fcfg.dispatch_cycles = 64;
                fcfg
            });
            self.fallback_engines
                .entry(sw)
                .or_insert_with(|| ActiveSwitch::new(sw, fallback_cfg.clone()))
                .register(hid, handler);
            self.trapped.insert((sw, hid));
        }
        if r.usize()? != self.switches.len() {
            return Err(SnapError::Malformed("switch count mismatch"));
        }
        for (&id, s) in &mut self.switches {
            if r.u16()? != id.0 {
                return Err(SnapError::Malformed("switch node mismatch"));
            }
            s.restore(r)?;
        }
        if r.usize()? != self.active_tcas.len() {
            return Err(SnapError::Malformed("active TCA count mismatch"));
        }
        for (&id, s) in &mut self.active_tcas {
            if r.u16()? != id.0 {
                return Err(SnapError::Malformed("active TCA node mismatch"));
            }
            s.restore(r)?;
        }
        if r.usize()? != self.fallback_engines.len() {
            return Err(SnapError::Malformed("fallback engine count mismatch"));
        }
        for (&id, s) in &mut self.fallback_engines {
            if r.u16()? != id.0 {
                return Err(SnapError::Malformed("fallback engine node mismatch"));
            }
            s.restore(r)?;
        }
        self.flows.clear();
        let nflows = r.usize()?;
        for _ in 0..nflows {
            let req = ReqId(r.u64()?);
            self.flows.insert(req, FlowState::restore(r)?);
        }
        Ok(())
    }

    /// One mapped storage data packet arrived at an active engine under
    /// a fault plan: dedup, recovery accounting, in-order release
    /// through the reorder buffer, and completion detection.
    fn mapped_arrival(
        &mut self,
        req: ReqId,
        sw: NodeId,
        pkt: asan_net::Packet,
        t: SimTime,
        bus: &mut EventBus<'_>,
        trace: u64,
    ) {
        let seq = pkt.header.seq as usize;
        let Some(st) = bus.reqs.get_mut(&req) else {
            return; // late duplicate after completion
        };
        if st.got[seq] {
            return; // duplicate delivery
        }
        st.got[seq] = true;
        let cat = std::mem::take(&mut st.faulted[seq]);
        let all = st.got.iter().all(|&g| g);
        let (host, tca) = (st.host, st.tca);
        bus.note_recovered(cat);
        let flow = self.flows.entry(req).or_default();
        flow.buffered.insert(pkt.header.seq, pkt);
        let mut release = Vec::new();
        while let Some(p) = flow.buffered.remove(&flow.next_seq) {
            flow.next_seq += 1;
            release.push(p);
        }
        for p in release {
            // Store-and-forward under faults: the whole payload is
            // present by the time the handler runs. Every packet of the
            // flow shares the request's trace.
            self.dispatch_active(sw, &p, t, t, t, bus, trace);
        }
        if all {
            self.flows.remove(&req);
            bus.push(t, Event::CompletionNotice { tca, host, req });
        }
    }

    /// Dispatches one active packet on the engine at `sw`, first
    /// consulting the injector's handler-trap schedule. A trapped
    /// handler is disabled in the switch's jump table and migrated —
    /// with its accumulated state — to a software engine on the
    /// fallback host; the stream's packets then cross the fabric to
    /// that host (graceful degradation: slower, still correct).
    #[allow(clippy::too_many_arguments)]
    fn dispatch_active(
        &mut self,
        sw: NodeId,
        pkt: &asan_net::Packet,
        t: SimTime,
        payload_start: SimTime,
        payload_end: SimTime,
        bus: &mut EventBus<'_>,
        trace: u64,
    ) {
        if bus.injector.is_some() {
            if let Some(hid) = pkt.header.handler {
                if self.trapped.contains(&(sw, hid)) {
                    self.forward_to_fallback(sw, pkt.clone(), t, bus, trace);
                    return;
                }
                let installed = self
                    .switches
                    .get(&sw)
                    .or_else(|| self.active_tcas.get(&sw))
                    .is_some_and(|e| e.has_handler(hid));
                if installed
                    && bus
                        .injector
                        .as_mut()
                        .expect("armed")
                        .should_trap(sw.0, hid.as_u8())
                {
                    let handler = self
                        .switches
                        .get_mut(&sw)
                        .or_else(|| self.active_tcas.get_mut(&sw))
                        .and_then(|e| e.take_handler(hid))
                        .expect("trapped handler installed");
                    let fallback_cfg = self.fallback_cfg.get_or_insert_with(|| {
                        // Software demultiplexing on a host CPU: one
                        // engine, slower dispatch, same handler model.
                        let mut fcfg = bus.cfg.active.clone();
                        fcfg.cpu = bus.cfg.host_cpu.clone();
                        fcfg.num_cpus = 1;
                        fcfg.dispatch_cycles = 64;
                        fcfg
                    });
                    self.fallback_engines
                        .entry(sw)
                        .or_insert_with(|| ActiveSwitch::new(sw, fallback_cfg.clone()))
                        .register(hid, handler);
                    self.trapped.insert((sw, hid));
                    bus.injector
                        .as_mut()
                        .expect("armed")
                        .stats
                        .handler_trap
                        .degraded += 1;
                    self.forward_to_fallback(sw, pkt.clone(), t, bus, trace);
                    return;
                }
            }
        }
        let engine = self
            .switches
            .get_mut(&sw)
            .or_else(|| self.active_tcas.get_mut(&sw))
            .expect("active engine exists");
        let result = engine.dispatch(pkt, t, payload_start, payload_end);
        Self::record_dispatch_spans(sw, pkt, t, &result, bus, trace);
        self.apply_dispatch_result(sw, sw, pkt.header.seq, result, bus, trace);
    }

    /// Reports one invocation's handler-occupancy and buffer spans to
    /// the probe, on the triggering packet's causal trace. The buffer
    /// span covers the dispatch window (grant → invocation done); a
    /// handler that keeps its input buffer holds it longer, which the
    /// occupancy gauge in the DBA tracks separately.
    fn record_dispatch_spans(
        sw: NodeId,
        pkt: &asan_net::Packet,
        header_at: SimTime,
        result: &DispatchResult,
        bus: &mut EventBus<'_>,
        trace: u64,
    ) {
        let ctx = TraceCtx { trace, parent: 0 };
        let bytes = pkt.payload.len() as u64;
        bus.probe
            .handler(sw, result.started, result.done, bytes, ctx);
        bus.probe.buffer(
            sw,
            result.granted,
            result.done,
            result.granted.saturating_since(header_at),
            bytes,
            ctx,
        );
    }

    /// Forwards a packet for a trapped handler from its switch to the
    /// fallback host over the fabric (the measurable cost of
    /// degradation): one extra wire crossing plus the OS software-demux
    /// cost of receiving a packet the switch hardware no longer handles.
    fn forward_to_fallback(
        &mut self,
        sw: NodeId,
        pkt: asan_net::Packet,
        t: SimTime,
        bus: &mut EventBus<'_>,
        trace: u64,
    ) {
        let fb = self.fallback_host.expect("fault plan requires a host");
        let ctx = TraceCtx { trace, parent: 0 };
        let d = bus.transmit(pkt.wire_bytes(), sw, fb, t, ctx);
        let demux = bus.cfg.os.per_request;
        bus.push(
            d.arrival + demux,
            Event::FallbackDispatch { sw, pkt, trace },
        );
    }

    /// Applies a dispatch result: transmits the handler's output
    /// messages and forwards its disk requests. `origin` names the
    /// logical engine in delivered messages; `from` is the node the
    /// bytes physically leave (these differ under host fallback).
    fn apply_dispatch_result(
        &mut self,
        origin: NodeId,
        from: NodeId,
        seq: u32,
        result: DispatchResult,
        bus: &mut EventBus<'_>,
        trace: u64,
    ) {
        // Everything the handler emits — output messages and posted
        // disk requests — stays on the triggering packet's trace.
        let ctx = TraceCtx { trace, parent: 0 };
        for m in result.outbox {
            let d = if m.dst == from {
                // Output for the very node the engine runs on: local.
                asan_net::Delivery {
                    header_at: m.ready,
                    payload_start: m.ready,
                    arrival: m.ready,
                    hops: 0,
                }
            } else {
                let wire = (m.data.len() + HEADER_BYTES) as u64;
                bus.transmit(wire, from, m.dst, m.ready, ctx)
            };
            bus.deliver(
                origin,
                m.dst,
                m.handler,
                m.addr,
                m.data.into(),
                seq,
                d,
                None,
                trace,
            );
        }
        for r in result.io_reqs {
            if r.tca == from {
                // An active TCA requesting its own disks: the request
                // never leaves the node.
                bus.push(r.ready, Event::SwitchIoAtTca { r, attempt: 0 });
            } else {
                let wire = (HEADER_BYTES * 2) as u64;
                let d = bus.transmit(wire, from, r.tca, r.ready, ctx);
                bus.push(d.arrival, Event::SwitchIoAtTca { r, attempt: 0 });
            }
        }
    }
}
