//! Cross-crate integration tests: whole-cluster runs at reduced sizes
//! for every benchmark and configuration, asserting the paper's
//! qualitative relationships and the simulator's global invariants.

use asan_apps::runner::{sweep, Variant};
use asan_apps::{grep, hashjoin, md5app, mpeg, psort, reduce, select, tar};
use asan_sim::SimTime;

type AppRunner = Box<dyn Fn(Variant) -> asan_apps::AppRun>;

/// Every app × every configuration runs to completion, produces a
/// consistent artifact, and keeps utilization within [0, 1].
#[test]
fn all_apps_all_variants_complete_with_sane_metrics() {
    let checks: Vec<(&str, AppRunner)> = vec![
        ("mpeg", Box::new(|v| mpeg::run(v, &mpeg::Params::small()))),
        (
            "select",
            Box::new(|v| select::run(v, &select::Params::small())),
        ),
        ("grep", Box::new(|v| grep::run(v, &grep::Params::small()))),
        ("tar", Box::new(|v| tar::run(v, &tar::Params::small()))),
    ];
    for (name, run) in checks {
        for v in Variant::ALL {
            let r = run(v);
            assert!(r.exec > SimTime::ZERO, "{name}/{v:?} zero exec");
            assert!(
                (0.0..=1.0).contains(&r.host_utilization),
                "{name}/{v:?} utilization {}",
                r.host_utilization
            );
            let b = r.host_breakdown;
            assert!(b.total().as_ps() > 0, "{name}/{v:?} empty breakdown");
            if v.is_active() {
                assert!(
                    !r.switch_breakdowns.is_empty(),
                    "{name}/{v:?} active run has no switch CPU accounting"
                );
            }
        }
    }
}

/// Prefetch never hurts: t(normal) ≥ t(normal+pref) and
/// t(active) ≥ t(active+pref), for every app (the paper's figures all
/// show this ordering).
#[test]
fn prefetch_never_slows_an_app_down() {
    let apps: Vec<(&str, AppRunner)> = vec![
        (
            "select",
            Box::new(|v| select::run(v, &select::Params::small())),
        ),
        ("grep", Box::new(|v| grep::run(v, &grep::Params::small()))),
        ("mpeg", Box::new(|v| mpeg::run(v, &mpeg::Params::small()))),
    ];
    for (name, run) in apps {
        let n = run(Variant::Normal).exec;
        let np = run(Variant::NormalPref).exec;
        let a = run(Variant::Active).exec;
        let ap = run(Variant::ActivePref).exec;
        // Tolerate sub-percent scheduling jitter.
        let slack = |t: SimTime| SimTime::from_ps(t.as_ps() + t.as_ps() / 100);
        assert!(np <= slack(n), "{name}: normal+pref {np} > normal {n}");
        assert!(ap <= slack(a), "{name}: active+pref {ap} > active {a}");
    }
}

/// Active filtering reduces host I/O traffic for the filtering apps
/// (Select, Grep, HashJoin, MPEG) — the paper's central claim.
#[test]
fn active_reduces_host_traffic_for_filtering_apps() {
    let s = sweep(|v| select::run(v, &select::Params::small()));
    let g = sweep(|v| grep::run(v, &grep::Params::small()));
    for runs in [&s, &g] {
        let normal = runs.iter().find(|r| r.variant == Variant::Normal).unwrap();
        let active = runs.iter().find(|r| r.variant == Variant::Active).unwrap();
        assert!(
            active.host_traffic < normal.host_traffic,
            "active {} >= normal {}",
            active.host_traffic,
            normal.host_traffic
        );
    }
}

/// Tar's active case keeps the host out of the data path entirely.
#[test]
fn tar_active_bypasses_host() {
    let p = tar::Params::small();
    let normal = tar::run(Variant::Normal, &p);
    let active = tar::run(Variant::Active, &p);
    assert!(active.host_traffic * 50 < normal.host_traffic);
    assert!(active.host_utilization < 0.05);
}

/// HashJoin: every configuration computes the same (validated) result,
/// and the active filter removes most of S.
#[test]
fn hashjoin_consistency() {
    let p = hashjoin::Params::small();
    let runs = sweep(|v| hashjoin::run(v, &p));
    let m = runs[0].artifact;
    for r in &runs {
        assert_eq!(r.artifact, m);
    }
}

/// Parallel sort conserves records and cuts per-node traffic.
#[test]
fn psort_conservation_and_traffic() {
    let p = psort::Params::small();
    let normal = psort::run(Variant::NormalPref, &p);
    let active = psort::run(Variant::ActivePref, &p);
    assert_eq!(normal.artifact, active.artifact);
    assert!(active.host_traffic < normal.host_traffic);
}

/// MD5 digests are bit-exact in every configuration, and the
/// single-switch-CPU active case loses to the host (the paper's
/// "unsuccessful partitioning").
#[test]
fn md5_correct_and_slow_on_one_switch_cpu() {
    let p = md5app::Params::small();
    let n = md5app::run(Variant::NormalPref, &p);
    let a = md5app::run(Variant::ActivePref, &p);
    assert!(a.exec > n.exec, "active {} vs normal {}", a.exec, n.exec);
}

/// Reductions: active beats normal once the tree grows, and results
/// are validated lane-by-lane inside `reduce::run`.
#[test]
fn reduction_scaling_shape() {
    let n8 = reduce::run(reduce::Mode::ReduceToOne, false, 8);
    let a8 = reduce::run(reduce::Mode::ReduceToOne, true, 8);
    let n16 = reduce::run(reduce::Mode::ReduceToOne, false, 16);
    let a16 = reduce::run(reduce::Mode::ReduceToOne, true, 16);
    assert!(
        a8.latency < n8.latency,
        "p=8: {} vs {}",
        a8.latency,
        n8.latency
    );
    let s8 = n8.latency.as_ps() as f64 / a8.latency.as_ps() as f64;
    let s16 = n16.latency.as_ps() as f64 / a16.latency.as_ps() as f64;
    assert!(
        s16 > s8 * 0.9,
        "speedup should not collapse with scale: {s8} -> {s16}"
    );
}
