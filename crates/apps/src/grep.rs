//! Grep (§5): GNU-grep-style literal search for "Big Red Bear".
//!
//! * **normal**: the host streams the 1 146 880-byte file in 32 KB
//!   requests and runs the DFA over every byte.
//! * **active**: the DFA runs on the switch ("the Grep handler can
//!   start searching as soon as the first data enters the switch");
//!   only the 16 matching lines travel to the host.
//!
//! Shape to reproduce (Figures 9–10): active beats normal by ~1.14×;
//! `normal+pref` beats plain `active`; `active+pref` is best; active
//! host utilization is ≈ 0 and host traffic ≈ 0.

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::cluster::{ClusterConfig, Dest, HostCtx, HostMsg, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::{HandlerId, NodeId};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::blockio::{BlockPlan, BlockReader};
use crate::cost;
use crate::data;
use crate::dfa::LiteralDfa;
use crate::runner::{drive, standard_cluster, AppRun, Variant};

/// Handler ID of the grep searcher.
pub const GREP_HANDLER: HandlerId = HandlerId::new_const(2);

/// Flow tag of the final result message.
pub const DONE_HANDLER: HandlerId = HandlerId::new_const(61);

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// File size (1 146 880 B in Table 1).
    pub file_bytes: u64,
    /// The literal pattern.
    pub pattern: &'static str,
    /// Number of matching lines to plant.
    pub matches: usize,
    /// I/O request size (32 KB, §5).
    pub io_block: u64,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params {
            file_bytes: 1_146_880,
            pattern: "Big Red Bear",
            matches: 16,
            io_block: 32 * 1024,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        Params {
            file_bytes: 128 * 1024,
            matches: 4,
            ..Params::paper()
        }
    }
}

/// Normal-case host program: DFA over every DMA'd block.
struct NormalGrep {
    corpus: Arc<Vec<u8>>, // asan-lint: allow(snapshot-completeness)
    reader: BlockReader,
    dfa: LiteralDfa, // asan-lint: allow(snapshot-completeness)
    state: usize,
    matches: u64,
    buf_base: u64, // asan-lint: allow(snapshot-completeness)
}

impl HostProgram for NormalGrep {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // Step 2 of grep: build the DFA structure.
        ctx.cpu().compute(20_000);
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        let Some((off, len)) = self.reader.on_complete(ctx, req) else {
            return;
        };
        // Search the real bytes: one DFA step per byte; memory
        // references one load per 8 bytes (double-word reads).
        let chunk = &self.corpus[off as usize..(off + len) as usize];
        let (state, hits) = self.dfa.search(self.state, chunk);
        self.state = state;
        self.matches += hits.len() as u64;
        ctx.cpu().scan(
            self.buf_base + off,
            len,
            8,
            cost::GREP_DFA_INSTR_PER_BYTE * 8,
            false,
        );
        ctx.cpu()
            .compute(hits.len() as u64 * cost::GREP_MATCH_LINE_INSTR);
        self.reader.refill(ctx);
        if self.reader.done() {
            ctx.finish();
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.usize(self.state);
        w.u64(self.matches);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.state = r.usize()?;
        self.matches = r.u64()?;
        Ok(())
    }
}

/// The grep switch handler: DFA over the packet stream, forwarding the
/// matched lines.
pub struct GrepHandler {
    dfa: LiteralDfa, // asan-lint: allow(snapshot-completeness)
    state: usize,
    host: NodeId,      // asan-lint: allow(snapshot-completeness)
    expect_bytes: u64, // asan-lint: allow(snapshot-completeness)
    seen: u64,
    matches: u64,
    /// Trailing window kept to reconstruct a matched line (64 B lines).
    line_tail: Vec<u8>,
    out_addr: u32,
}

impl GrepHandler {
    fn new(pattern: &str, host: NodeId, expect_bytes: u64) -> Self {
        GrepHandler {
            dfa: LiteralDfa::new(pattern.as_bytes()),
            state: 0,
            host,
            expect_bytes,
            seen: 0,
            matches: 0,
            line_tail: Vec::new(),
            out_addr: 0,
        }
    }

    /// Matches found so far.
    pub fn matches(&self) -> u64 {
        self.matches
    }
}

impl Handler for GrepHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let payload = ctx.payload();
        // DFA cost: steps per byte, charged per dword of stream.
        ctx.charge_stream(payload.len(), cost::GREP_DFA_INSTR_PER_BYTE * 8);
        // Maintain a line-reconstruction tail (last 128 bytes).
        for (i, &b) in payload.iter().enumerate() {
            let (s, hit) = self.dfa.step(self.state, b);
            self.state = s;
            if hit {
                self.matches += 1;
                ctx.compute(cost::GREP_MATCH_LINE_INSTR);
                // Send the matched line (tail window + rest to newline;
                // a 64-byte line in our corpus).
                let start = self.line_tail.len() + i;
                let from = start.saturating_sub(63);
                let mut line: Vec<u8> = self
                    .line_tail
                    .iter()
                    .chain(payload.iter())
                    .skip(from)
                    .take(64)
                    .copied()
                    .collect();
                line.truncate(64);
                ctx.send(self.host, None, self.out_addr, &line);
                self.out_addr = self.out_addr.wrapping_add(line.len() as u32);
            }
        }
        self.line_tail = payload;
        if self.line_tail.len() > 128 {
            let cut = self.line_tail.len() - 128;
            self.line_tail.drain(..cut);
        }
        self.seen += ctx.msg().len as u64;
        if self.seen >= self.expect_bytes {
            ctx.send(
                self.host,
                Some(DONE_HANDLER),
                0,
                &self.matches.to_le_bytes(),
            );
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.usize(self.state);
        w.u64(self.seen);
        w.u64(self.matches);
        w.bytes(&self.line_tail);
        w.u32(self.out_addr);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.state = r.usize()?;
        self.seen = r.u64()?;
        self.matches = r.u64()?;
        self.line_tail = r.bytes()?;
        self.out_addr = r.u32()?;
        Ok(())
    }
}

/// Active-case host program.
struct ActiveGrep {
    reader: BlockReader,
    lines_in: u64,
    final_count: Option<u64>,
}

impl HostProgram for ActiveGrep {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // Option parsing stays on the host (step 1 of grep).
        ctx.cpu().compute(5_000);
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        self.reader.on_complete(ctx, req);
        self.reader.refill(ctx);
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if msg.handler == Some(DONE_HANDLER) {
            self.final_count = Some(u64::from_le_bytes(msg.data[..8].try_into().expect("count")));
            ctx.finish();
            return;
        }
        self.lines_in += 1;
        // Print/store the matched line.
        ctx.cpu().compute(500);
        ctx.cpu().touch_lines(
            0x3000_0000 + msg.addr as u64,
            msg.data.len() as u64,
            1,
            false,
        );
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.u64(self.lines_in);
        w.opt_u64(self.final_count);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.lines_in = r.u64()?;
        self.final_count = r.opt_u64()?;
        Ok(())
    }
}

/// Runs Grep in one configuration, validating the match count.
///
/// # Panics
///
/// Panics if the simulated match count disagrees with the pure-Rust
/// reference.
pub fn run(variant: Variant, p: &Params) -> AppRun {
    run_with_config(variant, p, ClusterConfig::paper())
}

/// [`run`] with a co-scheduled background job: returns Grep's finish
/// time, when the background job completed (if it did), and any CPU
/// time it had left. Used by the multiprogrammed-server experiment.
pub fn run_with_background(
    variant: Variant,
    p: &Params,
    cfg: ClusterConfig,
    background: asan_sim::SimDuration,
) -> (
    asan_sim::SimTime,
    Option<asan_sim::SimTime>,
    asan_sim::SimDuration,
) {
    let r = run_inner(variant, p, cfg, background);
    (r.0.exec, r.1, r.2)
}

/// [`run`] with an explicit cluster configuration (used by the
/// ablation studies to vary the active-switch hardware).
pub fn run_with_config(variant: Variant, p: &Params, cfg: ClusterConfig) -> AppRun {
    run_inner(variant, p, cfg, asan_sim::SimDuration::ZERO).0
}

fn run_inner(
    variant: Variant,
    p: &Params,
    cfg: ClusterConfig,
    background: asan_sim::SimDuration,
) -> (AppRun, Option<asan_sim::SimTime>, asan_sim::SimDuration) {
    let corpus = Arc::new(data::grep_corpus(
        p.file_bytes as usize,
        p.pattern,
        p.matches,
    ));
    let dfa = LiteralDfa::new(p.pattern.as_bytes());
    let want = dfa.count(&corpus) as u64;
    assert_eq!(want, p.matches as u64, "generator planted wrong matches");

    let build = || {
        let (mut cl, hs, ts, sw) = standard_cluster(1, 1, cfg.clone());
        let file = cl
            .add_file(ts[0], corpus.as_ref().clone())
            .expect("cluster setup");
        let host = hs[0];

        if variant.is_active() {
            cl.register_handler(
                sw,
                GREP_HANDLER,
                Box::new(GrepHandler::new(p.pattern, host, p.file_bytes)),
            )
            .expect("cluster setup");
            cl.set_program(
                host,
                Box::new(ActiveGrep {
                    reader: BlockReader::new(BlockPlan {
                        file,
                        total: p.file_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::Mapped {
                            node: sw,
                            handler: GREP_HANDLER,
                            base_addr: 0,
                        },
                    }),
                    lines_in: 0,
                    final_count: None,
                }),
            )
            .expect("cluster setup");
        } else {
            cl.set_program(
                host,
                Box::new(NormalGrep {
                    corpus: corpus.clone(),
                    reader: BlockReader::new(BlockPlan {
                        file,
                        total: p.file_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::HostBuf { addr: 0x1000_0000 },
                    }),
                    dfa: LiteralDfa::new(p.pattern.as_bytes()),
                    state: 0,
                    matches: 0,
                    buf_base: 0x1000_0000,
                }),
            )
            .expect("cluster setup");
        }

        if background > asan_sim::SimDuration::ZERO {
            cl.set_background_job(host, background)
                .expect("cluster setup");
        }
        (cl, host)
    };

    let (mut cl, host, report) = drive(&format!("grep-{}", variant.label()), build);
    let got = if variant.is_active() {
        let program = cl.take_program(host).expect("program");
        let prog = program
            .as_any()
            .and_then(|a| a.downcast_ref::<ActiveGrep>())
            .expect("active grep");
        assert_eq!(prog.lines_in, want, "host got wrong number of lines");
        prog.final_count.expect("done message")
    } else {
        cl.take_program(host)
            .expect("program")
            .as_any()
            .and_then(|a| a.downcast_ref::<NormalGrep>())
            .map(|g| g.matches)
            .expect("normal grep")
    };
    assert_eq!(got, want, "grep match count mismatch");
    let hr = report.host(host).expect("node report");
    let bg = (hr.background_done, hr.background_left);
    (
        AppRun::from_report(variant, &cl, &report, report.finish, got),
        bg.0,
        bg.1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_find_all_matches() {
        let p = Params::small();
        for v in Variant::ALL {
            let r = run(v, &p);
            assert_eq!(r.artifact, p.matches as u64, "{v:?}");
        }
    }

    #[test]
    fn active_host_traffic_is_negligible() {
        let p = Params::small();
        let normal = run(Variant::Normal, &p);
        let active = run(Variant::Active, &p);
        assert!(
            active.host_traffic * 20 < normal.host_traffic,
            "active {} vs normal {}",
            active.host_traffic,
            normal.host_traffic
        );
    }

    #[test]
    fn active_host_utilization_near_zero() {
        let p = Params::small();
        let active = run(Variant::ActivePref, &p);
        assert!(
            active.host_utilization < 0.1,
            "util = {}",
            active.host_utilization
        );
    }
}
