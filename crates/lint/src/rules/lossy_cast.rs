//! Rule `lossy-model-cast`: no silently truncating `as` casts on
//! model quantities.
//!
//! Cycle counts, nanosecond durations, and byte totals are the
//! quantities the paper's figures are made of; an `as u32` that wraps
//! at 4 GiB does not crash — it quietly skews a curve. The rule flags
//! `as`-casts to a narrowing integer type whose operand's final
//! identifier *names* such a quantity (`cycles`, `_ns`, `nanos`,
//! `bytes`, and — for the u8/u16 targets where truncation is most
//! likely — `len`). Casts of SCREAMING_CASE constants are exempt:
//! their values are compile-time known and review-visible. The fix is
//! `T::try_from(x).expect(...)` (loud) or a checked helper, not a
//! wider silent wrap.

use super::{FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::Kind;

/// Crates that model hardware quantities.
const SCOPED: [&str; 7] = [
    "crates/core/",
    "crates/net/",
    "crates/io/",
    "crates/mem/",
    "crates/cpu/",
    "crates/sim/",
    "crates/apps/",
];

/// Narrowing targets always checked.
const NARROW: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
/// Targets narrow enough that a `len` operand is also suspicious.
const VERY_NARROW: [&str; 4] = ["u8", "u16", "i8", "i16"];

pub(crate) struct LossyModelCast;

impl Rule for LossyModelCast {
    fn name(&self) -> &'static str {
        "lossy-model-cast"
    }

    fn describe(&self) -> &'static str {
        "flag truncating `as` casts on cycle/ns/byte/len quantities (use try_from)"
    }

    fn scope(&self) -> &'static str {
        "model crates (core, net, io, mem, cpu, sim, apps)"
    }

    fn since_pr(&self) -> u32 {
        3
    }

    fn applies(&self, rel_path: &str) -> bool {
        SCOPED.iter().any(|p| rel_path.starts_with(p))
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let toks = ctx.tokens();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident || t.text != "as" {
                continue;
            }
            let Some(target) = toks.get(i + 1) else {
                continue;
            };
            if target.kind != Kind::Ident || !NARROW.contains(&target.text.as_str()) {
                continue;
            }
            // The operand's final identifier: walk left over paren /
            // bracket punctuation to the last name involved in the
            // value (`x.len() as u16` → `len`, `(i * MTU) as u32` →
            // `MTU`). Anything else — e.g. a literal operand — means
            // there is no suspicious name to match.
            let Some(op) = toks[..i]
                .iter()
                .rev()
                .take_while(|t| {
                    t.kind == Kind::Ident
                        || (t.kind == Kind::Punct
                            && matches!(t.text.as_str(), ")" | "(" | "]" | "["))
                })
                .find(|t| t.kind == Kind::Ident)
            else {
                continue;
            };
            // Compile-time constants are review-visible; skip them.
            if op
                .text
                .chars()
                .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit())
            {
                continue;
            }
            if suspicious(&op.text, &target.text) {
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: Severity::Deny,
                    file: ctx.rel_path.to_string(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "`{} as {}` can truncate a model quantity; use \
                         `{}::try_from({}).expect(...)` or a checked helper",
                        op.text, target.text, target.text, op.text,
                    ),
                });
            }
        }
    }
}

/// Whether identifier `name` names a truncation-sensitive quantity
/// when cast to `target`.
fn suspicious(name: &str, target: &str) -> bool {
    let n = name.to_ascii_lowercase();
    let quantity = n.contains("cycle")
        || n.contains("nanos")
        || n == "ns"
        || n.ends_with("_ns")
        || n == "byte"
        || n == "bytes"
        || n.ends_with("_bytes")
        || n.ends_with("_byte");
    quantity || (n.ends_with("len") && VERY_NARROW.contains(&target))
}

#[cfg(test)]
mod tests {
    use super::suspicious;

    #[test]
    fn quantity_names_hit_every_narrow_target() {
        assert!(suspicious("total_cycles", "u32"));
        assert!(suspicious("elapsed_ns", "i32"));
        assert!(suspicious("wire_bytes", "u32"));
        assert!(!suspicious("mtu", "u32"));
        assert!(!suspicious("i", "u16"));
    }

    #[test]
    fn len_only_hits_very_narrow_targets() {
        assert!(suspicious("len", "u16"));
        assert!(suspicious("plen", "u8"));
        assert!(!suspicious("len", "u32"));
    }
}
