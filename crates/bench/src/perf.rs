//! Perf-regression tracking: wall-clock samples per benchmark run,
//! emitted as `BENCH_PERF.json` and parsed back for reports.
//!
//! This is the only place outside `crates/bench/benches/` that reads
//! the wall clock, and it does so exclusively to time *real*
//! executions of the simulator — the harness's whole job. Simulated
//! results never depend on these readings: the JSON document carries
//! wall time, events/second and peak queue depth, all diagnostics.
//!
//! A committed `BENCH_PERF.json` from a full release run is the
//! trajectory: re-run `repro perf` on comparable hardware and diff the
//! `events_per_sec` column to see the simulator getting faster or
//! slower over time.

use crate::json::{self, Value};

/// Times one closure against the wall clock, returning its result and
/// the elapsed seconds. Harness-only: simulation code must never read
/// wall time (the `no-wall-clock` lint enforces this; the allowance
/// below is the perf harness's charter).
pub fn time_wall<T>(f: impl FnOnce() -> T) -> (T, f64) {
    // asan-lint: allow(no-wall-clock)
    let t0 = std::time::Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// One benchmark × configuration wall-clock sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfSample {
    /// Benchmark name ("mpeg", "grep", …).
    pub name: String,
    /// Configuration label ("normal", "active").
    pub config: String,
    /// Topology the run simulated ([`asan_net::TopoSpec::label`]:
    /// "single-switch", "fat-tree-r16", …).
    pub topo: String,
    /// Wall-clock run time, integral microseconds.
    pub wall_us: u64,
    /// Events the simulation processed.
    pub events: u64,
    /// Simulation throughput, events per wall-clock second.
    pub events_per_sec: u64,
    /// High-water mark of the scheduler's pending-event queue.
    pub peak_queue: u64,
}

/// A full perf document: the samples plus sweep-level totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfDoc {
    /// Worker threads the sweep ran on.
    pub workers: u64,
    /// End-to-end wall time of the whole sweep, microseconds.
    pub total_wall_us: u64,
    /// Per-run samples, in canonical benchmark × config order.
    pub runs: Vec<PerfSample>,
}

/// Renders the perf JSON document (`BENCH_PERF.json`). Fixed field
/// order, integral values only, so diffs between trajectory points
/// stay readable.
pub fn perf_json(samples: &[PerfSample], total_wall_us: u64, workers: usize) -> String {
    let mut out = format!(
        "{{\"schema\":\"bench-perf-v2\",\"workers\":{workers},\
         \"total_wall_us\":{total_wall_us},\"runs\":["
    );
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"config\":\"{}\",\"topo\":\"{}\",\"wall_us\":{},\
             \"events\":{},\"events_per_sec\":{},\"peak_queue\":{}}}",
            s.name, s.config, s.topo, s.wall_us, s.events, s.events_per_sec, s.peak_queue
        ));
    }
    out.push_str("]}\n");
    out
}

/// Parses a perf document produced by [`perf_json`]. Accepts both the
/// current `bench-perf-v2` schema and the pre-topology `bench-perf-v1`
/// (whose runs all predate multi-switch fabrics and default to
/// `"single-switch"`), so old committed trajectory points stay
/// diffable.
///
/// # Errors
///
/// Returns a description of the first malformed or missing field.
pub fn parse_perf_doc(text: &str) -> Result<PerfDoc, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let field = |v: &Value, k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing numeric field {k:?}"))
    };
    let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    let v2 = match schema {
        "bench-perf-v1" => false,
        "bench-perf-v2" => true,
        _ => return Err(format!("unknown perf schema {schema:?}")),
    };
    let runs_arr = doc
        .get("runs")
        .and_then(Value::as_arr)
        .ok_or("missing \"runs\" array")?;
    let mut runs = Vec::new();
    for r in runs_arr {
        let topo = if v2 {
            r.get("topo")
                .and_then(Value::as_str)
                .ok_or("missing \"topo\"")?
                .to_string()
        } else {
            "single-switch".to_string()
        };
        runs.push(PerfSample {
            name: r
                .get("name")
                .and_then(Value::as_str)
                .ok_or("missing \"name\"")?
                .to_string(),
            config: r
                .get("config")
                .and_then(Value::as_str)
                .ok_or("missing \"config\"")?
                .to_string(),
            topo,
            wall_us: field(r, "wall_us")?,
            events: field(r, "events")?,
            events_per_sec: field(r, "events_per_sec")?,
            peak_queue: field(r, "peak_queue")?,
        });
    }
    Ok(PerfDoc {
        workers: field(&doc, "workers")?,
        total_wall_us: field(&doc, "total_wall_us")?,
        runs,
    })
}

/// Renders the human perf table: one row per benchmark × config, plus
/// sweep totals.
pub fn perf_report(doc: &PerfDoc) -> String {
    let mut out = String::new();
    out.push_str("== Perf: wall-clock per benchmark run ==\n");
    out.push_str(&format!(
        "{:<20} {:<8} {:<14} {:>12} {:>12} {:>14} {:>11}\n",
        "benchmark", "config", "topology", "wall (ms)", "events", "events/sec", "peak queue"
    ));
    let mut events_total = 0u64;
    for s in &doc.runs {
        events_total += s.events;
        out.push_str(&format!(
            "{:<20} {:<8} {:<14} {:>12.2} {:>12} {:>14} {:>11}\n",
            s.name,
            s.config,
            s.topo,
            s.wall_us as f64 / 1000.0,
            s.events,
            s.events_per_sec,
            s.peak_queue,
        ));
    }
    let total_secs = doc.total_wall_us as f64 / 1e6;
    let agg = if total_secs > 0.0 {
        (events_total as f64 / total_secs) as u64
    } else {
        0
    };
    out.push_str(&format!(
        "total: {total_secs:.2} s wall on {} workers | {events_total} events | {agg} events/sec aggregate\n",
        doc.workers,
    ));
    out
}

/// Diffs two trajectory points: run `analyze perf <old> <new>` to see
/// the simulator getting faster or slower per benchmark. Runs are
/// matched by (name, config, topology); rows present on only one side
/// are listed as added/removed instead of silently dropped.
pub fn perf_diff(old: &PerfDoc, new: &PerfDoc) -> String {
    let key = |s: &PerfSample| (s.name.clone(), s.config.clone(), s.topo.clone());
    let mut out = String::new();
    out.push_str("== Perf diff: events/sec, old -> new ==\n");
    out.push_str(&format!(
        "{:<20} {:<8} {:<14} {:>14} {:>14} {:>9}\n",
        "benchmark", "config", "topology", "old ev/s", "new ev/s", "delta"
    ));
    for s in &new.runs {
        match old.runs.iter().find(|o| key(o) == key(s)) {
            Some(o) if o.events_per_sec > 0 => {
                let delta = (s.events_per_sec as f64 / o.events_per_sec as f64 - 1.0) * 100.0;
                out.push_str(&format!(
                    "{:<20} {:<8} {:<14} {:>14} {:>14} {:>+8.1}%\n",
                    s.name, s.config, s.topo, o.events_per_sec, s.events_per_sec, delta
                ));
            }
            Some(o) => {
                out.push_str(&format!(
                    "{:<20} {:<8} {:<14} {:>14} {:>14} {:>9}\n",
                    s.name, s.config, s.topo, o.events_per_sec, s.events_per_sec, "n/a"
                ));
            }
            None => {
                out.push_str(&format!(
                    "{:<20} {:<8} {:<14} {:>14} {:>14} {:>9}\n",
                    s.name, s.config, s.topo, "-", s.events_per_sec, "new"
                ));
            }
        }
    }
    for o in &old.runs {
        if !new.runs.iter().any(|s| key(s) == key(o)) {
            out.push_str(&format!(
                "{:<20} {:<8} {:<14} {:>14} {:>14} {:>9}\n",
                o.name, o.config, o.topo, o.events_per_sec, "-", "removed"
            ));
        }
    }
    let total = |d: &PerfDoc| d.total_wall_us.max(1) as f64 / 1e6;
    out.push_str(&format!(
        "total wall: {:.2} s -> {:.2} s ({:+.1}%) | workers {} -> {}\n",
        total(old),
        total(new),
        (total(new) / total(old) - 1.0) * 100.0,
        old.workers,
        new.workers,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, config: &str) -> PerfSample {
        PerfSample {
            name: name.to_string(),
            config: config.to_string(),
            topo: "single-switch".to_string(),
            wall_us: 1_500,
            events: 30_000,
            events_per_sec: 20_000_000,
            peak_queue: 42,
        }
    }

    #[test]
    fn perf_json_roundtrips_through_the_parser() {
        let samples = vec![sample("mpeg", "normal"), sample("mpeg", "active")];
        let text = perf_json(&samples, 3_000, 4);
        let doc = parse_perf_doc(&text).expect("parses");
        assert_eq!(doc.workers, 4);
        assert_eq!(doc.total_wall_us, 3_000);
        assert_eq!(doc.runs, samples);
    }

    #[test]
    fn perf_report_renders_rows_and_totals() {
        let doc = PerfDoc {
            workers: 2,
            total_wall_us: 2_000_000,
            runs: vec![sample("grep", "active")],
        };
        let t = perf_report(&doc);
        assert!(t.contains("grep"), "table:\n{t}");
        assert!(t.contains("active"));
        assert!(t.contains("1.50"), "wall ms:\n{t}");
        assert!(t.contains("2 workers"));
        assert!(t.contains("30000 events"));
    }

    #[test]
    fn parse_perf_doc_rejects_malformed_input() {
        assert!(parse_perf_doc("{}").is_err());
        assert!(parse_perf_doc("not json").is_err());
        assert!(parse_perf_doc("{\"schema\":\"bench-perf-v1\"}").is_err());
        assert!(
            parse_perf_doc("{\"schema\":\"bench-perf-v3\",\"workers\":1}").is_err(),
            "unknown schema must be rejected"
        );
    }

    #[test]
    fn parse_perf_doc_accepts_v1_without_topo() {
        let v1 = "{\"schema\":\"bench-perf-v1\",\"workers\":2,\"total_wall_us\":10,\
                  \"runs\":[{\"name\":\"grep\",\"config\":\"active\",\"wall_us\":5,\
                  \"events\":100,\"events_per_sec\":20,\"peak_queue\":3}]}";
        let doc = parse_perf_doc(v1).expect("v1 parses");
        assert_eq!(doc.runs[0].topo, "single-switch");
    }

    #[test]
    fn perf_diff_matches_rows_and_flags_changes() {
        let old = PerfDoc {
            workers: 2,
            total_wall_us: 1_000_000,
            runs: vec![sample("grep", "active"), sample("tar", "normal")],
        };
        let mut faster = sample("grep", "active");
        faster.events_per_sec = 30_000_000;
        let mut fabric = sample("reduce-to-one", "active");
        fabric.topo = "fat-tree-r16".to_string();
        let new = PerfDoc {
            workers: 4,
            total_wall_us: 800_000,
            runs: vec![faster, fabric],
        };
        let d = perf_diff(&old, &new);
        assert!(d.contains("+50.0%"), "diff:\n{d}");
        assert!(d.contains("fat-tree-r16"), "diff:\n{d}");
        assert!(d.contains("new"), "added row flagged:\n{d}");
        assert!(d.contains("removed"), "removed row flagged:\n{d}");
        assert!(d.contains("workers 2 -> 4"), "totals:\n{d}");
    }

    #[test]
    fn time_wall_returns_closure_result() {
        let (v, secs) = time_wall(|| 7u32);
        assert_eq!(v, 7);
        assert!(secs >= 0.0);
    }
}
