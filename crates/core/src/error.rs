//! Structured simulation errors.
//!
//! The cluster's public API reports misuse (wrong node kind, duplicate
//! programs) and resource exhaustion (event-limit livelock guard,
//! retries exhausted under fault injection) as [`SimError`] values
//! instead of panicking, so callers get loud, precise, matchable
//! failures.

use std::fmt;

use asan_net::NodeId;
use asan_sim::SimTime;

/// A structured error from the cluster simulator's public API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The named node is not a host.
    NotAHost(NodeId),
    /// The named node is not a switch.
    NotASwitch(NodeId),
    /// The named node is not a TCA.
    NotATca(NodeId),
    /// The named TCA has no active engine; call `enable_active_tca`
    /// first.
    TcaNotActive(NodeId),
    /// A program is already installed on the named host.
    ProgramAlreadyInstalled(NodeId),
    /// The event-count guard tripped: likely a livelock.
    EventLimitExceeded {
        /// Simulated time at which the guard tripped.
        at: SimTime,
        /// The configured event limit.
        limit: u64,
    },
    /// A request exhausted its retry budget under fault injection.
    RetriesExhausted {
        /// The request's id.
        req: u64,
        /// Attempts made (including the original).
        attempts: u32,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotAHost(n) => write!(f, "{n} is not a host node"),
            SimError::NotASwitch(n) => write!(f, "{n} is not a switch node"),
            SimError::NotATca(n) => write!(f, "{n} is not a TCA node"),
            SimError::TcaNotActive(n) => {
                write!(f, "TCA {n} is not active; call enable_active_tca first")
            }
            SimError::ProgramAlreadyInstalled(n) => {
                write!(f, "program already installed on {n}")
            }
            SimError::EventLimitExceeded { at, limit } => {
                write!(f, "event limit {limit} exceeded at {at}: likely a livelock")
            }
            SimError::RetriesExhausted { req, attempts } => {
                write!(f, "request {req} failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_node_and_cause() {
        assert_eq!(
            SimError::NotAHost(NodeId(4)).to_string(),
            "n4 is not a host node"
        );
        assert!(SimError::TcaNotActive(NodeId(2))
            .to_string()
            .contains("enable_active_tca"));
        let e = SimError::EventLimitExceeded {
            at: SimTime::from_ns(5),
            limit: 100,
        };
        assert!(e.to_string().contains("event limit"));
        assert!(e.to_string().contains("livelock"));
        let e = SimError::RetriesExhausted {
            req: 9,
            attempts: 3,
        };
        assert!(e.to_string().contains("9") && e.to_string().contains("3"));
    }
}
