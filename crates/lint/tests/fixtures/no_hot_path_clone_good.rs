//! Corrected twin: the handler shares the payload instead of cloning
//! the packet; the one justified clone (an `Rc` bump on the cold
//! fault-recovery path) carries the allow escape hatch so the cost is
//! visible at the call site.

impl Engine for DemoEngine {
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError> {
        match ev {
            Event::PacketDelivered { sw, pkt } => {
                self.pending.push(pkt.payload.share());
                self.dispatch(sw, pkt, t, bus);
            }
            Event::FaultRetry { sw, pkt } => {
                // Cold path, Rc bump only. asan-lint: allow(no-hot-path-clone)
                self.retry(sw, pkt.clone(), t, bus);
            }
            other => unreachable!("not a demo event: {other:?}"),
        }
        Ok(())
    }
}
