//! Rule `unused-allow`: a suppression that suppresses nothing is
//! itself a deny.
//!
//! `// asan-lint: allow(rule)` is the reviewed escape hatch: each one
//! is a claim, checked by a human, that the flagged line is safe. The
//! claim rots — the code moves, the rule gets smarter, the flagged
//! call is deleted — and the stale directive then *pre-silences*
//! whatever lands on that line next. This rule keeps the allow
//! inventory tight: the driver (which alone knows which directives
//! suppressed a finding this run) reports every directive whose rules
//! suppressed nothing, and `check --fix` deletes them. Directives
//! naming a rule that does not exist in the catalog are flagged too —
//! a typo in `allow(no-wall-clok)` silently suppresses nothing today
//! and confuses every future reader.
//!
//! Unlike every other rule, `unused-allow` findings cannot themselves
//! be allowed: the inventory can only shrink.

use super::CatalogEntry;

/// The rule's stable identifier. The driver emits findings under this
/// name; `fix::apply` deletes the directives it flags.
pub(crate) const UNUSED_ALLOW: &str = "unused-allow";

/// The catalog row. `unused-allow` has no `Rule`/`WorkspaceRule`
/// impl — suppression accounting lives in the driver — but it is a
/// first-class catalog member so `--list-rules` and the golden test
/// see it.
pub(crate) fn catalog_entry() -> CatalogEntry {
    CatalogEntry {
        name: UNUSED_ALLOW,
        describe: "deny `// asan-lint: allow(..)` directives that suppress no finding",
        scope: "every checked file",
        since_pr: 8,
        analysis: "workspace",
    }
}
