//! The rule catalog.
//!
//! Rules come in two shapes. **File rules** ([`Rule`]) are pure
//! functions over one lexed file — right for token-local properties
//! (a `HashMap` ident, a wall-clock path). **Workspace rules**
//! ([`WorkspaceRule`]) run over the phase-1 [`WorkspaceIndex`] and
//! check cross-file contracts — an `Event` variant constructed in one
//! crate must be matched by exactly one engine in another, a
//! `snapshot` writer must mirror its `restore` reader wherever that
//! reader lives. Scoping (which workspace paths a file rule patrols)
//! lives on the rule itself so the driver stays generic; `--scope-all`
//! overrides scoping, which is how the fixture tests exercise rules
//! outside their home crates.

use crate::diag::Diagnostic;
use crate::index::WorkspaceIndex;
use crate::lexer::{Kind, Lexed, Token};

mod ambient_randomness;
mod digest_completeness;
mod domain_isolation;
mod event_exhaustiveness;
mod event_flow_closure;
mod hot_path_clone;
mod lossy_cast;
mod snapshot_completeness;
mod snapshot_symmetry;
mod unit_mixing;
mod unordered_iteration;
mod unused_allow;
mod wall_clock;

/// Catalog version, bumped whenever a rule is added, removed, or
/// renamed. `1` was the eight-rule per-file era (PRs 3–6); `2` added
/// the five cross-file rules built on the workspace index.
pub const CATALOG_VERSION: u32 = 2;

/// One per-file invariant check.
pub trait Rule {
    /// Stable identifier, accepted by `// asan-lint: allow(<name>)`.
    fn name(&self) -> &'static str;
    /// One-line description for `--help` / docs.
    fn describe(&self) -> &'static str;
    /// Human-readable scope for the machine catalog.
    fn scope(&self) -> &'static str;
    /// The PR that introduced the rule (machine catalog).
    fn since_pr(&self) -> u32;
    /// Whether the rule patrols `rel_path` (workspace-relative, `/`
    /// separators). Ignored under `--scope-all`.
    fn applies(&self, rel_path: &str) -> bool;
    /// Emits diagnostics for one file.
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// One cross-file invariant check over the workspace index.
pub trait WorkspaceRule {
    /// Stable identifier, accepted by `// asan-lint: allow(<name>)`.
    fn name(&self) -> &'static str;
    /// One-line description for `--help` / docs.
    fn describe(&self) -> &'static str;
    /// Human-readable scope for the machine catalog.
    fn scope(&self) -> &'static str;
    /// The PR that introduced the rule (machine catalog).
    fn since_pr(&self) -> u32;
    /// Emits diagnostics over the whole index.
    fn check(&self, index: &WorkspaceIndex, out: &mut Vec<Diagnostic>);
}

/// Everything a file rule sees about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel_path: &'a str,
    /// The lexed source.
    pub lexed: &'a Lexed,
}

impl FileCtx<'_> {
    /// Shorthand for the token slice.
    pub fn tokens(&self) -> &[Token] {
        &self.lexed.tokens
    }
}

/// The per-file rule set, in catalog order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(unordered_iteration::NoUnorderedIteration),
        Box::new(wall_clock::NoWallClock),
        Box::new(ambient_randomness::NoAmbientRandomness),
        Box::new(lossy_cast::LossyModelCast),
        Box::new(event_exhaustiveness::EventExhaustiveness),
        Box::new(digest_completeness::DigestCompleteness),
        Box::new(hot_path_clone::NoHotPathClone),
        Box::new(snapshot_completeness::SnapshotCompleteness),
        Box::new(unit_mixing::UnitMixing),
    ]
}

/// The cross-file rule set, in catalog order. `unused-allow` is not
/// here: it is computed by the driver, which alone knows which
/// directives suppressed a finding (see `unused_allow`'s module docs).
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![
        Box::new(event_flow_closure::EventFlowClosure),
        Box::new(snapshot_symmetry::SnapshotSymmetry),
        Box::new(domain_isolation::DomainIsolation),
    ]
}

/// One row of the machine-readable rule catalog (`--list-rules`).
pub struct CatalogEntry {
    /// Stable rule identifier.
    pub name: &'static str,
    /// One-line description.
    pub describe: &'static str,
    /// Human-readable scope.
    pub scope: &'static str,
    /// PR that introduced the rule.
    pub since_pr: u32,
    /// `"file"` or `"workspace"` analysis.
    pub analysis: &'static str,
}

/// The full catalog in stable order: per-file rules, then workspace
/// rules, then the driver-computed `unused-allow`. The golden test in
/// `crates/lint/tests` pins this list, so any change to the rule set
/// is an explicit diff.
pub fn catalog() -> Vec<CatalogEntry> {
    let mut out: Vec<CatalogEntry> = all_rules()
        .iter()
        .map(|r| CatalogEntry {
            name: r.name(),
            describe: r.describe(),
            scope: r.scope(),
            since_pr: r.since_pr(),
            analysis: "file",
        })
        .collect();
    out.extend(workspace_rules().iter().map(|r| CatalogEntry {
        name: r.name(),
        describe: r.describe(),
        scope: r.scope(),
        since_pr: r.since_pr(),
        analysis: "workspace",
    }));
    out.push(unused_allow::catalog_entry());
    out
}

/// True when the token at `i` is an identifier with text `s`.
pub(crate) fn is_ident(toks: &[Token], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == Kind::Ident && t.text == s)
}

/// True when the token at `i` is the punctuation `s`.
pub(crate) fn is_punct(toks: &[Token], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == s)
}

/// Finds the matching close brace for the open brace at `open`
/// (which must be a `{`); returns its index, or `toks.len()` if
/// unbalanced.
pub(crate) fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}

/// Finds the matching close delimiter `c` for the opener `o` at
/// `open`; returns its index, or `toks.len()` if unbalanced.
pub(crate) fn matching_delim(toks: &[Token], open: usize, o: &str, c: &str) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len()
}

pub(crate) use unused_allow::UNUSED_ALLOW;
