//! The paper's contribution: the active I/O switch architecture and the
//! cluster simulator that evaluates it.
//!
//! *Active I/O Switches in System Area Networks* (Ming Hao & Mark
//! Heinrich, HPCA 2003) adds a small amount of hardware to a
//! conventional SAN switch — data buffers with per-line valid bits, a
//! buffer administrator, an address translation buffer, a jump table,
//! dispatch and send units, and 1–4 embedded 500 MHz processors — so the
//! switch can run application-level *handlers* on messages flowing
//! through it.
//!
//! * [`buffer`], [`dba`], [`atb`] — the on-chip staging hardware;
//! * [`handler`] — the stream-based programming model (§2);
//! * [`active`] — the assembled active switch and its dispatch unit (§3);
//! * [`error`] — structured [`SimError`]s for misuse and exhaustion;
//! * [`events`] — the typed event vocabulary and the shared bus the
//!   subsystem engines communicate through;
//! * [`engines`] — the four subsystem engines (host, fabric, dispatch,
//!   storage) the simulation decomposes into;
//! * [`metrics`] — the observability probe the engines report spans to,
//!   and the latency-histogram / phase-breakdown [`MetricsReport`];
//! * [`placement`] — handler placement on multi-switch fabrics: the
//!   [`HandlerPlacement`] policies and the [`AggregationTree`] they
//!   produce over a [`asan_net::TopoMap`];
//! * [`cluster`] — the whole-system simulator (§4): the thin composer
//!   that routes events to the engines and assembles the paper's
//!   metrics (execution time, host utilization, host I/O traffic,
//!   busy/stall/idle breakdowns).
//!
//! # Example
//!
//! ```
//! use asan_core::active::{ActiveSwitch, ActiveSwitchConfig};
//! use asan_net::NodeId;
//!
//! let sw = ActiveSwitch::new(NodeId(0), ActiveSwitchConfig::paper());
//! assert_eq!(sw.config().num_cpus, 1);
//! ```

pub mod active;
pub mod atb;
pub mod buffer;
pub mod cluster;
pub mod dba;
pub mod engines;
pub mod error;
pub mod events;
pub mod handler;
pub mod metrics;
pub mod placement;
pub mod stats;

pub use active::{ActiveSwitch, ActiveSwitchConfig, DispatchResult};
pub use atb::Atb;
pub use buffer::{BufId, DataBuffer, BUFFER_BYTES};
pub use dba::BufferAdmin;
pub use error::SimError;
pub use handler::{Handler, HandlerCtx, MsgInfo, OutMsg, SwitchIoReq};
pub use metrics::{MetricsReport, PhaseBreakdown, Probe};
pub use placement::{aggregation_tree, AggNode, AggregationTree, HandlerPlacement};
