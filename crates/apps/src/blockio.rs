//! Windowed block reading shared by the benchmarks' host programs.
//!
//! The paper's `+pref` configurations keep **two** outstanding I/O
//! requests ("if two outstanding I/O requests are issued", §5);
//! the plain configurations read synchronously, one block at a time.
//! [`BlockReader`] implements that window over the cluster's
//! asynchronous read API.

use std::collections::BTreeMap;

use asan_core::cluster::{Dest, FileId, HostCtx, ReqId};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

/// A sequential block-read plan over one file.
#[derive(Debug, Clone, Copy)]
pub struct BlockPlan {
    /// File to read.
    pub file: FileId,
    /// Total bytes to read (from offset 0).
    pub total: u64,
    /// Request size (64 KB for most benchmarks, 32 KB for Grep).
    pub block: u64,
    /// Window size: 1 (synchronous) or 2 (`+pref`).
    pub outstanding: u64,
    /// Delivery destination of every block.
    pub dest: Dest,
}

/// Tracks the outstanding window and hands back completed ranges.
#[derive(Debug)]
pub struct BlockReader {
    plan: BlockPlan, // asan-lint: allow(snapshot-completeness)
    next_offset: u64,
    pending: BTreeMap<ReqId, (u64, u64)>,
    completed_bytes: u64,
}

impl BlockReader {
    /// Creates a reader; call [`start`](BlockReader::start) to issue the
    /// initial window.
    pub fn new(plan: BlockPlan) -> Self {
        assert!(plan.block > 0 && plan.total > 0, "empty plan");
        BlockReader {
            plan,
            next_offset: 0,
            pending: BTreeMap::new(),
            completed_bytes: 0,
        }
    }

    /// Issues the initial window of requests.
    pub fn start(&mut self, ctx: &mut HostCtx<'_>) {
        for _ in 0..self.plan.outstanding {
            self.issue_next(ctx);
        }
    }

    fn issue_next(&mut self, ctx: &mut HostCtx<'_>) {
        if self.next_offset >= self.plan.total {
            return;
        }
        let len = self.plan.block.min(self.plan.total - self.next_offset);
        let req = ctx.read_file(self.plan.file, self.next_offset, len, self.plan.dest);
        self.pending.insert(req, (self.next_offset, len));
        self.next_offset += len;
    }

    /// Handles a completion: returns the `(offset, len)` that finished.
    /// Returns `None` for requests not issued by this reader.
    ///
    /// With a window of 2+ (`+pref`), the next request is issued
    /// immediately — *before* the caller processes the block — keeping
    /// two requests outstanding. With a window of 1 (the paper's
    /// synchronous `normal` case), nothing is issued here: the caller
    /// must call [`refill`](BlockReader::refill) *after* processing the
    /// block, reproducing the read-process-read serialization whose
    /// I/O stall time the paper's figures show.
    pub fn on_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) -> Option<(u64, u64)> {
        let range = self.pending.remove(&req)?;
        self.completed_bytes += range.1;
        if self.plan.outstanding > 1 {
            self.issue_next(ctx);
        }
        Some(range)
    }

    /// Issues the next request after the caller finished processing the
    /// previous block (no-op when the window is already full or the
    /// plan is exhausted).
    pub fn refill(&mut self, ctx: &mut HostCtx<'_>) {
        while (self.pending.len() as u64) < self.plan.outstanding {
            if self.next_offset >= self.plan.total {
                return;
            }
            self.issue_next(ctx);
        }
    }

    /// Whether every byte of the plan has completed.
    pub fn done(&self) -> bool {
        self.completed_bytes >= self.plan.total
    }

    /// Bytes completed so far.
    pub fn completed_bytes(&self) -> u64 {
        self.completed_bytes
    }

    /// Serializes the reader's dynamic state (cursor, outstanding
    /// window, completed-byte count). The plan is static and rebuilt by
    /// the caller.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.next_offset);
        w.usize(self.pending.len());
        for (req, &(off, len)) in &self.pending {
            w.u64(req.0);
            w.u64(off);
            w.u64(len);
        }
        w.u64(self.completed_bytes);
    }

    /// Restores the dynamic state written by
    /// [`snapshot`](BlockReader::snapshot) into this reader.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.next_offset = r.u64()?;
        let n = r.usize()?;
        self.pending.clear();
        for _ in 0..n {
            let req = ReqId(r.u64()?);
            let off = r.u64()?;
            let len = r.u64()?;
            self.pending.insert(req, (off, len));
        }
        self.completed_bytes = r.u64()?;
        Ok(())
    }
}
