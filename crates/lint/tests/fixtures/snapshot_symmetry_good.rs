//! Corrected twin: the restore call tape mirrors the snapshot call
//! tape exactly — section, u32, u64 — so the positional byte codec
//! round-trips.

pub struct LinkState {
    pub seq: u32,
    pub credits: u64,
}

impl LinkState {
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.section("link");
        w.u32(self.seq);
        w.u64(self.credits);
    }

    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("link")?;
        self.seq = r.u32()?;
        self.credits = r.u64()?;
        Ok(())
    }
}
