//! The typed event vocabulary and the shared bus the subsystem engines
//! communicate through.
//!
//! Every state change in the cluster simulation is an [`Event`] popped
//! from the scheduler and routed to exactly one engine
//! (see [`crate::engines`]). Engines never call each other: anything
//! that crosses a subsystem boundary goes back through the
//! [`EventBus`] as a freshly scheduled event, which keeps the causal
//! order explicit and the simulation deterministic (ties in time break
//! by push order).
//!
//! The bus itself is a per-event bundle of the *shared* services —
//! scheduler, fabric, fault injector, in-flight request table, file
//! store, configuration — while each engine owns its subsystem-private
//! state (host CPUs, switch engines, disk arrays, …).

use std::collections::{BTreeMap, BTreeSet};

use asan_net::topo::NodeKind;
use asan_net::{Bytes, Fabric, HandlerId, NodeId};
use asan_sim::faults::FaultInjector;
use asan_sim::sched::{Scheduler, Traceable};
use asan_sim::{SimDuration, SimTime};

use crate::cluster::ClusterConfig;
use crate::handler::SwitchIoReq;
use crate::metrics::Probe;

/// Identifies an I/O request issued by a host program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// Identifies a stored file (placed on one TCA's disk array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub usize);

/// Where a read's data should be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// DMA into the issuing host's memory at `addr` (the normal path).
    HostBuf {
        /// Physical base address of the host buffer.
        addr: u64,
    },
    /// Stream to `node` as active messages mapped at `base_addr`,
    /// invoking `handler` per packet (the active path: the host "maps
    /// the file into memory" on the switch, §2.2).
    Mapped {
        /// Destination node (an active switch, usually).
        node: NodeId,
        /// Handler invoked per arriving packet.
        handler: HandlerId,
        /// Base of the mapped address window.
        base_addr: u32,
    },
}

/// A message as seen by a host program.
#[derive(Debug, Clone)]
pub struct HostMsg {
    /// Sending node.
    pub src: NodeId,
    /// Active-handler field, if the sender set one (lets programs
    /// demultiplex flows).
    pub handler: Option<HandlerId>,
    /// Address field of the header.
    pub addr: u32,
    /// Real payload bytes (a cheap shared view — call
    /// [`asan_net::Bytes::to_vec`] for an owned copy).
    pub data: Bytes,
    /// Flow sequence number.
    pub seq: u32,
}

/// Metadata of a stored file.
#[derive(Debug, Clone, Copy)]
pub struct FileMeta {
    /// The TCA whose disks hold the file.
    pub tca: NodeId,
    /// File length in bytes.
    pub len: u64,
    /// Byte offset of the file on the array.
    pub disk_offset: u64,
}

/// The cluster's stored files: metadata plus the real bytes.
#[derive(Debug, Default)]
pub struct FileStore {
    pub(crate) meta: Vec<FileMeta>,
    /// Interned file contents: per-packet payloads are O(1) views.
    pub(crate) data: Vec<Bytes>,
}

impl FileStore {
    /// File metadata, indexed by [`FileId`].
    pub fn meta(&self) -> &[FileMeta] {
        &self.meta
    }

    /// The stored bytes of `file`.
    pub fn data(&self, file: FileId) -> &[u8] {
        &self.data[file.0]
    }

    /// Appends a file, returning its ID.
    pub(crate) fn push(&mut self, meta: FileMeta, data: Vec<u8>) -> FileId {
        let id = FileId(self.meta.len());
        self.meta.push(meta);
        self.data.push(Bytes::from(data));
        id
    }
}

/// Shared in-flight state of one host-issued I/O request.
#[derive(Debug)]
pub(crate) struct IoState {
    pub(crate) host: NodeId,
    pub(crate) dest: Dest,
    pub(crate) remaining: usize,
    pub(crate) bytes: u64,
    /// The TCA serving this request.
    pub(crate) tca: NodeId,
    /// The file being read.
    pub(crate) file: FileId,
    /// File-relative byte offset of the read.
    pub(crate) offset: u64,
    /// Per-sequence-number delivery flags (populated when the storage
    /// read schedule is known; only under an armed fault plan).
    pub(crate) got: Vec<bool>,
    /// Per-sequence-number payload lengths, for buffer-cache re-reads
    /// on retransmission.
    pub(crate) lens: Vec<u32>,
    /// First fault category seen per sequence number (0 = none,
    /// 1 = corrupt, 2 = drop) — attributes eventual recovery.
    pub(crate) faulted: Vec<u8>,
    /// End-to-end timeout attempts so far.
    pub(crate) attempt: u32,
    /// Current (exponentially backed-off) timeout.
    pub(crate) timeout: SimDuration,
}

/// Per-request reorder buffer for mapped flows under fault injection:
/// a stream handler must see its packets in sequence order, so late
/// retransmits park arrivals here until the gap fills.
#[derive(Debug, Default)]
pub(crate) struct FlowState {
    pub(crate) next_seq: u32,
    pub(crate) buffered: BTreeMap<u32, asan_net::Packet>,
}

/// One scheduled occurrence in the cluster simulation.
///
/// Each variant is owned by exactly one subsystem engine — see
/// [`crate::engines::route`] for the mapping.
#[derive(Debug)]
pub enum Event {
    /// A host program's `on_start` hook fires.
    Start(NodeId),
    /// A whole packet finished arriving at a host.
    PacketToHost {
        /// Receiving host.
        host: NodeId,
        /// The arrived message.
        msg: HostMsg,
        /// The I/O request this packet belongs to, if it is request
        /// data (DMA'd without a per-packet CPU cost).
        io_req: Option<ReqId>,
    },
    /// An active packet's header reached a switch (payload window given).
    /// `io_req` is set for mapped storage data under a fault plan, which
    /// is tracked per sequence number and delivered in order.
    PacketToSwitch {
        /// The switch (or active TCA) engine dispatching the packet.
        sw: NodeId,
        /// The packet itself.
        pkt: asan_net::Packet,
        /// When the payload starts streaming into the data buffer.
        payload_start: SimTime,
        /// When the payload has fully arrived.
        payload_end: SimTime,
        /// Set for per-sequence tracked storage data under faults.
        io_req: Option<ReqId>,
    },
    /// A packet for a trapped handler reached the fallback host and is
    /// dispatched on its software engine.
    FallbackDispatch {
        /// The switch the handler originally lived on.
        sw: NodeId,
        /// The forwarded packet.
        pkt: asan_net::Packet,
    },
    /// Raw data arrived at a TCA (archive-write stream).
    PacketToTca {
        /// The receiving TCA.
        tca: NodeId,
        /// Payload bytes arrived.
        bytes: u64,
    },
    /// A host-issued I/O request's control packet reached its TCA (or a
    /// soft-errored disk attempt is being retried).
    IoRequestAtTca {
        /// The serving TCA.
        tca: NodeId,
        /// The request.
        req: ReqId,
        /// File to read.
        file: FileId,
        /// File-relative offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
        /// Delivery destination.
        dest: Dest,
        /// Disk retry attempt (0 = first try).
        attempt: u32,
    },
    /// A switch-initiated I/O request reached its TCA.
    SwitchIoAtTca {
        /// The request a handler posted.
        r: SwitchIoReq,
        /// Disk retry attempt (0 = first try).
        attempt: u32,
    },
    /// All data of `req` delivered; notify the issuing host.
    IoComplete {
        /// The issuing host.
        host: NodeId,
        /// The completed request.
        req: ReqId,
    },
    /// The TCA finished injecting a mapped read's data: send the small
    /// completion notification to the issuing host *now* (deferred so
    /// the fabric only ever sees causally-ordered sends per link).
    CompletionNotice {
        /// The serving TCA.
        tca: NodeId,
        /// The issuing host.
        host: NodeId,
        /// The completed request.
        req: ReqId,
    },
    /// One MTU packet of a storage read becomes ready at its TCA: inject
    /// it into the fabric *now*. Deferring each injection to its ready
    /// time keeps every link's sends causally ordered, so small control
    /// messages interleave with bulk data instead of queueing behind
    /// pre-booked future transfers.
    InjectIoPacket {
        /// Injecting node (the TCA).
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Active handler to invoke, if any.
        handler: Option<HandlerId>,
        /// Address field of the header.
        addr: u32,
        /// Payload bytes (shared view into the file store).
        payload: Bytes,
        /// Flow sequence number.
        seq: u32,
        /// The request this packet belongs to, when tracked.
        io_req: Option<ReqId>,
    },
    /// Retransmit packet `seq` of `req` from the TCA's buffer cache
    /// (NAK- or timeout-driven).
    Retransmit {
        /// The request.
        req: ReqId,
        /// The missing sequence number.
        seq: u32,
    },
    /// End-to-end watchdog for `req`; stale timers carry an old
    /// `attempt` and are ignored.
    RequestTimeout {
        /// The guarded request.
        req: ReqId,
        /// The attempt this timer was armed for.
        attempt: u32,
    },
}

impl Traceable for Event {
    fn trace_label(&self) -> &'static str {
        match self {
            Event::Start(_) => "Start",
            Event::PacketToHost { .. } => "PacketToHost",
            Event::PacketToSwitch { .. } => "PacketToSwitch",
            Event::FallbackDispatch { .. } => "FallbackDispatch",
            Event::PacketToTca { .. } => "PacketToTca",
            Event::IoRequestAtTca { .. } => "IoRequestAtTca",
            Event::SwitchIoAtTca { .. } => "SwitchIoAtTca",
            Event::IoComplete { .. } => "IoComplete",
            Event::CompletionNotice { .. } => "CompletionNotice",
            Event::InjectIoPacket { .. } => "InjectIoPacket",
            Event::Retransmit { .. } => "Retransmit",
            Event::RequestTimeout { .. } => "RequestTimeout",
        }
    }
}

/// The services shared by every engine, lent out for the duration of
/// one event.
///
/// [`crate::cluster::Cluster`] assembles a fresh bus from its own
/// fields for each popped event and hands it to the owning engine's
/// [`crate::engines::Engine::on_event`]. Engines mutate shared state
/// through the bus and schedule follow-up events with [`EventBus::push`];
/// subsystem-private state stays inside the engines themselves.
#[derive(Debug)]
pub struct EventBus<'a> {
    /// The scheduler (push side of the event loop).
    pub sched: &'a mut Scheduler<Event>,
    /// The switching fabric (wire timing, link accounting, routing).
    pub fabric: &'a mut Fabric,
    /// The armed fault injector, if the run has a fault plan.
    pub injector: &'a mut Option<FaultInjector>,
    /// In-flight host-issued I/O requests, shared across engines
    /// (ordered so any future iteration is deterministic).
    pub(crate) reqs: &'a mut BTreeMap<ReqId, IoState>,
    /// The stored files (metadata + bytes).
    pub files: &'a mut FileStore,
    /// The cluster configuration.
    pub cfg: &'a ClusterConfig,
    /// Nodes whose TCA has an active engine: handler-addressed packets
    /// for these nodes route to the dispatch subsystem instead of the
    /// raw archive-write path.
    pub active_tca_nodes: &'a BTreeSet<NodeId>,
    /// The observability probe: engines report timed spans (packet,
    /// handler, disk, buffer) here.
    pub probe: &'a mut Probe,
}

impl EventBus<'_> {
    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        self.sched.push(time, event);
    }

    /// Injects `wire_bytes` into the fabric from `src` toward `dst` and
    /// records the packet's end-to-end span (injection → last byte at
    /// the destination) with the probe. Engines use this for every
    /// *delivered* packet; sends that a fault swallows (drops, corrupt
    /// payloads discarded by ICRC) call [`Fabric::transmit`] directly so
    /// the latency distribution only contains real deliveries.
    pub(crate) fn transmit(
        &mut self,
        wire_bytes: u64,
        src: NodeId,
        dst: NodeId,
        ready: SimTime,
    ) -> asan_net::Delivery {
        let d = self.fabric.transmit(wire_bytes, src, dst, ready);
        self.probe.packet(dst, ready, d.arrival, wire_bytes);
        d
    }

    /// Notes a transparently recovered fault of category `cat`
    /// (1 = corrupt, 2 = drop): the faulted packet's data has now
    /// arrived via retransmission.
    pub(crate) fn note_recovered(&mut self, cat: u8) {
        if let Some(inj) = self.injector.as_mut() {
            match cat {
                1 => inj.stats.packet_corrupt.recovered += 1,
                2 => inj.stats.packet_drop.recovered += 1,
                _ => {}
            }
        }
    }

    /// Records the first fault category seen for `seq` of `req`, for
    /// recovery attribution.
    pub(crate) fn mark_faulted(&mut self, req: ReqId, seq: u32, cat: u8) {
        if let Some(st) = self.reqs.get_mut(&req) {
            if let Some(f) = st.faulted.get_mut(seq as usize) {
                if *f == 0 {
                    *f = cat;
                }
            }
        }
    }

    /// Schedules the delivery events for one packet already injected
    /// into the fabric: the receiving node's kind decides which
    /// subsystem sees it next.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn deliver(
        &mut self,
        src: NodeId,
        dst: NodeId,
        handler: Option<HandlerId>,
        addr: u32,
        data: Bytes,
        seq: u32,
        d: asan_net::Delivery,
        io_req: Option<ReqId>,
    ) {
        match self.fabric.kind(dst) {
            NodeKind::Host => {
                self.push(
                    d.arrival,
                    Event::PacketToHost {
                        host: dst,
                        msg: HostMsg {
                            src,
                            handler,
                            addr,
                            data,
                            seq,
                        },
                        io_req,
                    },
                );
            }
            NodeKind::Switch => {
                let h = handler.expect("messages to a switch must be active");
                self.push_switch_packet(src, dst, h, addr, data, seq, d, io_req);
            }
            NodeKind::Tca => {
                if let Some(h) = handler.filter(|_| self.active_tca_nodes.contains(&dst)) {
                    self.push_switch_packet(src, dst, h, addr, data, seq, d, io_req);
                } else {
                    self.push(
                        d.arrival,
                        Event::PacketToTca {
                            tca: dst,
                            bytes: data.len() as u64,
                        },
                    );
                }
            }
        }
    }

    /// Schedules the [`Event::PacketToSwitch`] for one active packet.
    #[allow(clippy::too_many_arguments)]
    fn push_switch_packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        h: HandlerId,
        addr: u32,
        data: Bytes,
        seq: u32,
        d: asan_net::Delivery,
        io_req: Option<ReqId>,
    ) {
        let len = data.len();
        let pkt = asan_net::Packet::new(
            asan_net::Header {
                src,
                dst,
                len: u16::try_from(len).expect("payload bounded by MTU"),
                handler: Some(h),
                addr,
                seq,
            },
            data,
        );
        if io_req.is_some() {
            // Faultable storage data: the engine store-and-forwards
            // (full payload verified by ICRC before dispatch), so
            // everything happens at arrival.
            self.push(
                d.arrival,
                Event::PacketToSwitch {
                    sw: dst,
                    pkt,
                    payload_start: d.arrival,
                    payload_end: d.arrival,
                    io_req,
                },
            );
        } else {
            self.push(
                d.header_at,
                Event::PacketToSwitch {
                    sw: dst,
                    pkt,
                    payload_start: d.payload_start,
                    payload_end: d.arrival,
                    io_req: None,
                },
            );
        }
    }
}
