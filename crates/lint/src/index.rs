//! Phase 1 of the two-phase analyzer: the **workspace index**.
//!
//! The original `asan-lint` rules are pure functions over one lexed
//! file, which is exactly right for token-local properties (a
//! `HashMap` ident, a wall-clock path) and exactly wrong for the
//! contracts the parallel-core refactor needs: an `Event` variant
//! emitted in one crate and matched in another, a `snapshot` writer in
//! one file paired with a `restore` reader in a second. This module
//! walks every lexed file once and extracts the item structure those
//! cross-file rules need:
//!
//! - `struct` definitions with named fields and the identifiers in
//!   each field's type (`[`StructDef`]`),
//! - `enum` definitions with their variants ([`EnumDef`]),
//! - `fn` items with the impl/trait type they belong to and the token
//!   span of their body ([`FnDef`]),
//!
//! keyed per file ([`FileIndex`]) and aggregated workspace-wide
//! ([`WorkspaceIndex`]). Token spans index into the file's own
//! [`Lexed::tokens`], so a workspace rule can drop back to token level
//! wherever the item skeleton is not enough (e.g. classifying an
//! `Event::X` reference as match-arm pattern vs construction via
//! [`pattern_spans`]).

use std::collections::BTreeMap;
use std::ops::Range;

use crate::lexer::{Kind, Lexed, Token};

/// One named struct field.
#[derive(Debug)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
    /// Identifiers appearing in the field's type (`Vec<Option<Rc<T>>>`
    /// → `["Vec", "Option", "Rc", "T"]`).
    pub ty: Vec<String>,
}

/// One `struct Name { ... }` definition (named fields only; tuple and
/// unit structs index with an empty field list).
#[derive(Debug)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
    /// Named fields in declaration order.
    pub fields: Vec<FieldDef>,
    /// Identifiers in tuple-struct element types (empty for named /
    /// unit structs); kept so reachability can see through newtypes.
    pub tuple_ty: Vec<String>,
}

/// One enum variant.
#[derive(Debug)]
pub struct VariantDef {
    /// Variant name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
}

/// One `enum Name { ... }` definition.
#[derive(Debug)]
pub struct EnumDef {
    /// Type name.
    pub name: String,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
    /// Variants in declaration order.
    pub variants: Vec<VariantDef>,
}

/// One `fn` item with a body.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// The `impl`/`trait` type the function belongs to (`impl Foo`,
    /// `impl Trait for Foo` → `Foo`; trait default methods carry the
    /// trait's name); `None` for free functions.
    pub impl_ty: Option<String>,
    /// 1-based declaration line.
    pub line: u32,
    /// 1-based declaration column.
    pub col: u32,
    /// Token span of the body *including* both braces, indexing into
    /// the owning file's `Lexed::tokens`.
    pub body: Range<usize>,
}

/// Everything the index knows about one file.
#[derive(Debug)]
pub struct FileIndex {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// The lexed source (tokens + allow directives).
    pub lexed: Lexed,
    /// Struct definitions in source order.
    pub structs: Vec<StructDef>,
    /// Enum definitions in source order.
    pub enums: Vec<EnumDef>,
    /// Function items in source order.
    pub fns: Vec<FnDef>,
}

/// The whole workspace, indexed. Files are sorted by `rel_path`, so
/// every cross-file walk is deterministic.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Per-file indexes, sorted by workspace-relative path.
    pub files: Vec<FileIndex>,
}

impl WorkspaceIndex {
    /// Builds the index from already-lexed files. `files` must be
    /// sorted by relative path (the driver sorts its walk).
    pub fn build(files: Vec<(String, Lexed)>) -> Self {
        let files = files
            .into_iter()
            .map(|(rel_path, lexed)| {
                let mut fi = FileIndex {
                    rel_path,
                    lexed,
                    structs: Vec::new(),
                    enums: Vec::new(),
                    fns: Vec::new(),
                };
                let end = fi.lexed.tokens.len();
                let mut items = Items::default();
                scan_items(&fi.lexed.tokens, 0..end, None, &mut items);
                fi.structs = items.structs;
                fi.enums = items.enums;
                fi.fns = items.fns;
                fi
            })
            .collect();
        WorkspaceIndex { files }
    }

    /// All struct definitions, keyed by name. A name defined in
    /// several files maps to every definition (file index, struct
    /// ref).
    pub fn structs_by_name(&self) -> BTreeMap<&str, Vec<(usize, &StructDef)>> {
        let mut out: BTreeMap<&str, Vec<(usize, &StructDef)>> = BTreeMap::new();
        for (fi, file) in self.files.iter().enumerate() {
            for s in &file.structs {
                out.entry(s.name.as_str()).or_default().push((fi, s));
            }
        }
        out
    }
}

#[derive(Default)]
struct Items {
    structs: Vec<StructDef>,
    enums: Vec<EnumDef>,
    fns: Vec<FnDef>,
}

/// Walks one token range collecting items; recurses into `mod`,
/// `impl`, and `trait` bodies (with the impl/trait target as the fn
/// context) but not into fn bodies — a nested helper fn is rare and a
/// closure's tokens belong to the enclosing fn's span.
fn scan_items(toks: &[Token], range: Range<usize>, impl_ty: Option<&str>, out: &mut Items) {
    let mut i = range.start;
    let end = range.end;
    while i < end {
        let t = &toks[i];
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "struct" => i = parse_struct(toks, i, end, out),
            "enum" => i = parse_enum(toks, i, end, out),
            "fn" => i = parse_fn(toks, i, end, impl_ty, out),
            "impl" | "trait" => {
                let Some(open) = find_punct(toks, i + 1, end, "{") else {
                    return;
                };
                let target = if t.text == "impl" {
                    impl_target(&toks[i + 1..open])
                } else {
                    // `trait Name { ... }` — default method bodies
                    // belong to the trait's name.
                    toks.get(i + 1)
                        .filter(|t| t.kind == Kind::Ident)
                        .map(|t| t.text.clone())
                };
                let close = matching_brace(toks, open).min(end);
                scan_items(toks, open + 1..close, target.as_deref(), out);
                i = close + 1;
            }
            "mod" => {
                // `mod name { ... }` — recurse; `mod name;` — skip.
                let Some(stop) = (i + 1..end).find(|&j| matches!(toks[j].text.as_str(), "{" | ";"))
                else {
                    return;
                };
                if toks[stop].text == "{" {
                    let close = matching_brace(toks, stop).min(end);
                    scan_items(toks, stop + 1..close, None, out);
                    i = close + 1;
                } else {
                    i = stop + 1;
                }
            }
            _ => i += 1,
        }
    }
}

fn parse_struct(toks: &[Token], kw: usize, end: usize, out: &mut Items) -> usize {
    let Some(name) = toks.get(kw + 1).filter(|t| t.kind == Kind::Ident) else {
        return kw + 1;
    };
    // Find the body opener: `{` named, `(` tuple, `;` unit. Generic
    // parameter lists (`<...>`) are skipped by depth tracking so a
    // `Foo<T: Into<U>>` bound cannot end the search early.
    let mut j = kw + 2;
    let mut depth = 0i32;
    while j < end {
        match toks[j].text.as_str() {
            "<" => depth += 1,
            ">" => depth -= 1,
            "{" | "(" | ";" if depth <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    match toks.get(j).map(|t| t.text.as_str()) {
        Some("{") => {
            let close = matching_brace(toks, j).min(end);
            out.structs.push(StructDef {
                name: name.text.clone(),
                line: name.line,
                col: name.col,
                fields: collect_fields(&toks[j + 1..close]),
                tuple_ty: Vec::new(),
            });
            close + 1
        }
        Some("(") => {
            // Tuple struct: record the element-type identifiers so
            // reachability can see through newtypes.
            let close = matching_delim(toks, j, "(", ")").min(end);
            let tuple_ty = toks[j + 1..close]
                .iter()
                .filter(|t| t.kind == Kind::Ident && t.text != "pub" && t.text != "crate")
                .map(|t| t.text.clone())
                .collect();
            out.structs.push(StructDef {
                name: name.text.clone(),
                line: name.line,
                col: name.col,
                fields: Vec::new(),
                tuple_ty,
            });
            close + 1
        }
        _ => {
            out.structs.push(StructDef {
                name: name.text.clone(),
                line: name.line,
                col: name.col,
                fields: Vec::new(),
                tuple_ty: Vec::new(),
            });
            j + 1
        }
    }
}

fn parse_enum(toks: &[Token], kw: usize, end: usize, out: &mut Items) -> usize {
    let Some(name) = toks.get(kw + 1).filter(|t| t.kind == Kind::Ident) else {
        return kw + 1;
    };
    let Some(open) = find_punct(toks, kw + 2, end, "{") else {
        return kw + 2;
    };
    let close = matching_brace(toks, open).min(end);
    let body = &toks[open + 1..close];
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            i += 1;
            continue;
        }
        // A variant is a depth-0 identifier followed by `,`, `(`, `{`,
        // `=`, or the end of the body (attributes sit inside `[...]`,
        // so their identifiers never appear at depth 0).
        if depth == 0 && t.kind == Kind::Ident {
            let next = body.get(i + 1).map(|t| t.text.as_str());
            if matches!(next, None | Some("," | "(" | "{" | "=")) {
                variants.push(VariantDef {
                    name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
        i += 1;
    }
    out.enums.push(EnumDef {
        name: name.text.clone(),
        line: name.line,
        col: name.col,
        variants,
    });
    close + 1
}

fn parse_fn(
    toks: &[Token],
    kw: usize,
    end: usize,
    impl_ty: Option<&str>,
    out: &mut Items,
) -> usize {
    let Some(name) = toks.get(kw + 1).filter(|t| t.kind == Kind::Ident) else {
        return kw + 1;
    };
    // The body opens at the first `{`; a bodyless trait-method
    // declaration ends at `;` first.
    let Some(stop) = (kw + 2..end).find(|&j| matches!(toks[j].text.as_str(), "{" | ";")) else {
        return kw + 2;
    };
    if toks[stop].text == ";" {
        return stop + 1;
    }
    let close = matching_brace(toks, stop).min(end);
    out.fns.push(FnDef {
        name: name.text.clone(),
        impl_ty: impl_ty.map(str::to_string),
        line: name.line,
        col: name.col,
        body: stop..(close + 1).min(end),
    });
    close + 1
}

/// Splits one struct body into named fields with type identifiers.
fn collect_fields(body: &[Token]) -> Vec<FieldDef> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut i = 0;
    while i < body.len() {
        let t = &body[i];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" | "<" => depth += 1,
                "}" | ")" | "]" | ">" => depth -= 1,
                _ => {}
            }
            i += 1;
            continue;
        }
        if depth == 0 && t.kind == Kind::Ident && is_punct(body, i + 1, ":") {
            let name = t.text.clone();
            let (line, col) = (t.line, t.col);
            let mut ty = Vec::new();
            let mut j = i + 2;
            let mut tdepth = 0i32;
            while j < body.len() {
                let tt = &body[j];
                if tt.kind == Kind::Punct {
                    match tt.text.as_str() {
                        "<" | "(" | "[" => tdepth += 1,
                        ">" | ")" | "]" => tdepth -= 1,
                        "," if tdepth <= 0 => break,
                        _ => {}
                    }
                } else if tt.kind == Kind::Ident {
                    ty.push(tt.text.clone());
                }
                j += 1;
            }
            fields.push(FieldDef {
                name,
                line,
                col,
                ty,
            });
            i = j;
            continue;
        }
        i += 1;
    }
    fields
}

/// The type an `impl` header targets: the first identifier after `for`
/// (trait impls), else the first identifier outside the generic
/// parameter list (inherent impls).
fn impl_target(header: &[Token]) -> Option<String> {
    let mut depth = 0i32;
    let mut first_ty: Option<&Token> = None;
    let mut after_for = false;
    for t in header {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => depth -= 1,
                _ => {}
            }
            continue;
        }
        if t.kind != Kind::Ident || depth > 0 {
            continue;
        }
        if t.text == "for" {
            after_for = true;
            continue;
        }
        if after_for {
            return Some(t.text.clone());
        }
        if first_ty.is_none() && t.text != "dyn" {
            first_ty = Some(t);
        }
    }
    first_ty.map(|t| t.text.clone())
}

/// Token spans (into `toks`) of every match-arm **pattern** inside
/// `range`: the tokens between an arm boundary and its `=>`, for every
/// `match` in the range, nested matches included. An `Event::X`
/// reference inside one of these spans is being *matched*; anywhere
/// else it is being *constructed* (or is a path call like
/// `Event::restore`, which the caller filters by case).
pub fn pattern_spans(toks: &[Token], range: Range<usize>) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut i = range.start;
    while i < range.end {
        if !(toks[i].kind == Kind::Ident && toks[i].text == "match") {
            i += 1;
            continue;
        }
        let Some(open) = find_punct(toks, i + 1, range.end, "{") else {
            break;
        };
        let close = matching_brace(toks, open).min(range.end);
        // Walk top-level arms of this match body; the scan loop will
        // revisit nested matches inside arm bodies on its own.
        let mut depth = 0i32;
        let mut arm_start = open + 1;
        let mut j = open + 1;
        while j < close {
            let t = &toks[j];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "{" | "(" | "[" => depth += 1,
                    "}" | ")" | "]" => depth -= 1,
                    "," if depth == 0 => arm_start = j + 1,
                    "=>" if depth == 0 => {
                        spans.push(arm_start..j);
                        // Skip the arm body so its `,` separators and
                        // expressions are not mistaken for patterns.
                        j = arm_body_end(toks, j + 1, close);
                        arm_start = j;
                        continue;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        i = open + 1;
    }
    spans
}

/// Index just past one arm's body starting at `start`: a block arm
/// ends at its close brace, an expression arm at the next top-level
/// comma (or the end of the match).
fn arm_body_end(toks: &[Token], start: usize, close: usize) -> usize {
    if toks
        .get(start)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == "{")
    {
        return (matching_brace(toks, start) + 1).min(close);
    }
    let mut depth = 0i32;
    let mut j = start;
    while j < close {
        let t = &toks[j];
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" | "(" | "[" => depth += 1,
                "}" | ")" | "]" => depth -= 1,
                "," if depth == 0 => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    close
}

fn find_punct(toks: &[Token], from: usize, end: usize, s: &str) -> Option<usize> {
    (from..end).find(|&j| toks[j].kind == Kind::Punct && toks[j].text == s)
}

fn is_punct(toks: &[Token], i: usize, s: &str) -> bool {
    toks.get(i)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == s)
}

/// Matching close brace for the `{` at `open` (or `toks.len()`).
fn matching_brace(toks: &[Token], open: usize) -> usize {
    matching_delim(toks, open, "{", "}")
}

fn matching_delim(toks: &[Token], open: usize, o: &str, c: &str) -> usize {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            if t.text == o {
                depth += 1;
            } else if t.text == c {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index_one(src: &str) -> FileIndex {
        let mut wi = WorkspaceIndex::build(vec![("t.rs".to_string(), lex(src))]);
        wi.files.remove(0)
    }

    #[test]
    fn structs_enums_fns_are_indexed() {
        let src = "
            pub struct A { pub x: u64, y: Vec<Rc<B>> }
            struct Unit;
            struct Tup(pub Rc<C>);
            enum Event { Start(u32), Stop { t: u64 }, Tick }
            impl A {
                fn on_event(&mut self) { let _ = 1; }
            }
            impl Snap for A {
                fn snapshot(&self, w: &mut W) { w.u64(self.x); }
            }
            fn free() {}
        ";
        let fi = index_one(src);
        assert_eq!(fi.structs.len(), 3);
        assert_eq!(fi.structs[0].fields.len(), 2);
        assert_eq!(fi.structs[0].fields[1].ty, ["Vec", "Rc", "B"]);
        assert_eq!(fi.structs[2].tuple_ty, ["Rc", "C"]);
        assert_eq!(fi.enums.len(), 1);
        let vs: Vec<&str> = fi.enums[0]
            .variants
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(vs, ["Start", "Stop", "Tick"]);
        let fns: Vec<(&str, Option<&str>)> = fi
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.impl_ty.as_deref()))
            .collect();
        assert_eq!(
            fns,
            [
                ("on_event", Some("A")),
                ("snapshot", Some("A")),
                ("free", None)
            ]
        );
    }

    #[test]
    fn trait_default_methods_carry_the_trait_name() {
        let src = "trait Hook { fn snapshot_state(&self) {} fn decl_only(&self); }";
        let fi = index_one(src);
        assert_eq!(fi.fns.len(), 1);
        assert_eq!(fi.fns[0].impl_ty.as_deref(), Some("Hook"));
    }

    #[test]
    fn items_inside_mod_tests_are_found() {
        let src = "mod tests { struct S { a: u8 } fn f() {} }";
        let fi = index_one(src);
        assert_eq!(fi.structs.len(), 1);
        assert_eq!(fi.fns.len(), 1);
    }

    #[test]
    fn pattern_spans_cover_arms_not_bodies() {
        let src = "fn f(ev: Event) { match ev { Event::A(x) => go(Event::B), other => {} } }";
        let fi = index_one(src);
        let spans = pattern_spans(&fi.lexed.tokens, 0..fi.lexed.tokens.len());
        assert_eq!(spans.len(), 2);
        let in_pattern = |needle: &str| {
            spans
                .iter()
                .any(|s| fi.lexed.tokens[s.clone()].iter().any(|t| t.text == needle))
        };
        assert!(in_pattern("A"));
        assert!(in_pattern("other"));
        // `Event::B` is constructed in an arm body, not matched.
        assert!(!in_pattern("B"));
    }

    #[test]
    fn generic_struct_headers_do_not_confuse_the_body_finder() {
        let src = "struct G<T: Into<u64>> { v: T }";
        let fi = index_one(src);
        assert_eq!(fi.structs[0].fields.len(), 1);
    }
}
