//! Deterministic input generators for the nine benchmarks.
//!
//! Every generator reproduces the published statistics of the paper's
//! inputs (Table 1 and the per-application text): the MPEG clip's
//! I/P-frame byte split, the database record layout, the grep corpus
//! with exactly 16 matching lines, Datamation-format sort records, and
//! so on. All randomness is seeded from stable labels.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::SimRng;

/// MPEG-like frame types used by the filter benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Intra-coded frame (kept by the filter, colour-reduced on host).
    I,
    /// Predicted frame (dropped by the filter).
    P,
}

/// Bytes of framing header preceding each frame payload.
pub const FRAME_HEADER: usize = 8;

/// Generates a synthetic MPEG stream of exactly `total` bytes in which
/// the paper's measured share of bytes (36.5 %) belongs to P-frames
/// (the share the filter removes, Figure 3's "reduced the data sent to
/// the host by 36.5%").
///
/// Frame layout: `[0x46, type(b'I'|b'P'), 0, 0, payload_len: u32 le]`,
/// then `payload_len` bytes of frame data.
pub fn mpeg_stream(total: usize) -> Vec<u8> {
    let mut rng = SimRng::from_label("mpeg-stream");
    let mut out = Vec::with_capacity(total);
    // Repeating GOP cycle of 20 000 B: one 12 700 B I-frame (63.5 %) and
    // one 7 300 B P-frame (36.5 %).
    let cycle = [(FrameType::I, 12_700usize), (FrameType::P, 7_300usize)];
    let mut idx = 0;
    while out.len() < total {
        let (ty, frame_total) = cycle[idx % cycle.len()];
        idx += 1;
        // Last frame is truncated to land exactly on `total`.
        let frame_total = frame_total.min(total - out.len());
        if frame_total <= FRAME_HEADER {
            // Pad the tail with filler inside the previous frame space.
            out.resize(total, 0);
            break;
        }
        let payload = frame_total - FRAME_HEADER;
        out.push(0x46);
        out.push(match ty {
            FrameType::I => b'I',
            FrameType::P => b'P',
        });
        out.push(0);
        out.push(0);
        out.extend_from_slice(&(payload as u32).to_le_bytes());
        for _ in 0..payload {
            out.push(rng.next_u32() as u8);
        }
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Incremental MPEG frame scanner: feeds arbitrary chunks, emits
/// `(FrameType, n)` segments saying the next `n` bytes of the stream
/// (including header bytes) belong to a frame of that type. Both the
/// host program and the switch handler use it, carrying state across
/// 64 KB blocks / 512 B packets respectively.
#[derive(Debug, Clone)]
pub struct FrameScanner {
    /// Partial header bytes buffered across chunks.
    hdr: Vec<u8>,
    /// Bytes remaining in the current frame's payload.
    remaining: usize,
    current: FrameType,
}

impl FrameScanner {
    /// Fresh scanner at a frame boundary.
    pub fn new() -> Self {
        FrameScanner {
            hdr: Vec::new(),
            remaining: 0,
            current: FrameType::I,
        }
    }

    /// Consumes `chunk`, returning typed segments covering it entirely.
    pub fn feed(&mut self, chunk: &[u8]) -> Vec<(FrameType, usize)> {
        let mut segs: Vec<(FrameType, usize)> = Vec::new();
        let push = |segs: &mut Vec<(FrameType, usize)>, ty: FrameType, n: usize| {
            if n == 0 {
                return;
            }
            if let Some(last) = segs.last_mut() {
                if last.0 == ty {
                    last.1 += n;
                    return;
                }
            }
            segs.push((ty, n));
        };
        let mut i = 0;
        while i < chunk.len() {
            if self.remaining > 0 {
                let take = self.remaining.min(chunk.len() - i);
                push(&mut segs, self.current, take);
                self.remaining -= take;
                i += take;
                continue;
            }
            // Accumulate a header.
            let need = FRAME_HEADER - self.hdr.len();
            let take = need.min(chunk.len() - i);
            self.hdr.extend_from_slice(&chunk[i..i + take]);
            i += take;
            // Header bytes belong to the frame they introduce; until the
            // type byte is known we can only classify once complete.
            if self.hdr.len() == FRAME_HEADER {
                let ty = match self.hdr[1] {
                    b'I' => FrameType::I,
                    b'P' => FrameType::P,
                    other => panic!("corrupt frame header type {other:#x}"),
                };
                let payload =
                    u32::from_le_bytes([self.hdr[4], self.hdr[5], self.hdr[6], self.hdr[7]])
                        as usize;
                push(&mut segs, ty, FRAME_HEADER);
                self.current = ty;
                self.remaining = payload;
                self.hdr.clear();
            } else {
                // Partial header: attribute tentatively to the upcoming
                // frame once known; for accounting we emit it with the
                // *next* complete classification. To keep segments exact
                // we emit nothing now (the header bytes are counted when
                // the header completes — callers only use segment byte
                // counts for forwarding payload, and header bytes are
                // negligible).
                push(&mut segs, FrameType::I, 0);
            }
        }
        segs
    }

    /// Serializes the scanner's mid-stream state (partial header,
    /// remaining payload bytes, current frame type).
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.bytes(&self.hdr);
        w.usize(self.remaining);
        w.u8(match self.current {
            FrameType::I => 0,
            FrameType::P => 1,
        });
    }

    /// Restores the state written by [`snapshot`](FrameScanner::snapshot).
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.hdr = r.bytes()?;
        self.remaining = r.usize()?;
        self.current = match r.u8()? {
            0 => FrameType::I,
            1 => FrameType::P,
            _ => return Err(SnapError::Malformed("frame type tag")),
        };
        Ok(())
    }
}

impl Default for FrameScanner {
    fn default() -> Self {
        FrameScanner::new()
    }
}

/// Generates a database table of fixed-size records. Record layout:
/// 8-byte little-endian key, then filler to `record_bytes`. Keys are
/// uniform in `[0, u32::MAX]` (stored in 64 bits).
pub fn db_table(total_bytes: usize, record_bytes: usize, label: &str) -> Vec<u8> {
    assert!(record_bytes >= 8, "record too small for a key");
    let mut rng = SimRng::from_label(label);
    let records = total_bytes / record_bytes;
    let mut out = Vec::with_capacity(records * record_bytes);
    for _ in 0..records {
        let key = rng.below(1 << 32);
        out.extend_from_slice(&key.to_le_bytes());
        out.resize(out.len() + record_bytes - 8, 0x2E);
    }
    out
}

/// The key of record `i` in a [`db_table`]-formatted buffer.
pub fn record_key(table: &[u8], record_bytes: usize, i: usize) -> u64 {
    let off = i * record_bytes;
    u64::from_le_bytes(table[off..off + 8].try_into().expect("key bytes"))
}

/// Generates the HashJoin pair: relation R (`r_bytes`) with uniform
/// keys, and relation S (`s_bytes`) in which a calibrated fraction of
/// keys is drawn from R so that the bit-vector pass rate is the paper's
/// 0.24 (direct hits plus hash false positives).
pub fn join_tables(r_bytes: usize, s_bytes: usize, record_bytes: usize) -> (Vec<u8>, Vec<u8>) {
    let r = db_table(r_bytes, record_bytes, "hashjoin-R");
    let r_records = r_bytes / record_bytes;
    let mut rng = SimRng::from_label("hashjoin-S");
    let s_records = s_bytes / record_bytes;
    let mut s = Vec::with_capacity(s_records * record_bytes);
    for _ in 0..s_records {
        let key = if rng.chance(0.14) {
            record_key(&r, record_bytes, rng.below(r_records as u64) as usize)
        } else {
            rng.below(1 << 32)
        };
        s.extend_from_slice(&key.to_le_bytes());
        s.resize(s.len() + record_bytes - 8, 0x2E);
    }
    (r, s)
}

/// Generates the grep corpus: `total` bytes of newline-terminated lines
/// of lowercase filler, with exactly `matches` lines containing
/// `pattern`, spread evenly through the file (the paper: 16 matched
/// lines in 1 146 880 bytes).
pub fn grep_corpus(total: usize, pattern: &str, matches: usize) -> Vec<u8> {
    let mut rng = SimRng::from_label("grep-corpus");
    let mut out = Vec::with_capacity(total);
    let line_len = 64usize;
    let total_lines = total / line_len;
    assert!(matches <= total_lines, "too many matches requested");
    let stride = total_lines.checked_div(matches).unwrap_or(usize::MAX);
    let mut line_no = 0;
    while out.len() + line_len <= total {
        let is_match = matches > 0 && line_no % stride == stride / 2 && line_no / stride < matches;
        let mut line = Vec::with_capacity(line_len);
        if is_match {
            line.extend_from_slice(pattern.as_bytes());
            line.push(b' ');
        }
        while line.len() < line_len - 1 {
            // Lowercase words; never accidentally contains the
            // capitalized pattern.
            line.push(b'a' + (rng.below(26)) as u8);
        }
        line.push(b'\n');
        out.extend_from_slice(&line);
        line_no += 1;
    }
    out.resize(total, b'\n');
    out
}

/// Datamation sort records: 100 bytes, 10-byte key then 90 bytes of
/// payload (Arpaci-Dusseau et al., as cited in §5).
pub const SORT_RECORD: usize = 100;

/// Key bytes per sort record.
pub const SORT_KEY: usize = 10;

/// Generates `n` Datamation records with uniform keys.
pub fn datamation(n: usize, label: &str) -> Vec<u8> {
    let mut rng = SimRng::from_label(label);
    let mut out = Vec::with_capacity(n * SORT_RECORD);
    for _ in 0..n {
        let mut key = [0u8; SORT_KEY];
        rng.fill_bytes(&mut key);
        out.extend_from_slice(&key);
        out.resize(out.len() + (SORT_RECORD - SORT_KEY), 0x20);
    }
    out
}

/// The range-partition bucket of a Datamation record key for `p`
/// nodes: uniform split of the 16-bit key prefix.
pub fn sort_bucket(key: &[u8], p: usize) -> usize {
    let prefix = u16::from_be_bytes([key[0], key[1]]) as usize;
    (prefix * p) >> 16
}

/// Generates `n` files of `each` bytes for the Tar benchmark.
pub fn file_set(n: usize, each: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| {
            let mut rng = SimRng::from_label(&format!("tar-file-{i}"));
            let mut data = vec![0u8; each];
            rng.fill_bytes(&mut data);
            data
        })
        .collect()
}

/// Generates the MD5 input (256 KB in the paper).
pub fn md5_input(total: usize) -> Vec<u8> {
    let mut rng = SimRng::from_label("md5-input");
    let mut data = vec![0u8; total];
    rng.fill_bytes(&mut data);
    data
}

/// Generates one node's 512-byte reduction vector of 128 u32 lanes.
pub fn reduce_vector(node: usize) -> Vec<u8> {
    let mut rng = SimRng::from_label(&format!("reduce-{node}"));
    let mut v = Vec::with_capacity(512);
    for _ in 0..128 {
        v.extend_from_slice(&(rng.below(1 << 16) as u32).to_le_bytes());
    }
    v
}

/// Element-wise u32 sum of two 512-byte vectors (the reduction op).
pub fn vector_add(a: &mut [u8], b: &[u8]) {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    for i in (0..a.len()).step_by(4) {
        let x = u32::from_le_bytes(a[i..i + 4].try_into().expect("lane"));
        let y = u32::from_le_bytes(b[i..i + 4].try_into().expect("lane"));
        a[i..i + 4].copy_from_slice(&x.wrapping_add(y).to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpeg_stream_has_exact_length_and_ratio() {
        let total = 2_202_640;
        let data = mpeg_stream(total);
        assert_eq!(data.len(), total);
        // Walk frames and compute the P-byte share.
        let mut i = 0;
        let mut p_bytes = 0usize;
        while i + FRAME_HEADER <= data.len() {
            let ty = data[i + 1];
            let payload =
                u32::from_le_bytes([data[i + 4], data[i + 5], data[i + 6], data[i + 7]]) as usize;
            let frame = FRAME_HEADER + payload;
            if ty == b'P' {
                p_bytes += frame.min(data.len() - i);
            }
            i += frame;
        }
        let share = p_bytes as f64 / total as f64;
        assert!((share - 0.365).abs() < 0.01, "P share = {share}");
    }

    #[test]
    fn frame_scanner_segments_cover_all_bytes() {
        let data = mpeg_stream(100_000);
        for chunk_size in [512usize, 4096, 65536, 77] {
            let mut sc = FrameScanner::new();
            let mut covered = 0usize;
            for chunk in data.chunks(chunk_size) {
                for (_, n) in sc.feed(chunk) {
                    covered += n;
                }
            }
            // Header bytes of incomplete trailing frames may be pending.
            assert!(covered <= data.len());
            assert!(data.len() - covered < FRAME_HEADER * 2 + chunk_size.min(16));
        }
    }

    #[test]
    fn frame_scanner_agrees_across_chunkings() {
        let data = mpeg_stream(200_000);
        let count_i = |chunk: usize| {
            let mut sc = FrameScanner::new();
            let mut i_bytes = 0usize;
            for c in data.chunks(chunk) {
                for (ty, n) in sc.feed(c) {
                    if ty == FrameType::I {
                        i_bytes += n;
                    }
                }
            }
            i_bytes
        };
        let a = count_i(512);
        let b = count_i(65536);
        assert!(a.abs_diff(b) < 32, "{a} vs {b}");
    }

    #[test]
    fn db_table_keys_are_uniform() {
        let t = db_table(128 * 1024, 128, "unit");
        let n = t.len() / 128;
        let below_quarter = (0..n)
            .filter(|&i| record_key(&t, 128, i) < (1u64 << 32) / 4)
            .count();
        let frac = below_quarter as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.05, "selectivity = {frac}");
    }

    #[test]
    fn join_tables_pass_rate_matches_paper() {
        // Scaled like `hashjoin::Params::small`: the bit-vector fill
        // fraction (and hence the false-positive rate) matches the
        // paper's full-size configuration.
        let (r, s) = join_tables(512 << 10, 2 << 20, 128);
        let bits = 1usize << 15;
        let mut bv = vec![false; bits];
        let nr = r.len() / 128;
        for i in 0..nr {
            let k = record_key(&r, 128, i);
            bv[hash_bit(k, bits)] = true;
        }
        let ns = s.len() / 128;
        let pass = (0..ns)
            .filter(|&i| bv[hash_bit(record_key(&s, 128, i), bits)])
            .count();
        let rate = pass as f64 / ns as f64;
        assert!((rate - 0.24).abs() < 0.08, "pass rate = {rate}");
    }

    fn hash_bit(key: u64, bits: usize) -> usize {
        (key.wrapping_mul(0x9E3779B97F4A7C15) >> 40) as usize % bits
    }

    #[test]
    fn grep_corpus_has_exact_matches() {
        let pattern = "Big Red Bear";
        let corpus = grep_corpus(1_146_880, pattern, 16);
        assert_eq!(corpus.len(), 1_146_880);
        let matches = corpus
            .split(|&b| b == b'\n')
            .filter(|line| line.windows(pattern.len()).any(|w| w == pattern.as_bytes()))
            .count();
        assert_eq!(matches, 16);
    }

    #[test]
    fn datamation_records_and_buckets() {
        let recs = datamation(10_000, "unit");
        assert_eq!(recs.len(), 1_000_000);
        // Bucket distribution over 4 nodes is roughly uniform.
        let mut counts = [0usize; 4];
        for i in 0..10_000 {
            let key = &recs[i * SORT_RECORD..i * SORT_RECORD + SORT_KEY];
            counts[sort_bucket(key, 4)] += 1;
        }
        for &c in &counts {
            assert!((2_200..=2_800).contains(&c), "bucket = {c}");
        }
    }

    #[test]
    fn vector_add_is_elementwise() {
        let mut a = reduce_vector(0);
        let b = reduce_vector(1);
        let a0 = u32::from_le_bytes(a[0..4].try_into().unwrap());
        let b0 = u32::from_le_bytes(b[0..4].try_into().unwrap());
        vector_add(&mut a, &b);
        assert_eq!(
            u32::from_le_bytes(a[0..4].try_into().unwrap()),
            a0.wrapping_add(b0)
        );
        assert_eq!(a.len(), 512);
    }

    #[test]
    #[should_panic(expected = "corrupt frame header")]
    fn scanner_rejects_corrupt_streams() {
        let mut sc = FrameScanner::new();
        sc.feed(&[0x46, b'X', 0, 0, 1, 0, 0, 0]);
    }

    #[test]
    fn db_keys_fit_32_bits() {
        let t = db_table(64 * 1024, 128, "bounds");
        for i in 0..t.len() / 128 {
            assert!(record_key(&t, 128, i) < (1u64 << 32));
        }
    }

    #[test]
    fn reduce_vectors_differ_by_node_and_are_stable() {
        assert_eq!(reduce_vector(3), reduce_vector(3));
        assert_ne!(reduce_vector(3), reduce_vector(4));
        assert_eq!(reduce_vector(0).len(), 512);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(mpeg_stream(10_000), mpeg_stream(10_000));
        assert_eq!(datamation(10, "x"), datamation(10, "x"));
        assert_ne!(datamation(10, "x"), datamation(10, "y"));
        assert_eq!(file_set(2, 100), file_set(2, 100));
    }
}
