//! Two-level active I/O (§6's closing thought): active *disks* below
//! active *switches*.
//!
//! "If active I/O devices do become prevalent, they can also be used
//! within our active switch system, creating a two-level active I/O
//! system." We realize that here for the Select workload and compare
//! four placements of intelligence:
//!
//! | configuration | filter runs at | SAN carries | host receives |
//! |---|---|---|---|
//! | `HostOnly`     | host          | whole table | whole table   |
//! | `ActiveSwitch` | switch        | whole table | matches       |
//! | `ActiveDisk`   | TCA           | matches     | matches       |
//! | `TwoLevel`     | TCA + switch  | matches     | 8-byte count  |
//!
//! The progression shows the paper's bandwidth argument extending one
//! level further down: the active disk also relieves the *SAN* links,
//! and the switch can still add value on top (here, aggregation).

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::active::ActiveSwitchConfig;
use asan_core::cluster::{ClusterConfig, Dest, HostCtx, HostMsg, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::{HandlerId, NodeId};
use asan_sim::SimTime;

use crate::blockio::{BlockPlan, BlockReader};
use crate::cost;
use crate::data;
use crate::runner::standard_cluster;
use crate::select::{self, SelectHandler, DONE_HANDLER, SELECT_HANDLER};
use crate::shared::Shared;

/// Handler ID of the counting/aggregation stage on the switch.
pub const COUNT_HANDLER: HandlerId = HandlerId::new_const(11);

/// Where the intelligence sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Everything on the host (the paper's `normal+pref`).
    HostOnly,
    /// Filter in the switch (the paper's `active+pref`).
    ActiveSwitch,
    /// Filter at the TCA — an active disk.
    ActiveDisk,
    /// Filter at the TCA, aggregate (count) in the switch.
    TwoLevel,
}

impl Placement {
    /// All four placements in presentation order.
    pub const ALL: [Placement; 4] = [
        Placement::HostOnly,
        Placement::ActiveSwitch,
        Placement::ActiveDisk,
        Placement::TwoLevel,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Placement::HostOnly => "host-only",
            Placement::ActiveSwitch => "active-switch",
            Placement::ActiveDisk => "active-disk",
            Placement::TwoLevel => "two-level",
        }
    }
}

/// A switch handler that counts arriving records and forwards only the
/// final count — the aggregation stage of the two-level pipeline.
pub struct CountStage {
    record_bytes: u64,
    host: NodeId,
    bytes: u64,
    records: u64,
}

impl CountStage {
    fn new(record_bytes: u64, host: NodeId) -> Self {
        CountStage {
            record_bytes,
            host,
            bytes: 0,
            records: 0,
        }
    }
}

impl Handler for CountStage {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        if ctx.msg().handler == DONE_HANDLER {
            // Upstream (the active disk) is done; it reports its match
            // count, which we cross-check against our tally and pass on.
            let payload = ctx.payload();
            let upstream = u64::from_le_bytes(payload[..8].try_into().expect("count"));
            assert_eq!(upstream, self.records, "stage counts disagree");
            ctx.compute(50);
            ctx.send(
                self.host,
                Some(DONE_HANDLER),
                0,
                &self.records.to_le_bytes(),
            );
            return;
        }
        let payload = ctx.payload();
        self.bytes += payload.len() as u64;
        self.records += payload.len() as u64 / self.record_bytes;
        ctx.compute(cost::SELECT_COUNT_INSTR);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Host program for the disk-active and two-level placements.
struct TwoLevelHost {
    p: select::Params,
    reader: BlockReader,
    records_in: u64,
    final_count: Option<u64>,
}

impl HostProgram for TwoLevelHost {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        self.reader.on_complete(ctx, req);
        self.reader.refill(ctx);
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if msg.handler == Some(DONE_HANDLER) {
            self.final_count = Some(u64::from_le_bytes(msg.data[..8].try_into().expect("count")));
            ctx.finish();
            return;
        }
        let n = msg.data.len() as u64 / self.p.record_bytes;
        self.records_in += n;
        ctx.cpu().compute(cost::SELECT_COUNT_INSTR);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// Result of one placement run.
#[derive(Debug, Clone)]
pub struct PlacementRun {
    /// Which placement ran.
    pub placement: Placement,
    /// Execution time.
    pub exec: SimTime,
    /// Payload bytes in/out of the host.
    pub host_traffic: u64,
    /// Bytes carried by SAN links (sum over hops).
    pub san_bytes: u64,
    /// The verified match count.
    pub matches: u64,
}

/// Runs Select under the given intelligence placement (all runs use two
/// outstanding requests, the paper's `+pref`), validating the count.
///
/// # Panics
///
/// Panics if any stage's count disagrees with the pure-Rust reference.
pub fn run(placement: Placement, p: &select::Params) -> PlacementRun {
    // Host-only and switch-active reuse the Select benchmark directly.
    match placement {
        Placement::HostOnly | Placement::ActiveSwitch => {
            let variant = if placement == Placement::HostOnly {
                crate::Variant::NormalPref
            } else {
                crate::Variant::ActivePref
            };
            let r = select::run(variant, p);
            return PlacementRun {
                placement,
                exec: r.exec,
                host_traffic: r.host_traffic,
                san_bytes: r.link_bytes,
                matches: r.artifact,
            };
        }
        _ => {}
    }

    let table = Arc::new(data::db_table(
        p.table_bytes as usize,
        p.record_bytes as usize,
        "select-table",
    ));
    let want = select::reference_count(&table, p);

    let (mut cl, hs, ts, sw) = standard_cluster(1, 1, ClusterConfig::paper_db());
    let file = cl
        .add_file(ts[0], table.as_ref().clone())
        .expect("cluster setup");
    let host = hs[0];
    let tca = ts[0];

    // The active disk runs the same selection handler the switch would.
    cl.enable_active_tca(tca, ActiveSwitchConfig::paper())
        .expect("cluster setup");
    let filter_dest = match placement {
        Placement::ActiveDisk => host,
        Placement::TwoLevel => sw,
        _ => unreachable!("handled above"),
    };
    let filter = if placement == Placement::TwoLevel {
        SelectHandler::new(p.clone(), filter_dest, p.table_bytes).with_out_handler(COUNT_HANDLER)
    } else {
        SelectHandler::new(p.clone(), filter_dest, p.table_bytes)
    };
    cl.register_tca_handler(tca, SELECT_HANDLER, Box::new(filter))
        .expect("cluster setup");
    if placement == Placement::TwoLevel {
        // Record batches arrive under COUNT_HANDLER and the end-of-
        // stream report under DONE_HANDLER; both must update one tally.
        let stage = Shared::new(CountStage::new(p.record_bytes, host));
        cl.register_handler(sw, COUNT_HANDLER, Box::new(stage.clone()))
            .expect("cluster setup");
        cl.register_handler(sw, DONE_HANDLER, Box::new(stage))
            .expect("cluster setup");
    }

    cl.set_program(
        host,
        Box::new(TwoLevelHost {
            p: p.clone(),
            reader: BlockReader::new(BlockPlan {
                file,
                total: p.table_bytes,
                block: p.io_block,
                outstanding: 2,
                dest: Dest::Mapped {
                    node: tca,
                    handler: SELECT_HANDLER,
                    base_addr: 0,
                },
            }),
            records_in: 0,
            final_count: None,
        }),
    )
    .expect("cluster setup");

    let report = cl.run().expect("simulation completes");
    let program = cl.take_program(host).expect("program");
    let prog = program
        .as_any()
        .and_then(|a| a.downcast_ref::<TwoLevelHost>())
        .expect("two-level host");
    let got = prog.final_count.expect("done message");
    assert_eq!(got, want, "match count mismatch");
    if placement == Placement::ActiveDisk {
        assert_eq!(prog.records_in, want, "host record tally");
    }

    PlacementRun {
        placement,
        exec: report.finish,
        host_traffic: report.total_host_payload(),
        san_bytes: report.link_bytes,
        matches: got,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_placements_agree_on_count() {
        let p = select::Params::small();
        let runs: Vec<PlacementRun> = Placement::ALL.iter().map(|&pl| run(pl, &p)).collect();
        let want = runs[0].matches;
        for r in &runs {
            assert_eq!(r.matches, want, "{:?}", r.placement);
        }
    }

    #[test]
    fn traffic_shrinks_down_the_hierarchy() {
        let p = select::Params::small();
        let host_only = run(Placement::HostOnly, &p);
        let disk = run(Placement::ActiveDisk, &p);
        let two = run(Placement::TwoLevel, &p);
        // The active disk sends only matches to the host; two-level
        // sends only the count.
        assert!(disk.host_traffic < host_only.host_traffic / 2);
        assert!(two.host_traffic * 100 < host_only.host_traffic);
        assert!(two.host_traffic < disk.host_traffic);
    }
}
