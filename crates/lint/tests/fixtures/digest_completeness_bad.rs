//! Known-bad: `retries` was added to the stats but never folded into
//! the digest, so the golden-digest net cannot see it drift.

pub struct LinkSnapshot {
    pub bytes: u64,
    pub stalls: u64,
}

pub struct ClusterStats {
    pub events: u64,
    pub retries: u64,
    pub link: LinkSnapshot,
}

impl ClusterStats {
    pub fn digest(&self) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, self.events);
        h = fold(h, self.link.bytes);
        fold(h, self.link.stalls)
    }
}
