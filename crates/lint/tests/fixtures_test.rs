//! End-to-end fixture tests: each rule has a known-bad fixture that
//! must fail and a corrected twin that must pass, asserted through the
//! real binary's `--format json` output so the CLI surface (flags,
//! exit codes, JSON shape) is under test too.

use std::path::PathBuf;
use std::process::{Command, Output};

/// The thirteen rules and their fixture basenames.
const RULES: [&str; 13] = [
    "no-unordered-iteration",
    "no-wall-clock",
    "no-ambient-randomness",
    "lossy-model-cast",
    "event-exhaustiveness",
    "digest-completeness",
    "no-hot-path-clone",
    "snapshot-completeness",
    "no-unit-mixing",
    "event-flow-closure",
    "snapshot-symmetry",
    "domain-isolation",
    "unused-allow",
];

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs `asan-lint check --scope-all --format json` on one file.
fn lint_json(file: &PathBuf) -> Output {
    Command::new(env!("CARGO_BIN_EXE_asan-lint"))
        .args(["check", "--scope-all", "--format", "json"])
        .arg(file)
        .output()
        .expect("spawn asan-lint")
}

#[test]
fn every_rule_fails_its_bad_fixture() {
    for rule in RULES {
        let file = fixture(&format!("{}_bad.rs", rule.replace('-', "_")));
        let out = lint_json(&file);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{rule}: bad fixture must exit 1\n{stdout}"
        );
        assert!(
            stdout.contains(&format!("\"rule\": \"{rule}\"")),
            "{rule}: JSON must name the rule\n{stdout}"
        );
        assert!(
            stdout.contains("\"severity\": \"deny\""),
            "{rule}: finding must be deny-level\n{stdout}"
        );
    }
}

#[test]
fn every_rule_passes_its_corrected_twin() {
    for rule in RULES {
        let file = fixture(&format!("{}_good.rs", rule.replace('-', "_")));
        let out = lint_json(&file);
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{rule}: corrected twin must exit 0\n{stdout}"
        );
        assert!(
            stdout.contains("\"violations\": 0"),
            "{rule}: corrected twin must be clean\n{stdout}"
        );
    }
}

#[test]
fn allow_comment_is_an_escape_hatch() {
    // The bad wall-clock fixture becomes clean when every finding line
    // carries an allow; simplest probe: a copy with a file built here.
    let dir = std::env::temp_dir().join("asan-lint-allow-test");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("allowed.rs");
    std::fs::write(
        &file,
        "use std::time::Instant; // asan-lint: allow(no-wall-clock)\n\
         // asan-lint: allow(no-wall-clock)\n\
         pub fn t() -> Instant { Instant::now() }\n",
    )
    .expect("write");
    let out = lint_json(&file);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "allows must suppress\n{stdout}");
}

#[test]
fn exit_code_contract() {
    // 0: clean input (a corrected twin) — covered above.
    // 1: violations — covered above.
    // 0 + stderr note: a *vanished* named path is skipped, not fatal,
    // so `check --paths $(git diff --name-only)` tolerates deletions.
    let out = lint_json(&fixture("does_not_exist.rs"));
    assert_eq!(
        out.status.code(),
        Some(0),
        "vanished named path must be skipped with exit 0"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("skipping") || stderr.contains("no checkable files"),
        "vanished path must be noted on stderr\n{stderr}"
    );
    // 2: internal error (path exists but cannot be read as a file).
    let dir = std::env::temp_dir().join("asan-lint-unreadable-test");
    let bogus = dir.join("directory_named_like_a_file.rs");
    std::fs::create_dir_all(&bogus).expect("mkdir");
    let out = lint_json(&bogus);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unreadable existing path must exit 2"
    );
    // 2: bad arguments.
    let out = Command::new(env!("CARGO_BIN_EXE_asan-lint"))
        .args(["check", "--format", "yaml"])
        .output()
        .expect("spawn asan-lint");
    assert_eq!(out.status.code(), Some(2), "bad --format must exit 2");
    let out = Command::new(env!("CARGO_BIN_EXE_asan-lint"))
        .args(["frobnicate"])
        .output()
        .expect("spawn asan-lint");
    assert_eq!(out.status.code(), Some(2), "unknown command must exit 2");
}

#[test]
fn help_documents_the_contract() {
    let out = Command::new(env!("CARGO_BIN_EXE_asan-lint"))
        .arg("--help")
        .output()
        .expect("spawn asan-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "EXIT CODES",
        "0    clean",
        "1    one or more",
        "2    internal error",
    ] {
        assert!(stdout.contains(needle), "--help must document: {needle}");
    }
}

#[test]
fn human_format_names_file_and_line() {
    let file = fixture("no_wall_clock_bad.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_asan-lint"))
        .args(["check", "--scope-all", "--format", "human"])
        .arg(&file)
        .output()
        .expect("spawn asan-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stdout.contains("deny[no-wall-clock]") && stdout.contains("no_wall_clock_bad.rs:"),
        "human format must carry rule + file:line\n{stdout}"
    );
}

#[test]
fn list_rules_covers_the_catalog() {
    let out = Command::new(env!("CARGO_BIN_EXE_asan-lint"))
        .arg("--list-rules")
        .output()
        .expect("spawn asan-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in RULES {
        assert!(stdout.contains(rule), "--list-rules must include {rule}");
    }
}
