//! HashJoin with bit-vector filter (§5, DeWitt-Gerber style).
//!
//! Phase 1: scan relation R (16 MB), build the host hash table and set
//! bits of the 128 KB bit-vector. Phase 2: scan relation S (128 MB);
//! records whose bit is clear are discarded before the join.
//!
//! * **normal**: both the bit-vector check and the join probe run on
//!   the host.
//! * **active**: the bit-vector lives in the switch ("the bit-vector is
//!   stored in the switch while the relation R passes through the
//!   switch"); the switch filters S and forwards only the surviving
//!   ~24 % to the host, which runs the real join probe.
//!
//! Shape to reproduce (Figures 5–6): active beats normal by ~1.10×
//! without prefetch; the two prefetched cases tie; host traffic drops
//! by ~76 %; the host cache-stall share drops (27.6 % → 16.1 % for the
//! prefetched cases) because the unrelated records never pollute the
//! host caches; the switch CPU sees misses on its 128 KB bit-vector
//! (≫ its 1 KB D-cache) but the impact is small.

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::cluster::{ClusterConfig, Dest, HostCtx, HostMsg, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::{HandlerId, NodeId};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::blockio::{BlockPlan, BlockReader};
use crate::cost;
use crate::data;
use crate::runner::{drive, standard_cluster, AppRun, Variant};

/// Handler that observes R and sets bit-vector bits.
pub const BUILD_HANDLER: HandlerId = HandlerId::new_const(3);

/// Handler that filters S against the bit-vector.
pub const PROBE_HANDLER: HandlerId = HandlerId::new_const(4);

/// Flow tag of the final statistics message.
pub const DONE_HANDLER: HandlerId = HandlerId::new_const(62);

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Relation R size in bytes (16 MB in Table 1).
    pub r_bytes: u64,
    /// Relation S size in bytes (128 MB in Table 1).
    pub s_bytes: u64,
    /// Record size (128 B, §5).
    pub record_bytes: u64,
    /// Bit-vector size in bits (≈1 M bits = 128 KB, §5).
    pub bits: u64,
    /// I/O request size.
    pub io_block: u64,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params {
            r_bytes: 16 << 20,
            s_bytes: 128 << 20,
            record_bytes: 128,
            bits: 1 << 20,
            io_block: 64 * 1024,
        }
    }

    /// A scaled-down configuration for tests (keeps the R:S ratio).
    pub fn small() -> Self {
        Params {
            r_bytes: 512 << 10,
            s_bytes: 4 << 20,
            bits: 1 << 15,
            ..Params::paper()
        }
    }
}

/// The hash function both sides use for the bit-vector.
#[inline]
pub fn hash_bit(key: u64, bits: u64) -> u64 {
    (key.wrapping_mul(0x9E3779B97F4A7C15) >> 40) % bits
}

/// Pure-Rust reference: (bit-vector pass count, true join matches).
pub fn reference(r: &[u8], s: &[u8], p: &Params) -> (u64, u64) {
    let rb = p.record_bytes as usize;
    let mut bv = vec![false; p.bits as usize];
    let mut keys = std::collections::BTreeSet::new();
    for i in 0..r.len() / rb {
        let k = data::record_key(r, rb, i);
        bv[hash_bit(k, p.bits) as usize] = true;
        keys.insert(k);
    }
    let mut pass = 0u64;
    let mut matches = 0u64;
    for i in 0..s.len() / rb {
        let k = data::record_key(s, rb, i);
        if bv[hash_bit(k, p.bits) as usize] {
            pass += 1;
            if keys.contains(&k) {
                matches += 1;
            }
        }
    }
    (pass, matches)
}

/// Host-side join state shared by both variants: the real hash table.
#[derive(Debug, Default)]
struct JoinState {
    table: std::collections::BTreeMap<u64, u32>,
    bv_pass: u64,
    matches: u64,
}

impl JoinState {
    fn snapshot(&self, w: &mut SnapWriter) {
        w.usize(self.table.len());
        for (&k, &v) in &self.table {
            w.u64(k);
            w.u32(v);
        }
        w.u64(self.bv_pass);
        w.u64(self.matches);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.table.clear();
        for _ in 0..n {
            let k = r.u64()?;
            let v = r.u32()?;
            self.table.insert(k, v);
        }
        self.bv_pass = r.u64()?;
        self.matches = r.u64()?;
        Ok(())
    }
}

/// Packs a bit-vector into bytes for snapshotting.
fn pack_bits(bv: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bv.len().div_ceil(8)];
    for (i, &b) in bv.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Unpacks a snapshot bit-vector of a statically known length.
fn unpack_bits(bytes: &[u8], len: usize) -> Result<Vec<bool>, SnapError> {
    if bytes.len() != len.div_ceil(8) {
        return Err(SnapError::Malformed("bit-vector length"));
    }
    Ok((0..len)
        .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
        .collect())
}

/// Memory regions used by the host program.
const R_BUF: u64 = 0x1000_0000;
const S_BUF: u64 = 0x3000_0000;
const HASHTAB: u64 = 0x8000_0000;
const BITVEC: u64 = 0x7000_0000;

/// Normal-case host program: build then probe, all on the host.
struct NormalJoin {
    r: Arc<Vec<u8>>, // asan-lint: allow(snapshot-completeness)
    s: Arc<Vec<u8>>, // asan-lint: allow(snapshot-completeness)
    p: Params,       // asan-lint: allow(snapshot-completeness)
    phase: u8,
    reader: BlockReader,
    s_plan: BlockPlan,
    bv: Vec<bool>,
    st: JoinState,
}

impl NormalJoin {
    fn scan_r(&mut self, ctx: &mut HostCtx<'_>, off: u64, len: u64) {
        let rb = self.p.record_bytes;
        for i in 0..len / rb {
            let idx = ((off + i * rb) / rb) as usize;
            let key = data::record_key(&self.r, rb as usize, idx);
            ctx.cpu().load(R_BUF + off + i * rb);
            ctx.cpu()
                .compute(cost::JOIN_HASH_INSTR + cost::JOIN_INSERT_INSTR);
            let bucket = HASHTAB + (key.wrapping_mul(0x2545F4914F6CDD1D) % (32 << 20));
            ctx.cpu().load(bucket);
            ctx.cpu().store(bucket);
            let bit = hash_bit(key, self.p.bits);
            ctx.cpu().load(BITVEC + bit / 8);
            ctx.cpu().store(BITVEC + bit / 8);
            self.bv[bit as usize] = true;
            *self.st.table.entry(key).or_insert(0) += 1;
        }
    }

    fn scan_s(&mut self, ctx: &mut HostCtx<'_>, off: u64, len: u64) {
        let rb = self.p.record_bytes;
        for i in 0..len / rb {
            let idx = ((off + i * rb) / rb) as usize;
            let key = data::record_key(&self.s, rb as usize, idx);
            ctx.cpu().load(S_BUF + off + i * rb);
            ctx.cpu().compute(cost::JOIN_HASH_INSTR);
            let bit = hash_bit(key, self.p.bits);
            ctx.cpu().load(BITVEC + bit / 8);
            if self.bv[bit as usize] {
                self.st.bv_pass += 1;
                ctx.cpu().compute(cost::JOIN_PROBE_INSTR);
                let bucket = HASHTAB + (key.wrapping_mul(0x2545F4914F6CDD1D) % (32 << 20));
                ctx.cpu().load(bucket);
                ctx.cpu().load(bucket + 64); // bucket chain / key page
                if self.st.table.contains_key(&key) {
                    self.st.matches += 1;
                }
            }
        }
    }
}

impl HostProgram for NormalJoin {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        // Zero the bit-vector (touch all 128 KB of it).
        ctx.cpu().touch_lines(BITVEC, self.p.bits / 8, 1, true);
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        let Some((off, len)) = self.reader.on_complete(ctx, req) else {
            return;
        };
        if self.phase == 0 {
            self.scan_r(ctx, off, len);
            self.reader.refill(ctx);
            if self.reader.done() {
                self.phase = 1;
                self.reader = BlockReader::new(self.s_plan);
                self.reader.start(ctx);
            }
        } else {
            self.scan_s(ctx, off, len);
            self.reader.refill(ctx);
            if self.reader.done() {
                ctx.finish();
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.u8(self.phase);
        self.reader.snapshot(w);
        w.bytes(&pack_bits(&self.bv));
        self.st.snapshot(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = r.u8()?;
        // The reader is replaced when phase 1 starts; rebuild it over
        // the right plan before restoring its cursor state.
        if self.phase == 1 {
            self.reader = BlockReader::new(self.s_plan);
        }
        self.reader.restore(r)?;
        self.bv = unpack_bits(&r.bytes()?, self.bv.len())?;
        self.st.restore(r)?;
        Ok(())
    }
}

/// The switch handler: builds the bit-vector as R streams by (while
/// forwarding R to the host), then filters S.
pub struct JoinFilter {
    p: Params,    // asan-lint: allow(snapshot-completeness)
    host: NodeId, // asan-lint: allow(snapshot-completeness)
    /// The real bit-vector.
    bv: Vec<bool>,
    /// Base address of the bit-vector in switch-local memory.
    bv_base: u64, // asan-lint: allow(snapshot-completeness)
    seen: u64,
    expect_r: u64, // asan-lint: allow(snapshot-completeness)
    expect_s: u64, // asan-lint: allow(snapshot-completeness)
    pass: u64,
    batch: Vec<u8>,
    batch_buf: Option<asan_core::BufId>,
    out_addr: u32,
}

impl JoinFilter {
    fn new(p: Params, host: NodeId) -> Self {
        JoinFilter {
            bv: vec![false; p.bits as usize],
            bv_base: 0x4_0000,
            seen: 0,
            expect_r: p.r_bytes,
            expect_s: p.s_bytes,
            pass: 0,
            batch: Vec::new(),
            batch_buf: None,
            out_addr: 0,
            p,
            host,
        }
    }

    /// S records that passed the filter.
    pub fn pass_count(&self) -> u64 {
        self.pass
    }

    fn flush(&mut self, ctx: &mut HandlerCtx<'_>) {
        if let Some(buf) = self.batch_buf.take() {
            if self.batch.is_empty() {
                ctx.free_buffer(buf);
            } else {
                ctx.send_buffer(buf, self.host, None, self.out_addr);
                self.out_addr = self.out_addr.wrapping_add(self.batch.len() as u32);
                self.batch.clear();
            }
        }
    }
}

impl Handler for JoinFilter {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let is_build = ctx.msg().handler == BUILD_HANDLER;
        let payload = ctx.payload();
        let rb = self.p.record_bytes as usize;
        if is_build {
            // R streaming through: set bits, forward the record stream
            // onward to the host unchanged (the host builds the real
            // hash table from it).
            for rec in payload.chunks_exact(rb) {
                ctx.compute(cost::JOIN_HASH_INSTR);
                let key = u64::from_le_bytes(rec[..8].try_into().expect("key"));
                let bit = hash_bit(key, self.p.bits);
                // 128 KB bit-vector in switch memory: real D-cache
                // behaviour (the paper: "the bit-vector is too big for
                // its limited L1 data cache").
                ctx.mem_load(self.bv_base + bit / 8);
                ctx.mem_store(self.bv_base + bit / 8);
                self.bv[bit as usize] = true;
            }
            ctx.send(self.host, Some(BUILD_HANDLER), self.out_addr, &payload);
            self.out_addr = self.out_addr.wrapping_add(payload.len() as u32);
            self.seen += payload.len() as u64;
            if self.seen >= self.expect_r {
                self.seen = 0;
                self.out_addr = 0;
            }
        } else {
            for rec in payload.chunks_exact(rb) {
                ctx.compute(cost::JOIN_HASH_INSTR);
                let key = u64::from_le_bytes(rec[..8].try_into().expect("key"));
                let bit = hash_bit(key, self.p.bits);
                ctx.mem_load(self.bv_base + bit / 8);
                if self.bv[bit as usize] {
                    self.pass += 1;
                    if self.batch_buf.is_none() {
                        self.batch_buf = Some(ctx.alloc_buffer());
                    }
                    let buf = self.batch_buf.expect("just set");
                    ctx.buffer_write(buf, self.batch.len(), rec);
                    self.batch.extend_from_slice(rec);
                    if self.batch.len() + rb > asan_core::BUFFER_BYTES {
                        self.flush(ctx);
                    }
                }
            }
            self.seen += payload.len() as u64;
            if self.seen >= self.expect_s {
                self.flush(ctx);
                ctx.send(self.host, Some(DONE_HANDLER), 0, &self.pass.to_le_bytes());
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.bytes(&pack_bits(&self.bv));
        w.u64(self.seen);
        w.u64(self.pass);
        w.bytes(&self.batch);
        w.opt_u64(self.batch_buf.map(|b| u64::from(b.0)));
        w.u32(self.out_addr);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.bv = unpack_bits(&r.bytes()?, self.bv.len())?;
        self.seen = r.u64()?;
        self.pass = r.u64()?;
        self.batch = r.bytes()?;
        self.batch_buf = match r.opt_u64()? {
            Some(v) => {
                Some(asan_core::BufId(u8::try_from(v).map_err(|_| {
                    SnapError::Malformed("buffer id out of range")
                })?))
            }
            None => None,
        };
        self.out_addr = r.u32()?;
        Ok(())
    }
}

/// Shares one [`JoinFilter`] between the BUILD and PROBE handler IDs
/// (the jump table holds one entry per ID; the state — the bit-vector —
/// is common). Each jump-table slot snapshots the shared state; the
/// restores write identical bytes, so the duplication is harmless.
#[derive(Clone)]
pub struct SharedFilter(pub std::rc::Rc<std::cell::RefCell<JoinFilter>>);

impl Handler for SharedFilter {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        self.0.borrow_mut().on_message(ctx);
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.0.borrow().snapshot_state(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.0.borrow_mut().restore_state(r)
    }
}

/// Active-case host program: R arrives via the switch (hash-table
/// build); filtered S arrives as batches (probe).
struct ActiveJoin {
    p: Params, // asan-lint: allow(snapshot-completeness)
    reader: BlockReader,
    s_plan: BlockPlan,
    phase: u8,
    st: JoinState,
    bv_pass_reported: Option<u64>,
    r_bytes_in: u64,
}

impl HostProgram for ActiveJoin {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        if self.reader.on_complete(ctx, req).is_none() {
            return;
        }
        self.reader.refill(ctx);
        if self.reader.done() && self.phase == 0 {
            self.phase = 1;
            self.reader = BlockReader::new(self.s_plan);
            self.reader.start(ctx);
        }
        // Phase 1 end: wait for the DONE message (data may still be in
        // flight through the switch).
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        let rb = self.p.record_bytes as usize;
        if msg.handler == Some(DONE_HANDLER) {
            self.bv_pass_reported =
                Some(u64::from_le_bytes(msg.data[..8].try_into().expect("count")));
            ctx.finish();
        } else if msg.handler == Some(BUILD_HANDLER) {
            // R records: build the real hash table.
            self.r_bytes_in += msg.data.len() as u64;
            for rec in msg.data.chunks_exact(rb) {
                let key = u64::from_le_bytes(rec[..8].try_into().expect("key"));
                ctx.cpu()
                    .compute(cost::JOIN_HASH_INSTR + cost::JOIN_INSERT_INSTR);
                let bucket = HASHTAB + (key.wrapping_mul(0x2545F4914F6CDD1D) % (32 << 20));
                ctx.cpu().load(bucket);
                ctx.cpu().store(bucket);
                *self.st.table.entry(key).or_insert(0) += 1;
            }
        } else {
            // Surviving S records: the real join probe.
            for rec in msg.data.chunks_exact(rb) {
                let key = u64::from_le_bytes(rec[..8].try_into().expect("key"));
                self.st.bv_pass += 1;
                ctx.cpu().compute(cost::JOIN_PROBE_INSTR);
                let bucket = HASHTAB + (key.wrapping_mul(0x2545F4914F6CDD1D) % (32 << 20));
                ctx.cpu().load(bucket);
                ctx.cpu().load(bucket + 64); // bucket chain / key page
                if self.st.table.contains_key(&key) {
                    self.st.matches += 1;
                }
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.u8(self.phase);
        self.reader.snapshot(w);
        self.st.snapshot(w);
        w.opt_u64(self.bv_pass_reported);
        w.u64(self.r_bytes_in);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.phase = r.u8()?;
        if self.phase == 1 {
            self.reader = BlockReader::new(self.s_plan);
        }
        self.reader.restore(r)?;
        self.st.restore(r)?;
        self.bv_pass_reported = r.opt_u64()?;
        self.r_bytes_in = r.u64()?;
        Ok(())
    }
}

/// Runs HashJoin in one configuration, validating pass and match
/// counts against the pure-Rust reference.
///
/// # Panics
///
/// Panics on any result mismatch.
pub fn run(variant: Variant, p: &Params) -> AppRun {
    run_with_config(variant, p, ClusterConfig::paper_db())
}

/// [`run`] with an explicit cluster configuration (used by the
/// ablation studies to vary the active-switch hardware).
pub fn run_with_config(variant: Variant, p: &Params, cfg: ClusterConfig) -> AppRun {
    let (r, s) = data::join_tables(
        p.r_bytes as usize,
        p.s_bytes as usize,
        p.record_bytes as usize,
    );
    let (want_pass, want_matches) = reference(&r, &s, p);
    let r = Arc::new(r);
    let s = Arc::new(s);

    let build = || {
        let (mut cl, hs, ts, sw) = standard_cluster(1, 1, cfg.clone());
        let rf = cl
            .add_file(ts[0], r.as_ref().clone())
            .expect("cluster setup");
        let sf = cl
            .add_file(ts[0], s.as_ref().clone())
            .expect("cluster setup");
        let host = hs[0];

        let filter = std::rc::Rc::new(std::cell::RefCell::new(JoinFilter::new(p.clone(), host)));
        if variant.is_active() {
            cl.register_handler(sw, BUILD_HANDLER, Box::new(SharedFilter(filter.clone())))
                .expect("cluster setup");
            cl.register_handler(sw, PROBE_HANDLER, Box::new(SharedFilter(filter.clone())))
                .expect("cluster setup");
            let s_plan = BlockPlan {
                file: sf,
                total: p.s_bytes,
                block: p.io_block,
                outstanding: variant.outstanding(),
                dest: Dest::Mapped {
                    node: sw,
                    handler: PROBE_HANDLER,
                    base_addr: 0,
                },
            };
            cl.set_program(
                host,
                Box::new(ActiveJoin {
                    p: p.clone(),
                    reader: BlockReader::new(BlockPlan {
                        file: rf,
                        total: p.r_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::Mapped {
                            node: sw,
                            handler: BUILD_HANDLER,
                            base_addr: 0,
                        },
                    }),
                    s_plan,
                    phase: 0,
                    st: JoinState::default(),
                    bv_pass_reported: None,
                    r_bytes_in: 0,
                }),
            )
            .expect("cluster setup");
        } else {
            let s_plan = BlockPlan {
                file: sf,
                total: p.s_bytes,
                block: p.io_block,
                outstanding: variant.outstanding(),
                dest: Dest::HostBuf { addr: S_BUF },
            };
            cl.set_program(
                host,
                Box::new(NormalJoin {
                    r: r.clone(),
                    s: s.clone(),
                    p: p.clone(),
                    phase: 0,
                    reader: BlockReader::new(BlockPlan {
                        file: rf,
                        total: p.r_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::HostBuf { addr: R_BUF },
                    }),
                    s_plan,
                    bv: vec![false; p.bits as usize],
                    st: JoinState::default(),
                }),
            )
            .expect("cluster setup");
        }
        (cl, (host, filter))
    };

    let (mut cl, (host, filter), report) = drive(&format!("hashjoin-{}", variant.label()), build);
    let (got_pass, got_matches) = if variant.is_active() {
        let program = cl.take_program(host).expect("program");
        let prog = program
            .as_any()
            .and_then(|a| a.downcast_ref::<ActiveJoin>())
            .expect("active join");
        assert_eq!(prog.r_bytes_in, p.r_bytes, "R did not fully reach host");
        assert_eq!(prog.bv_pass_reported, Some(want_pass), "switch pass count");
        assert_eq!(filter.borrow().pass_count(), want_pass, "filter state");
        (prog.st.bv_pass, prog.st.matches)
    } else {
        let program = cl.take_program(host).expect("program");
        let prog = program
            .as_any()
            .and_then(|a| a.downcast_ref::<NormalJoin>())
            .expect("normal join");
        (prog.st.bv_pass, prog.st.matches)
    };
    assert_eq!(got_pass, want_pass, "bit-vector pass count mismatch");
    assert_eq!(got_matches, want_matches, "join match count mismatch");
    AppRun::from_report(variant, &cl, &report, report.finish, got_matches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_pass_rate_near_024() {
        let p = Params::small();
        let (r, s) = data::join_tables(
            p.r_bytes as usize,
            p.s_bytes as usize,
            p.record_bytes as usize,
        );
        let (pass, matches) = reference(&r, &s, &p);
        let rate = pass as f64 / (s.len() as f64 / 128.0);
        assert!((0.16..0.34).contains(&rate), "pass rate {rate}");
        assert!(matches <= pass);
        assert!(matches > 0);
    }

    #[test]
    fn all_variants_agree() {
        let p = Params::small();
        let runs: Vec<AppRun> = Variant::ALL.iter().map(|&v| run(v, &p)).collect();
        let m = runs[0].artifact;
        for r in &runs {
            assert_eq!(r.artifact, m, "{:?}", r.variant);
        }
    }

    #[test]
    fn active_cuts_s_traffic() {
        let p = Params::small();
        let normal = run(Variant::NormalPref, &p);
        let active = run(Variant::ActivePref, &p);
        assert!(
            active.host_traffic < normal.host_traffic / 2,
            "active {} vs normal {}",
            active.host_traffic,
            normal.host_traffic
        );
    }
}
