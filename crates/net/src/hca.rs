//! Host channel adapter model.
//!
//! The paper's HCA (§4) sits on the memory controller and exposes a
//! queue-pair interface to user programs; receivers poll for completions
//! (§5, Collective Reduction: "The message receiver uses polling instead
//! of interrupts"). The costs that matter at system level are the
//! per-message send overhead (building a WQE, ringing the doorbell) and
//! the per-message receive overhead (polling the completion queue and
//! touching the landed data) — together these form the paper's `α`, the
//! fixed overhead of message communication.

use asan_cpu::Cpu;
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::{SimDuration, SimTime};

/// Cost parameters of one HCA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HcaConfig {
    /// Host instructions to post a send work-queue element and ring the
    /// doorbell.
    pub send_instr: u64,
    /// Host instructions to poll and consume one completion.
    pub recv_instr: u64,
    /// Adapter-side latency from doorbell to first byte on the wire
    /// (descriptor fetch, DMA start).
    pub send_latency: SimDuration,
    /// Adapter-side latency from last byte off the wire to the
    /// completion entry being visible to a polling host.
    pub recv_latency: SimDuration,
}

impl HcaConfig {
    /// Calibrated to an early-2000s InfiniBand HCA and its user-level
    /// software stack: posting a send costs ~2 µs of host instructions
    /// (descriptor build, doorbell, completion bookkeeping), polling a
    /// receive ~0.6 µs, and the adapter adds ~2 µs each way — together
    /// the paper's fixed message overhead α lands near 7–8 µs.
    pub fn paper() -> Self {
        HcaConfig {
            send_instr: 4_000,
            recv_instr: 1_200,
            send_latency: SimDuration::from_us(2),
            recv_latency: SimDuration::from_us(2),
        }
    }
}

/// A host channel adapter bound to one host.
///
/// The HCA itself is stateless between messages at this fidelity; it
/// charges CPU time for the queue-pair interaction and adds its fixed
/// latencies. Doorbell-to-wire pipelining across messages is modeled by
/// the fabric's link occupancy, not here.
#[derive(Debug, Clone)]
pub struct Hca {
    cfg: HcaConfig, // asan-lint: allow(snapshot-completeness)
    sends: u64,
    recvs: u64,
}

impl Hca {
    /// Creates an HCA.
    pub fn new(cfg: HcaConfig) -> Self {
        Hca {
            cfg,
            sends: 0,
            recvs: 0,
        }
    }

    /// The configured costs.
    pub fn config(&self) -> &HcaConfig {
        &self.cfg
    }

    /// Messages sent through this adapter.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Messages received through this adapter.
    pub fn recvs(&self) -> u64 {
        self.recvs
    }

    /// Charges the host CPU for posting a send and returns the time at
    /// which the message is ready at the wire.
    pub fn post_send(&mut self, cpu: &mut Cpu) -> SimTime {
        self.sends += 1;
        cpu.compute(self.cfg.send_instr);
        cpu.now() + self.cfg.send_latency
    }

    /// The time a message that finished arriving at `arrival` becomes
    /// visible to a polling receiver.
    pub fn completion_visible(&mut self, arrival: SimTime) -> SimTime {
        self.recvs += 1;
        arrival + self.cfg.recv_latency
    }

    /// Charges the host CPU for consuming one completion (poll hit plus
    /// descriptor recycling).
    pub fn consume_completion(&self, cpu: &mut Cpu) {
        cpu.compute(self.cfg.recv_instr);
    }

    /// Writes the message counters (the HCA is otherwise stateless
    /// between messages).
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.sends);
        w.u64(self.recvs);
    }

    /// Overwrites the message counters from a snapshot.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.sends = r.u64()?;
        self.recvs = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_cpu::CpuConfig;

    #[test]
    fn post_send_charges_cpu_and_adds_latency() {
        let mut hca = Hca::new(HcaConfig::paper());
        let mut cpu = Cpu::new(CpuConfig::host());
        let t = hca.post_send(&mut cpu);
        assert_eq!(hca.sends(), 1);
        // 4000 instructions at 2 GHz = 2 us busy (plus ifetch stalls),
        // then the adapter's send latency.
        assert_eq!(t, cpu.now() + hca.config().send_latency);
        assert!(cpu.breakdown().busy.as_us() >= 2);
    }

    #[test]
    fn completion_visible_after_recv_latency() {
        let mut hca = Hca::new(HcaConfig::paper());
        let t = hca.completion_visible(SimTime::from_us(10));
        assert_eq!(t, SimTime::from_us(10) + hca.config().recv_latency);
        assert_eq!(hca.recvs(), 1);
    }

    #[test]
    fn consume_completion_charges_cpu() {
        let hca = Hca::new(HcaConfig::paper());
        let mut cpu = Cpu::new(CpuConfig::host());
        hca.consume_completion(&mut cpu);
        assert!(cpu.instructions() >= 1_200);
    }
}
