//! Host (and embedded switch) processor timing models.
//!
//! The reproduction charges application work against an in-order,
//! single-issue core model ([`Cpu`]) whose memory references walk the
//! detailed hierarchy in [`asan_mem`]. Application drivers process *real
//! data* and call the charge methods as they go, so cache behaviour —
//! the paper's central host-side effect — emerges from the actual access
//! patterns rather than from assumed constants.
//!
//! # Example
//!
//! ```
//! use asan_cpu::{Cpu, CpuConfig};
//!
//! // Scan 1 MB of 128-byte records, 20 instructions each, like the
//! // paper's Select inner loop.
//! let mut cpu = Cpu::new(CpuConfig::host_db());
//! cpu.scan(0x1000_0000, 1 << 20, 128, 20, false);
//! let b = cpu.breakdown();
//! assert!(b.stall.as_ns() > 0, "streaming scans are memory-bound");
//! ```

pub mod model;

pub use model::{Cpu, CpuConfig};
