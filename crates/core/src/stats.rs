//! Whole-cluster statistics report.
//!
//! Gathers the low-level counters every component already keeps — cache
//! and TLB hit ratios, DRAM page behaviour, link utilization and credit
//! stalls, disk seeks, buffer-file occupancy, ATB traffic — into one
//! structured snapshot, so a run can be *explained*, not just timed.
//! (The paper's analyses lean on exactly these quantities: "the cache
//! stall time comprises a significant part of the total execution time —
//! 27.6% for the normal+pref case".)

use std::fmt;

use asan_net::NodeId;
use asan_sim::faults::{fnv1a_fold, FaultStats};

/// Cache counters for one level.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheSnapshot {
    /// Demand accesses.
    pub accesses: u64,
    /// Misses among them.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheSnapshot {
    /// Miss ratio (0 if never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// One CPU's memory-system behaviour.
#[derive(Debug, Clone, Default)]
pub struct CpuSnapshot {
    /// Instructions retired.
    pub instructions: u64,
    /// L1 data cache.
    pub l1d: CacheSnapshot,
    /// L1 instruction cache.
    pub l1i: CacheSnapshot,
    /// Unified L2, if present.
    pub l2: Option<CacheSnapshot>,
    /// DRAM page hits/misses behind this CPU.
    pub dram_page_hits: u64,
    /// DRAM row activations.
    pub dram_page_misses: u64,
}

/// One host's statistics.
#[derive(Debug, Clone)]
pub struct HostSnapshot {
    /// Node ID.
    pub node: NodeId,
    /// CPU + memory counters.
    pub cpu: CpuSnapshot,
    /// Messages sent / received through the HCA.
    pub hca_sends: u64,
    /// Completions consumed.
    pub hca_recvs: u64,
}

/// One active switch's statistics.
#[derive(Debug, Clone)]
pub struct SwitchSnapshot {
    /// Node ID.
    pub node: NodeId,
    /// Handler invocations dispatched.
    pub invocations: u64,
    /// Active payload bytes in / out.
    pub bytes_in: u64,
    /// Bytes emitted by handlers.
    pub bytes_out: u64,
    /// Buffer-file allocations and how many had to wait.
    pub buffer_allocs: u64,
    /// Allocations that waited for a release.
    pub buffer_waits: u64,
    /// Peak buffers in flight.
    pub buffer_peak: u64,
    /// ATB translations that hit.
    pub atb_hits: u64,
    /// ATB misses (unmapped addresses probed).
    pub atb_misses: u64,
    /// Per-CPU memory counters.
    pub cpus: Vec<CpuSnapshot>,
}

/// One storage array's statistics.
#[derive(Debug, Clone)]
pub struct StorageSnapshot {
    /// TCA node ID.
    pub node: NodeId,
    /// Bytes read/written per disk.
    pub disk_bytes: Vec<u64>,
    /// Seeks per disk.
    pub disk_seeks: Vec<u64>,
    /// SCSI bursts carried.
    pub bus_bursts: u64,
    /// SCSI bytes carried.
    pub bus_bytes: u64,
}

/// Fabric-level statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricSnapshot {
    /// Total bytes carried summed over every link hop.
    pub link_bytes: u64,
    /// Sends that stalled for a credit.
    pub credit_stalls: u64,
}

/// The full cluster snapshot.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Per-host entries.
    pub hosts: Vec<HostSnapshot>,
    /// Per-switch entries.
    pub switches: Vec<SwitchSnapshot>,
    /// Per-storage-array entries.
    pub storage: Vec<StorageSnapshot>,
    /// Fabric totals.
    pub fabric: FabricSnapshot,
    /// Fault-injection counters (all zero when no plan was armed).
    pub faults: FaultStats,
    /// Events the simulation processed.
    pub events: u64,
}

impl ClusterStats {
    /// FNV-1a digest over every counter in a fixed canonical order.
    /// Two runs with the same seed and fault plan must produce
    /// identical digests — the CI determinism check compares exactly
    /// this value.
    pub fn digest(&self) -> u64 {
        let mut h = fnv1a_fold(0xcbf2_9ce4_8422_2325, self.events);
        let fold_cpu = |h: u64, c: &CpuSnapshot| {
            let mut h = fnv1a_fold(h, c.instructions);
            for s in [&c.l1d, &c.l1i].into_iter().chain(c.l2.as_ref()) {
                h = fnv1a_fold(h, s.accesses);
                h = fnv1a_fold(h, s.misses);
                h = fnv1a_fold(h, s.writebacks);
            }
            fnv1a_fold(fnv1a_fold(h, c.dram_page_hits), c.dram_page_misses)
        };
        for host in &self.hosts {
            h = fnv1a_fold(h, host.node.0 as u64);
            h = fold_cpu(h, &host.cpu);
            h = fnv1a_fold(fnv1a_fold(h, host.hca_sends), host.hca_recvs);
        }
        for sw in &self.switches {
            for v in [
                sw.node.0 as u64,
                sw.invocations,
                sw.bytes_in,
                sw.bytes_out,
                sw.buffer_allocs,
                sw.buffer_waits,
                sw.buffer_peak,
                sw.atb_hits,
                sw.atb_misses,
            ] {
                h = fnv1a_fold(h, v);
            }
            for c in &sw.cpus {
                h = fold_cpu(h, c);
            }
        }
        for st in &self.storage {
            h = fnv1a_fold(h, st.node.0 as u64);
            for &b in st.disk_bytes.iter().chain(&st.disk_seeks) {
                h = fnv1a_fold(h, b);
            }
            h = fnv1a_fold(fnv1a_fold(h, st.bus_bursts), st.bus_bytes);
        }
        h = fnv1a_fold(
            fnv1a_fold(h, self.fabric.link_bytes),
            self.fabric.credit_stalls,
        );
        fnv1a_fold(h, self.faults.digest())
    }
}

impl fmt::Display for ClusterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cluster statistics ({} events)", self.events)?;
        for h in &self.hosts {
            writeln!(
                f,
                "  host {}: {} instr | L1D miss {:.2}% | L2 miss {:.2}% | DRAM page-hit {:.1}% | HCA {}tx/{}rx",
                h.node,
                h.cpu.instructions,
                h.cpu.l1d.miss_ratio() * 100.0,
                h.cpu.l2.map_or(0.0, |l2| l2.miss_ratio() * 100.0),
                page_hit_pct(&h.cpu),
                h.hca_sends,
                h.hca_recvs,
            )?;
        }
        for s in &self.switches {
            writeln!(
                f,
                "  switch {}: {} invocations | {} B in / {} B out | buffers peak {} ({} waits/{} allocs) | ATB {}h/{}m",
                s.node,
                s.invocations,
                s.bytes_in,
                s.bytes_out,
                s.buffer_peak,
                s.buffer_waits,
                s.buffer_allocs,
                s.atb_hits,
                s.atb_misses,
            )?;
            for (i, c) in s.cpus.iter().enumerate() {
                writeln!(
                    f,
                    "    sp{}: {} instr | D$ miss {:.2}% | I$ miss {:.2}%",
                    i,
                    c.instructions,
                    c.l1d.miss_ratio() * 100.0,
                    c.l1i.miss_ratio() * 100.0,
                )?;
            }
        }
        for st in &self.storage {
            writeln!(
                f,
                "  storage {}: disks {:?} B ({:?} seeks) | bus {} bursts / {} B",
                st.node, st.disk_bytes, st.disk_seeks, st.bus_bursts, st.bus_bytes,
            )?;
        }
        writeln!(
            f,
            "  fabric: {} B over links, {} credit stalls",
            self.fabric.link_bytes, self.fabric.credit_stalls
        )?;
        write!(f, "  faults: {}", self.faults)
    }
}

/// Snapshots one cache level's counters.
pub(crate) fn snap_cache(c: &asan_mem::Cache) -> CacheSnapshot {
    CacheSnapshot {
        accesses: c.stats().accesses(),
        misses: c.stats().misses.get(),
        writebacks: c.stats().writebacks.get(),
    }
}

/// Snapshots one CPU's memory-system counters.
pub(crate) fn snap_cpu(cpu: &asan_cpu::Cpu) -> CpuSnapshot {
    let m = cpu.memory();
    CpuSnapshot {
        instructions: cpu.instructions(),
        l1d: snap_cache(m.l1d()),
        l1i: snap_cache(m.l1i()),
        l2: m.l2().map(snap_cache),
        dram_page_hits: m.dram().stats().page_hits.get(),
        dram_page_misses: m.dram().stats().page_misses.get(),
    }
}

fn page_hit_pct(c: &CpuSnapshot) -> f64 {
    let total = c.dram_page_hits + c.dram_page_misses;
    if total == 0 {
        0.0
    } else {
        c.dram_page_hits as f64 / total as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_handles_zero() {
        assert_eq!(CacheSnapshot::default().miss_ratio(), 0.0);
        let c = CacheSnapshot {
            accesses: 4,
            misses: 1,
            writebacks: 0,
        };
        assert!((c.miss_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_renders_all_sections() {
        let stats = ClusterStats {
            hosts: vec![HostSnapshot {
                node: NodeId(1),
                cpu: CpuSnapshot {
                    instructions: 100,
                    l1d: CacheSnapshot {
                        accesses: 10,
                        misses: 5,
                        writebacks: 1,
                    },
                    l1i: CacheSnapshot::default(),
                    l2: Some(CacheSnapshot {
                        accesses: 5,
                        misses: 1,
                        writebacks: 0,
                    }),
                    dram_page_hits: 3,
                    dram_page_misses: 1,
                },
                hca_sends: 2,
                hca_recvs: 3,
            }],
            switches: vec![SwitchSnapshot {
                node: NodeId(0),
                invocations: 7,
                bytes_in: 512,
                bytes_out: 256,
                buffer_allocs: 9,
                buffer_waits: 1,
                buffer_peak: 3,
                atb_hits: 20,
                atb_misses: 2,
                cpus: vec![CpuSnapshot::default()],
            }],
            storage: vec![StorageSnapshot {
                node: NodeId(2),
                disk_bytes: vec![100, 200],
                disk_seeks: vec![1, 0],
                bus_bursts: 4,
                bus_bytes: 300,
            }],
            fabric: FabricSnapshot {
                link_bytes: 1024,
                credit_stalls: 0,
            },
            faults: FaultStats::default(),
            events: 42,
        };
        let text = stats.to_string();
        for needle in [
            "42 events",
            "host n1",
            "L1D miss 50.00%",
            "switch n0: 7 invocations",
            "storage n2",
            "1024 B over links",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
