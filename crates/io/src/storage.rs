//! The storage subsystem behind one TCA: striped disks on a SCSI bus.
//!
//! Composes the [`Disk`] and [`ScsiBus`]
//! models into the paper's I/O system:
//! two disks striped for an aggregate 100 MB/s, sharing one Ultra-320
//! bus, fronted by a TCA that packetizes data into MTU-sized network
//! packets. The key output is a *per-packet ready time* schedule — when
//! each 512-byte packet of a read is available at the TCA's network
//! port — which the cluster feeds into the fabric.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::{SimDuration, SimTime};

use crate::disk::{Disk, DiskConfig};
use crate::scsi::{ScsiBus, ScsiConfig};

/// Configuration of the storage array + TCA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageConfig {
    /// Number of disks (2 in the paper).
    pub num_disks: usize,
    /// Per-disk mechanical parameters.
    pub disk: DiskConfig,
    /// Shared bus parameters.
    pub scsi: ScsiConfig,
    /// Striping unit across the disks.
    pub stripe_bytes: u64,
    /// SCSI burst size (one arbitration per burst).
    pub burst_bytes: u64,
    /// TCA processing latency per outgoing network packet.
    pub tca_packet_latency: SimDuration,
    /// Network MTU used for packetization.
    pub mtu: u64,
}

impl StorageConfig {
    /// The paper's I/O subsystem: 2 × 50 MB/s disks, Ultra-320 bus,
    /// 16 KB stripes (so even a single 64 KB request engages both
    /// disks, delivering the paper's 100 MB/s aggregate), 4 KB bus
    /// bursts, 512 B MTU.
    pub fn paper() -> Self {
        StorageConfig {
            num_disks: 2,
            disk: DiskConfig::paper(),
            scsi: ScsiConfig::ultra320(),
            stripe_bytes: 16 * 1024,
            burst_bytes: 4 * 1024,
            tca_packet_latency: SimDuration::from_ns(300),
            mtu: 512,
        }
    }
}

/// Schedule of one streamed read: when each MTU packet is ready to
/// leave the TCA.
#[derive(Debug, Clone)]
pub struct ReadSchedule {
    /// Ready time of each MTU packet, in logical byte order.
    pub packet_ready: Vec<SimTime>,
    /// Payload length of each packet (the last may be short).
    pub packet_len: Vec<u32>,
    /// When the final byte cleared the SCSI bus.
    pub complete: SimTime,
}

impl ReadSchedule {
    /// Number of packets in the read.
    pub fn len(&self) -> usize {
        self.packet_ready.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.packet_ready.is_empty()
    }
}

/// The storage array owned by one TCA.
///
/// # Example
///
/// ```
/// use asan_io::storage::{Storage, StorageConfig};
/// use asan_sim::SimTime;
/// let mut s = Storage::new(StorageConfig::paper());
/// let sched = s.read_stream(0, 64 * 1024, SimTime::ZERO);
/// assert_eq!(sched.len(), 128); // 64 KB / 512 B
/// ```
#[derive(Debug)]
pub struct Storage {
    cfg: StorageConfig, // asan-lint: allow(snapshot-completeness)
    disks: Vec<Disk>,
    bus: ScsiBus,
}

impl Storage {
    /// Creates the array with all disks cold.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero disks or a stripe/burst/MTU
    /// of zero.
    pub fn new(cfg: StorageConfig) -> Self {
        assert!(cfg.num_disks > 0, "need at least one disk");
        assert!(
            cfg.stripe_bytes > 0 && cfg.burst_bytes > 0 && cfg.mtu > 0,
            "zero-sized unit"
        );
        Storage {
            disks: (0..cfg.num_disks).map(|_| Disk::new(cfg.disk)).collect(),
            bus: ScsiBus::new(cfg.scsi),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StorageConfig {
        &self.cfg
    }

    /// Per-disk models, for statistics.
    pub fn disks(&self) -> &[Disk] {
        &self.disks
    }

    /// The shared bus, for statistics.
    pub fn bus(&self) -> &ScsiBus {
        &self.bus
    }

    /// Injects a latency spike: every disk's next request pays full
    /// mechanical positioning even if sequential.
    pub fn force_seek_next(&mut self) {
        for d in &mut self.disks {
            d.force_seek_next();
        }
    }

    /// Holds the SCSI bus busy until `until` (injected bus reset).
    pub fn inject_bus_stall(&mut self, until: SimTime) {
        self.bus.inject_stall(until);
    }

    /// Streams a read of `len` bytes at logical `offset`, requested at
    /// `now`; returns the per-packet ready schedule at the TCA.
    ///
    /// The stripe units are read in logical order; each unit's bytes
    /// cross the bus in `burst_bytes` bursts as the platter delivers
    /// them, and every `mtu` bytes that clear the bus become one network
    /// packet after the TCA's per-packet latency.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn read_stream(&mut self, offset: u64, len: u64, now: SimTime) -> ReadSchedule {
        assert!(len > 0, "zero-length read");
        let stripe = self.cfg.stripe_bytes;
        let n_disks = self.cfg.num_disks as u64;

        // Issue each disk's portion as one sequential request covering
        // all its stripe units in this read (they are contiguous in the
        // per-disk address space).
        let first_unit = offset / stripe;
        let last_unit = (offset + len - 1) / stripe;
        let mut disk_xfers = Vec::new(); // per unit: (disk xfer, base within xfer)
        let mut per_disk_span: Vec<Option<(u64, u64)>> = vec![None; self.cfg.num_disks];
        for unit in first_unit..=last_unit {
            let disk = (unit % n_disks) as usize;
            let unit_start = (unit * stripe).max(offset);
            let unit_end = ((unit + 1) * stripe).min(offset + len);
            let disk_off = (unit / n_disks) * stripe + (unit_start - unit * stripe);
            let span = per_disk_span[disk].get_or_insert((disk_off, 0));
            span.1 += unit_end - unit_start;
        }
        let mut per_disk_xfer = Vec::with_capacity(self.cfg.num_disks);
        for (d, span) in per_disk_span.iter().enumerate() {
            per_disk_xfer.push(span.map(|(off, bytes)| self.disks[d].read(off, bytes, now)));
        }
        // Cursor into each disk's transfer as units consume it.
        let mut disk_cursor = vec![0u64; self.cfg.num_disks];
        for unit in first_unit..=last_unit {
            let disk = (unit % n_disks) as usize;
            let unit_start = (unit * stripe).max(offset);
            let unit_end = ((unit + 1) * stripe).min(offset + len);
            let xfer = per_disk_xfer[disk].expect("disk has data");
            disk_xfers.push((xfer, disk_cursor[disk], unit_end - unit_start));
            disk_cursor[disk] += unit_end - unit_start;
        }

        // Move each unit across the bus in bursts, in logical order, and
        // cut packets as bytes clear the bus.
        let mut packet_ready = Vec::with_capacity((len / self.cfg.mtu + 1) as usize);
        let mut packet_len = Vec::with_capacity(packet_ready.capacity());
        let mut pkt_fill = 0u64; // bytes of the current packet already crossed
        let mut complete = now;
        for (xfer, base, unit_len) in disk_xfers {
            let mut done = 0u64;
            while done < unit_len {
                let burst = self.cfg.burst_bytes.min(unit_len - done);
                // The burst can start once its last byte is off the platter.
                let ready = xfer.byte_ready(base + done + burst);
                let bx = self.bus.burst(burst, ready);
                complete = complete.max(bx.complete);
                // Cut MTU packets as bytes cross.
                let mut in_burst = 0u64;
                while in_burst < burst {
                    let need = self.cfg.mtu - pkt_fill;
                    let take = need.min(burst - in_burst);
                    in_burst += take;
                    pkt_fill += take;
                    if pkt_fill == self.cfg.mtu {
                        packet_ready.push(bx.byte_ready(in_burst) + self.cfg.tca_packet_latency);
                        packet_len.push(self.cfg.mtu as u32);
                        pkt_fill = 0;
                    }
                }
                done += burst;
            }
        }
        if pkt_fill > 0 {
            packet_ready.push(complete + self.cfg.tca_packet_latency);
            packet_len.push(pkt_fill as u32);
        }
        ReadSchedule {
            packet_ready,
            packet_len,
            complete,
        }
    }

    /// Writes `len` bytes at logical `offset`, with the data fully
    /// available at the TCA at `now`; returns the completion time.
    pub fn write(&mut self, offset: u64, len: u64, now: SimTime) -> SimTime {
        assert!(len > 0, "zero-length write");
        let stripe = self.cfg.stripe_bytes;
        let n_disks = self.cfg.num_disks as u64;
        let first_unit = offset / stripe;
        let last_unit = (offset + len - 1) / stripe;
        let mut per_disk: Vec<Option<(u64, u64)>> = vec![None; self.cfg.num_disks];
        for unit in first_unit..=last_unit {
            let disk = (unit % n_disks) as usize;
            let unit_start = (unit * stripe).max(offset);
            let unit_end = ((unit + 1) * stripe).min(offset + len);
            let disk_off = (unit / n_disks) * stripe + (unit_start - unit * stripe);
            let span = per_disk[disk].get_or_insert((disk_off, 0));
            span.1 += unit_end - unit_start;
        }
        let mut complete = now;
        for (d, span) in per_disk.iter().enumerate() {
            if let Some((off, bytes)) = span {
                // Data crosses the bus first, then lands on the platter.
                let bx = self.bus.burst(*bytes, now);
                let dx = self.disks[d].write(*off, *bytes, bx.complete);
                complete = complete.max(dx.complete);
            }
        }
        complete
    }

    /// Writes every disk's mechanical state and the bus occupancy.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.section("storage");
        w.usize(self.disks.len());
        for d in &self.disks {
            d.snapshot(w);
        }
        self.bus.snapshot(w);
    }

    /// Overwrites this array's dynamic state from a snapshot taken of
    /// an array with the same configuration.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("storage")?;
        let n = r.usize()?;
        if n != self.disks.len() {
            return Err(SnapError::Malformed("storage disk count mismatch"));
        }
        for d in &mut self.disks {
            d.restore(r)?;
        }
        self.bus.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_count_and_sizes() {
        let mut s = Storage::new(StorageConfig::paper());
        let sched = s.read_stream(0, 1300, SimTime::ZERO);
        assert_eq!(sched.len(), 3);
        assert_eq!(sched.packet_len, vec![512, 512, 276]);
    }

    #[test]
    fn ready_times_are_nondecreasing() {
        let mut s = Storage::new(StorageConfig::paper());
        let sched = s.read_stream(0, 256 * 1024, SimTime::ZERO);
        assert_eq!(sched.len(), 512);
        for w in sched.packet_ready.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(*sched.packet_ready.last().unwrap() >= sched.complete);
    }

    #[test]
    fn aggregate_bandwidth_approaches_100mbs() {
        let mut s = Storage::new(StorageConfig::paper());
        // Stream 8 MB from the start (heads parked at 0: no seek).
        let sched = s.read_stream(0, 8 << 20, SimTime::ZERO);
        let secs = sched.complete.as_secs_f64();
        let rate = (8 << 20) as f64 / secs;
        assert!(
            (80e6..105e6).contains(&rate),
            "aggregate disk rate = {rate:.1} B/s"
        );
    }

    #[test]
    fn both_disks_participate() {
        let mut s = Storage::new(StorageConfig::paper());
        s.read_stream(0, 256 * 1024, SimTime::ZERO);
        assert!(s.disks()[0].stats().bytes.get() > 0);
        assert!(s.disks()[1].stats().bytes.get() > 0);
        assert_eq!(
            s.disks()[0].stats().bytes.get() + s.disks()[1].stats().bytes.get(),
            256 * 1024
        );
    }

    #[test]
    fn sequential_requests_avoid_reseeking() {
        let mut s = Storage::new(StorageConfig::paper());
        let a = s.read_stream(0, 128 * 1024, SimTime::ZERO);
        s.read_stream(128 * 1024, 128 * 1024, a.complete);
        // Heads start parked at 0 and the stream is contiguous per
        // disk: no positioning at all.
        assert_eq!(s.disks()[0].stats().seeks.get(), 0);
        assert_eq!(s.disks()[1].stats().seeks.get(), 0);
    }

    #[test]
    fn small_unaligned_read() {
        let mut s = Storage::new(StorageConfig::paper());
        let sched = s.read_stream(1000, 100, SimTime::ZERO);
        assert_eq!(sched.len(), 1);
        assert_eq!(sched.packet_len, vec![100]);
    }

    #[test]
    fn write_spanning_stripes_uses_both_disks() {
        let mut s = Storage::new(StorageConfig::paper());
        s.write(0, 64 * 1024, SimTime::ZERO); // 4 stripes of 16 KB
        assert!(s.disks()[0].stats().bytes.get() > 0);
        assert!(s.disks()[1].stats().bytes.get() > 0);
        assert_eq!(
            s.disks()[0].stats().bytes.get() + s.disks()[1].stats().bytes.get(),
            64 * 1024
        );
    }

    #[test]
    fn interleaved_reads_stay_causal() {
        // Two reads issued close together: the second's packets never
        // become ready before the first's last packet.
        let mut s = Storage::new(StorageConfig::paper());
        let a = s.read_stream(0, 64 * 1024, SimTime::ZERO);
        let b = s.read_stream(64 * 1024, 64 * 1024, SimTime::from_us(5));
        assert!(b.packet_ready[0] >= *a.packet_ready.last().unwrap());
    }

    #[test]
    fn write_touches_bus_and_disk() {
        let mut s = Storage::new(StorageConfig::paper());
        let t = s.write(0, 64 * 1024, SimTime::ZERO);
        assert!(t > SimTime::ZERO);
        assert!(s.bus().stats().bytes.get() >= 64 * 1024);
    }

    #[test]
    fn snapshot_restores_heads_and_bus_occupancy() {
        let mut s = Storage::new(StorageConfig::paper());
        s.read_stream(0, 128 * 1024, SimTime::ZERO);
        let mut w = SnapWriter::new();
        s.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = Storage::new(StorageConfig::paper());
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();
        // Continuing the contiguous stream: identical packet schedules
        // (no re-seek, same bus queueing).
        let t = SimTime::from_us(10);
        let a = s.read_stream(128 * 1024, 64 * 1024, t);
        let b = back.read_stream(128 * 1024, 64 * 1024, t);
        assert_eq!(a.packet_ready, b.packet_ready);
        assert_eq!(a.packet_len, b.packet_len);
        assert_eq!(a.complete, b.complete);
        assert_eq!(back.disks()[0].stats().seeks.get(), 0);
    }

    #[test]
    fn read_spanning_many_stripes_is_in_logical_order() {
        let mut s = Storage::new(StorageConfig::paper());
        // 3 stripes + a bit: packets must still be monotonic.
        let sched = s.read_stream(0, 200 * 1024, SimTime::ZERO);
        for w in sched.packet_ready.windows(2) {
            assert!(w[0] <= w[1]);
        }
        let total: u64 = sched.packet_len.iter().map(|&l| l as u64).sum();
        assert_eq!(total, 200 * 1024);
    }
}
