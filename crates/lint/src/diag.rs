//! Diagnostics and the two output formats (`human`, `json`).

use std::fmt;

/// How severe a finding is. `Deny` findings fail the run (exit 1);
/// `Warn` findings are reported but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, non-fatal.
    Warn,
    /// Fails the run.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// One finding, anchored to a file, line, and column.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (the name accepted by `allow(...)`).
    pub rule: &'static str,
    /// Severity level.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters). `0` when a finding has no single
    /// anchoring token (rendered as column 1).
    pub col: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Diagnostic {
    /// The stable ordering key: workspace-relative path, line, column,
    /// rule. Two lint runs over the same tree byte-diff cleanly
    /// because every diagnostic stream is sorted by this key.
    pub fn sort_key(&self) -> (&str, u32, u32, &'static str) {
        (self.file.as_str(), self.line, self.col, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}:{}: {}",
            self.severity,
            self.rule,
            self.file,
            self.line,
            self.col.max(1),
            self.message
        )
    }
}

/// Run-level counters rendered alongside the diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct Summary {
    /// Files lexed and checked.
    pub checked_files: usize,
    /// Catalog version (bumped whenever the rule set changes).
    pub catalog_version: u32,
    /// Findings suppressed by `--baseline`.
    pub baselined: usize,
    /// Findings `check --fix` can rewrite mechanically.
    pub fixable: usize,
}

/// Renders the full human-format report.
pub fn render_human(diags: &[Diagnostic], sum: &Summary) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&format!(
        "asan-lint: {} files checked, {} finding(s) ({denies} deny",
        sum.checked_files,
        diags.len(),
    ));
    if sum.baselined > 0 {
        out.push_str(&format!(", {} baselined", sum.baselined));
    }
    if sum.fixable > 0 {
        out.push_str(&format!(", {} fixable", sum.fixable));
    }
    out.push_str(")\n");
    out
}

/// Renders the machine-readable JSON report (stable field order; no
/// external JSON crate, so strings are escaped by hand).
pub fn render_json(diags: &[Diagnostic], sum: &Summary) -> String {
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    let mut out = String::from("{\n  \"catalog_version\": ");
    out.push_str(&sum.catalog_version.to_string());
    out.push_str(",\n  \"checked_files\": ");
    out.push_str(&sum.checked_files.to_string());
    out.push_str(",\n  \"violations\": ");
    out.push_str(&denies.to_string());
    out.push_str(",\n  \"baselined\": ");
    out.push_str(&sum.baselined.to_string());
    out.push_str(",\n  \"fixable\": ");
    out.push_str(&sum.fixable.to_string());
    out.push_str(",\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_str(d.rule),
            json_str(&d.severity.to_string()),
            json_str(&d.file),
            d.line,
            d.col.max(1),
            json_str(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "no-wall-clock",
            severity: Severity::Deny,
            file: "crates/core/src/lib.rs".into(),
            line: 7,
            col: 13,
            message: "say \"no\" to wall clocks".into(),
        }
    }

    fn summary() -> Summary {
        Summary {
            checked_files: 3,
            catalog_version: 2,
            baselined: 0,
            fixable: 0,
        }
    }

    #[test]
    fn human_format_has_location_and_counts() {
        let text = render_human(&[sample()], &summary());
        assert!(text.contains("deny[no-wall-clock] crates/core/src/lib.rs:7:13:"));
        assert!(text.contains("3 files checked, 1 finding(s) (1 deny)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let text = render_json(&[sample()], &summary());
        assert!(text.contains("\"violations\": 1"));
        assert!(text.contains("\"catalog_version\": 2"));
        assert!(text.contains("\\\"no\\\""));
        assert!(text.contains("\"line\": 7"));
        assert!(text.contains("\"col\": 13"));
    }

    #[test]
    fn json_empty_is_clean() {
        let text = render_json(&[], &Summary::default());
        assert!(text.contains("\"violations\": 0"));
        assert!(text.contains("\"diagnostics\": []"));
    }

    #[test]
    fn sort_key_orders_by_path_line_col_rule() {
        let mut a = sample();
        a.line = 2;
        let mut b = sample();
        b.line = 10;
        let mut v = [b, a];
        v.sort_by(|x, y| x.sort_key().cmp(&y.sort_key()));
        assert_eq!(v[0].line, 2);
    }
}
