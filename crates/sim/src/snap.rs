//! Versioned, dependency-free binary snapshot encoding.
//!
//! Crash-safe simulation needs a way to freeze a mid-run cluster —
//! event queue, RNG cursors, engine state, fault counters — and revive
//! it in a fresh process such that the continued run is bit-identical
//! to one that never stopped. The encoding here is deliberately dumb:
//! little-endian fixed-width primitives behind a magic/version
//! envelope, with named section tags so a reader that drifts out of
//! sync fails loudly at the next section boundary instead of silently
//! misinterpreting bytes.
//!
//! Every stateful type in the workspace exposes hand-written
//! `snapshot(&self, &mut SnapWriter)` / `restore(...)` methods built
//! on these primitives. Hand-written (rather than derived) codecs keep
//! the field list visible in source, which is what lets `asan-lint`'s
//! `snapshot-completeness` rule check that no state field is silently
//! left out of its snapshot.
//!
//! # Example
//!
//! ```
//! use asan_sim::snap::{SnapReader, SnapWriter};
//!
//! let mut w = SnapWriter::new();
//! w.section("demo");
//! w.u64(42);
//! w.str("hello");
//! let bytes = w.into_bytes();
//!
//! let mut r = SnapReader::new(&bytes).unwrap();
//! r.section("demo").unwrap();
//! assert_eq!(r.u64().unwrap(), 42);
//! assert_eq!(r.str().unwrap(), "hello");
//! r.finish().unwrap();
//! ```

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Magic bytes opening every snapshot (`ASNP` — Active SAN snapshot).
const MAGIC: [u8; 4] = *b"ASNP";

/// Current encoding version. Bump on any incompatible layout change;
/// readers reject snapshots from other versions rather than guessing.
pub const SNAP_VERSION: u16 = 1;

/// Why a snapshot could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the requested value.
    Truncated {
        /// Bytes needed beyond the end of the buffer.
        needed: usize,
    },
    /// The buffer does not start with the snapshot magic.
    BadMagic,
    /// The snapshot was written by an incompatible encoder version.
    BadVersion {
        /// The version found in the envelope.
        found: u16,
    },
    /// A section tag did not match the expected name.
    BadSection {
        /// The section the reader expected.
        expected: String,
        /// The section actually present.
        found: String,
    },
    /// A value decoded but is semantically impossible.
    Malformed(&'static str),
    /// Trailing bytes remained after [`SnapReader::finish`].
    TrailingBytes {
        /// Number of undecoded bytes left.
        left: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed } => {
                write!(f, "snapshot truncated ({needed} more bytes needed)")
            }
            SnapError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapError::BadVersion { found } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (want {SNAP_VERSION})"
                )
            }
            SnapError::BadSection { expected, found } => {
                write!(
                    f,
                    "snapshot section mismatch: expected `{expected}`, found `{found}`"
                )
            }
            SnapError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapError::TrailingBytes { left } => {
                write!(f, "snapshot has {left} trailing bytes")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Serializes primitives into a versioned snapshot buffer.
#[derive(Debug)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl Default for SnapWriter {
    fn default() -> Self {
        SnapWriter::new()
    }
}

impl SnapWriter {
    /// Creates a writer with the magic/version envelope already
    /// emitted.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&SNAP_VERSION.to_le_bytes());
        SnapWriter { buf }
    }

    /// Emits a named section tag. Readers that call
    /// [`SnapReader::section`] with the same name verify the stream is
    /// still in sync.
    pub fn section(&mut self, name: &str) {
        self.str(name);
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u128`.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent width).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a boolean as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes an `f64` by its exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a [`SimTime`] (raw picoseconds).
    pub fn time(&mut self, t: SimTime) {
        self.u64(t.as_ps());
    }

    /// Writes a [`SimDuration`] (raw picoseconds).
    pub fn dur(&mut self, d: SimDuration) {
        self.u64(d.as_ps());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes `Some(v)`/`None` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        self.bool(v.is_some());
        self.u64(v.unwrap_or(0));
    }

    /// Writes an optional [`SimTime`].
    pub fn opt_time(&mut self, t: Option<SimTime>) {
        self.opt_u64(t.map(SimTime::as_ps));
    }

    /// Finishes the snapshot, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Decodes a snapshot buffer produced by [`SnapWriter`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Opens a snapshot, validating the magic/version envelope.
    pub fn new(buf: &'a [u8]) -> Result<Self, SnapError> {
        let mut r = SnapReader { buf, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = r.u16()?;
        if version != SNAP_VERSION {
            return Err(SnapError::BadVersion { found: version });
        }
        Ok(r)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(SnapError::Malformed("length overflow"))?;
        if end > self.buf.len() {
            return Err(SnapError::Truncated {
                needed: end - self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Verifies the next section tag is `name`.
    pub fn section(&mut self, name: &str) -> Result<(), SnapError> {
        let found = self.str()?;
        if found != name {
            return Err(SnapError::BadSection {
                expected: name.to_owned(),
                found,
            });
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Result<u128, SnapError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Reads a `usize` (stored as `u64`).
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::Malformed("usize out of range"))
    }

    /// Reads a `u32` index widened to `usize`.
    pub fn usize_from_u32(&mut self) -> Result<usize, SnapError> {
        let v = self.u32()?;
        usize::try_from(v).map_err(|_| SnapError::Malformed("u32 index out of range"))
    }

    /// Reads a boolean.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Malformed("bool byte not 0/1")),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a [`SimTime`].
    pub fn time(&mut self) -> Result<SimTime, SnapError> {
        Ok(SimTime::from_ps(self.u64()?))
    }

    /// Reads a [`SimDuration`].
    pub fn dur(&mut self) -> Result<SimDuration, SnapError> {
        Ok(SimDuration::from_ps(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Vec<u8>, SnapError> {
        let n = self.usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b).map_err(|_| SnapError::Malformed("invalid UTF-8 string"))
    }

    /// Reads an optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapError> {
        let present = self.bool()?;
        let v = self.u64()?;
        Ok(present.then_some(v))
    }

    /// Reads an optional [`SimTime`].
    pub fn opt_time(&mut self) -> Result<Option<SimTime>, SnapError> {
        Ok(self.opt_u64()?.map(SimTime::from_ps))
    }

    /// Asserts the whole buffer has been consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        let left = self.buf.len() - self.pos;
        if left != 0 {
            return Err(SnapError::TrailingBytes { left });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u16(513);
        w.u32(70_000);
        w.u64(u64::MAX - 1);
        w.u128(u128::MAX - 2);
        w.usize(usize::MAX);
        w.bool(true);
        w.bool(false);
        w.f64(0.015_625);
        w.time(SimTime::from_ns(9));
        w.dur(SimDuration::from_us(3));
        w.bytes(&[1, 2, 3]);
        w.str("héllo");
        w.opt_u64(Some(5));
        w.opt_u64(None);
        w.opt_time(Some(SimTime::from_ps(1)));
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.u128().unwrap(), u128::MAX - 2);
        assert_eq!(r.usize().unwrap(), usize::MAX);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), 0.015_625);
        assert_eq!(r.time().unwrap(), SimTime::from_ns(9));
        assert_eq!(r.dur().unwrap(), SimDuration::from_us(3));
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_u64().unwrap(), Some(5));
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_time().unwrap(), Some(SimTime::from_ps(1)));
        r.finish().unwrap();
    }

    #[test]
    fn envelope_rejects_garbage() {
        assert_eq!(SnapReader::new(b"nope").err(), Some(SnapError::BadMagic));
        assert!(matches!(
            SnapReader::new(b"xx"),
            Err(SnapError::Truncated { .. })
        ));
        // Right magic, wrong version.
        let mut buf = MAGIC.to_vec();
        buf.extend_from_slice(&999u16.to_le_bytes());
        assert_eq!(
            SnapReader::new(&buf).err(),
            Some(SnapError::BadVersion { found: 999 })
        );
    }

    #[test]
    fn section_tags_catch_desync() {
        let mut w = SnapWriter::new();
        w.section("alpha");
        w.u64(1);
        w.section("beta");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes).unwrap();
        r.section("alpha").unwrap();
        assert_eq!(r.u64().unwrap(), 1);
        let err = r.section("gamma").unwrap_err();
        assert!(matches!(err, SnapError::BadSection { .. }));
    }

    #[test]
    fn truncation_is_detected() {
        let mut w = SnapWriter::new();
        w.u64(12345);
        let mut bytes = w.into_bytes();
        bytes.truncate(bytes.len() - 3);
        let mut r = SnapReader::new(&bytes).unwrap();
        assert!(matches!(r.u64(), Err(SnapError::Truncated { needed: 3 })));
    }

    #[test]
    fn finish_rejects_trailing_bytes() {
        let mut w = SnapWriter::new();
        w.u8(1);
        let bytes = w.into_bytes();
        let r = SnapReader::new(&bytes).unwrap();
        assert_eq!(r.finish().err(), Some(SnapError::TrailingBytes { left: 1 }));
    }

    #[test]
    fn bad_bool_is_malformed() {
        let mut w = SnapWriter::new();
        w.u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes).unwrap();
        assert!(matches!(r.bool(), Err(SnapError::Malformed(_))));
    }

    #[test]
    fn errors_display() {
        let msgs = [
            SnapError::Truncated { needed: 4 }.to_string(),
            SnapError::BadMagic.to_string(),
            SnapError::BadVersion { found: 3 }.to_string(),
            SnapError::BadSection {
                expected: "a".into(),
                found: "b".into(),
            }
            .to_string(),
            SnapError::Malformed("x").to_string(),
            SnapError::TrailingBytes { left: 2 }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
