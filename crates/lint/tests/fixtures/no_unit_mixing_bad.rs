//! Known-bad: `now_ps + timeout_ns` type-checks (both `u64`) and is
//! off by a factor of a thousand. No cast, no overflow, no panic —
//! just a deadline 1000x too soon and a digest that quietly moved.

pub fn deadline(now_ps: u64, timeout_ns: u64) -> u64 {
    now_ps + timeout_ns
}
