//! Cluster topology and the switched fabric timing model.
//!
//! A topology is a graph of hosts, switches and TCAs joined by
//! full-duplex links. [`Fabric`] owns the per-direction [`Link`] state
//! and per-switch routing latency, and computes packet delivery times
//! with virtual cut-through forwarding: a switch begins forwarding as
//! soon as it has the header (plus the 100 ns routing latency of §4),
//! rather than after store-and-forward of the whole packet.
//!
//! Packet *data* is not carried here — the cluster layer moves the real
//! bytes; the fabric answers "when does it arrive, and what did it cost".

use std::collections::VecDeque;

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Traffic;
use asan_sim::{SimDuration, SimTime};

use crate::link::{Link, LinkConfig};
use crate::packet::NodeId;

/// What a node is; affects nothing in the fabric timing, but lets the
/// cluster attach the right component models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// A compute node (host CPU + HCA).
    Host,
    /// A network switch (possibly active).
    Switch,
    /// A target channel adapter fronting the I/O subsystem.
    Tca,
}

/// Per-switch forwarding parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchSpec {
    /// Routing decision latency (100 ns in §4).
    pub routing_latency: SimDuration,
    /// Virtual cut-through (§4): forward as soon as the header has been
    /// routed. When disabled the switch stores the whole packet before
    /// forwarding (the classic baseline the paper's switch improves on).
    pub cut_through: bool,
}

impl SwitchSpec {
    /// The paper's switch: 100 ns routing latency, virtual cut-through.
    pub fn paper() -> Self {
        SwitchSpec {
            routing_latency: SimDuration::from_ns(100),
            cut_through: true,
        }
    }

    /// A store-and-forward variant for ablation.
    pub fn store_and_forward() -> Self {
        SwitchSpec {
            cut_through: false,
            ..SwitchSpec::paper()
        }
    }
}

/// Builder for a cluster topology.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    switch_specs: Vec<Option<SwitchSpec>>,
    edges: Vec<(usize, usize, LinkConfig)>,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    fn add_node(&mut self, kind: NodeKind, spec: Option<SwitchSpec>) -> NodeId {
        let id = NodeId(u16::try_from(self.kinds.len()).expect("node count fits u16"));
        self.kinds.push(kind);
        self.switch_specs.push(spec);
        id
    }

    /// Adds a host node.
    pub fn add_host(&mut self) -> NodeId {
        self.add_node(NodeKind::Host, None)
    }

    /// Adds a switch node.
    pub fn add_switch(&mut self, spec: SwitchSpec) -> NodeId {
        self.add_node(NodeKind::Switch, Some(spec))
    }

    /// Adds a TCA node.
    pub fn add_tca(&mut self) -> NodeId {
        self.add_node(NodeKind::Tca, None)
    }

    /// Connects two nodes with a full-duplex link (one [`Link`] per
    /// direction, both using `cfg`).
    pub fn connect(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) -> &mut Self {
        assert!((a.0 as usize) < self.kinds.len(), "unknown node {a}");
        assert!((b.0 as usize) < self.kinds.len(), "unknown node {b}");
        assert_ne!(a, b, "self-loop");
        self.edges.push((a.0 as usize, b.0 as usize, cfg));
        self
    }

    /// Finalizes into a [`Fabric`], computing shortest-path routes.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (every node must reach every
    /// other node).
    pub fn build(self) -> Fabric {
        let n = self.kinds.len();
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (neighbor, link idx)
        let mut links = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b, cfg) in &self.edges {
            let ab = links.len();
            links.push(Link::new(cfg));
            let ba = links.len();
            links.push(Link::new(cfg));
            adj[a].push((b, ab));
            adj[b].push((a, ba));
        }
        // BFS from every node to fill next_hop[from][dst] = (neighbor, link).
        let mut next_hop = vec![vec![None; n]; n];
        for dst in 0..n {
            let mut visited = vec![false; n];
            let mut q = VecDeque::new();
            visited[dst] = true;
            q.push_back(dst);
            while let Some(u) = q.pop_front() {
                for &(v, _) in &adj[u] {
                    if !visited[v] {
                        visited[v] = true;
                        // First hop from v toward dst goes to u.
                        let link = adj[v]
                            .iter()
                            .find(|&&(nb, _)| nb == u)
                            .map(|&(_, l)| l)
                            .expect("symmetric adjacency");
                        next_hop[v][dst] = Some((u, link));
                        q.push_back(v);
                    }
                }
            }
            for (v, hop) in next_hop.iter().enumerate().take(n) {
                assert!(
                    v == dst || hop[dst].is_some(),
                    "topology is disconnected: {v} cannot reach {dst}"
                );
            }
        }
        Fabric {
            kinds: self.kinds,
            switch_specs: self.switch_specs,
            links,
            next_hop,
            traffic: vec![Traffic::default(); n],
        }
    }
}

/// Result of injecting one packet into the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the header is available at the destination (active dispatch
    /// may begin).
    pub header_at: SimTime,
    /// When the first payload byte is available at the destination.
    pub payload_start: SimTime,
    /// When the last byte arrived.
    pub arrival: SimTime,
    /// Number of links traversed.
    pub hops: usize,
}

impl Delivery {
    /// Arrival time of payload byte `k` of a `len`-byte payload,
    /// linearly interpolated over the final-link serialization.
    pub fn byte_at(&self, k: u64, len: u64) -> SimTime {
        if len == 0 {
            return self.arrival;
        }
        let span = self.arrival.since(self.payload_start).as_ps();
        let frac = (span as u128 * (k.min(len) as u128)) / (len as u128);
        self.payload_start + SimDuration::from_ps(frac as u64)
    }
}

/// The switched fabric: links, routes, and per-node traffic accounting.
#[derive(Debug)]
pub struct Fabric {
    kinds: Vec<NodeKind>,                  // asan-lint: allow(snapshot-completeness)
    switch_specs: Vec<Option<SwitchSpec>>, // asan-lint: allow(snapshot-completeness)
    links: Vec<Link>,
    /// `next_hop[from][dst] = (neighbor node, link index)`.
    next_hop: Vec<Vec<Option<(usize, usize)>>>, // asan-lint: allow(snapshot-completeness)
    traffic: Vec<Traffic>,
}

impl Fabric {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Kind of `node`.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.0 as usize]
    }

    /// Bytes in/out observed at `node`'s network interface.
    pub fn traffic(&self, node: NodeId) -> Traffic {
        self.traffic[node.0 as usize]
    }

    /// Number of hops on the route from `src` to `dst` (0 if equal).
    pub fn path_len(&self, src: NodeId, dst: NodeId) -> usize {
        let mut cur = src.0 as usize;
        let dst = dst.0 as usize;
        let mut hops = 0;
        while cur != dst {
            let (nb, _) = self.next_hop[cur][dst].expect("connected");
            cur = nb;
            hops += 1;
        }
        hops
    }

    /// Injects a packet of `wire_bytes` from `src` to `dst`, with the
    /// data ready at the source NIC at `ready`. Returns delivery timing
    /// and records traffic at both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`.
    pub fn transmit(
        &mut self,
        wire_bytes: u64,
        src: NodeId,
        dst: NodeId,
        ready: SimTime,
    ) -> Delivery {
        assert_ne!(src, dst, "transmit to self");
        let dst_idx = dst.0 as usize;
        let mut cur = src.0 as usize;
        let mut header_ready = ready;
        let mut hops = 0;
        let mut last_timing: Option<crate::link::LinkTiming> = None;
        while cur != dst_idx {
            let (nb, link_idx) = self.next_hop[cur][dst_idx].expect("connected");
            // Intermediate switches add their routing latency before the
            // header can go out; endpoints inject directly. A
            // store-and-forward switch additionally waits for the whole
            // packet before routing it.
            if hops > 0 {
                if let Some(spec) = self.switch_specs[cur] {
                    if !spec.cut_through {
                        header_ready = last_timing.expect("hop > 0").done;
                    }
                    header_ready += spec.routing_latency;
                }
            }
            let timing = self.links[link_idx].send(wire_bytes, header_ready);
            // Receiver's input buffer frees when the packet has fully
            // left it toward the next hop; for the last hop, when the
            // endpoint absorbed it. Approximated as its full arrival.
            self.links[link_idx].note_drain(timing.done);
            header_ready = timing.header_at;
            last_timing = Some(timing);
            cur = nb;
            hops += 1;
        }
        let t = last_timing.expect("at least one hop");
        self.traffic[src.0 as usize].record_out(wire_bytes);
        self.traffic[dst_idx].record_in(wire_bytes);
        Delivery {
            header_at: t.header_at,
            payload_start: t.header_at,
            arrival: t.done,
            hops,
        }
    }

    /// Total bytes carried by all links (each hop counts).
    pub fn total_link_bytes(&self) -> u64 {
        self.links.iter().map(Link::bytes_carried).sum()
    }

    /// Total credit stalls across all links.
    pub fn total_credit_stalls(&self) -> u64 {
        self.links.iter().map(Link::credit_stalls).sum()
    }

    /// The distribution of credit-stall durations, merged over every
    /// link direction in the fabric.
    pub fn credit_stall_histogram(&self) -> asan_sim::hist::LogHistogram {
        let mut h = asan_sim::hist::LogHistogram::new();
        for l in &self.links {
            h.merge(l.credit_stall_hist());
        }
        h
    }

    /// Injects a transient link-down window `[from, until)` on every
    /// link in the fabric (a fabric-wide brown-out; see
    /// [`Link::inject_outage`]).
    pub fn inject_outage(&mut self, from: SimTime, until: SimTime) {
        for l in &mut self.links {
            l.inject_outage(from, until);
        }
    }

    /// Tightens the credit limit on every link (models receivers
    /// advertising fewer buffers; see [`Link::restrict_credits`]).
    pub fn restrict_credits(&mut self, credits: usize) {
        for l in &mut self.links {
            l.restrict_credits(credits);
        }
    }

    /// Total sends deferred by injected outage windows, across links.
    pub fn total_outage_deferrals(&self) -> u64 {
        self.links.iter().map(Link::outage_deferrals).sum()
    }

    /// Writes the fabric's dynamic state: every link direction (wire
    /// occupancy, credits, in-flight drains, counters) and per-node
    /// traffic accounting. The topology itself (kinds, routes) is static
    /// and rebuilt by the caller.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.section("fabric");
        w.usize(self.links.len());
        for l in &self.links {
            l.snapshot(w);
        }
        w.usize(self.traffic.len());
        for t in &self.traffic {
            t.snapshot(w);
        }
    }

    /// Overwrites this fabric's dynamic state from a snapshot taken of
    /// a fabric built from the same topology.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("fabric")?;
        let links = r.usize()?;
        if links != self.links.len() {
            return Err(SnapError::Malformed("fabric link count mismatch"));
        }
        for l in &mut self.links {
            l.restore(r)?;
        }
        let nodes = r.usize()?;
        if nodes != self.traffic.len() {
            return Err(SnapError::Malformed("fabric node count mismatch"));
        }
        for t in &mut self.traffic {
            *t = Traffic::restore(r)?;
        }
        Ok(())
    }
}

/// Convenience: the paper's canonical single-switch cluster — `hosts`
/// host nodes and `tcas` TCA nodes all attached to one switch. Returns
/// `(fabric, host_ids, tca_ids, switch_id)`.
pub fn single_switch_cluster(
    hosts: usize,
    tcas: usize,
) -> (Fabric, Vec<NodeId>, Vec<NodeId>, NodeId) {
    let mut b = TopologyBuilder::new();
    let sw = b.add_switch(SwitchSpec::paper());
    let host_ids: Vec<NodeId> = (0..hosts).map(|_| b.add_host()).collect();
    let tca_ids: Vec<NodeId> = (0..tcas).map(|_| b.add_tca()).collect();
    for &h in &host_ids {
        b.connect(h, sw, LinkConfig::paper());
    }
    for &t in &tca_ids {
        b.connect(t, sw, LinkConfig::paper());
    }
    (b.build(), host_ids, tca_ids, sw)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_paths() {
        let (f, hosts, tcas, sw) = single_switch_cluster(2, 1);
        assert_eq!(f.num_nodes(), 4);
        assert_eq!(f.path_len(hosts[0], hosts[1]), 2);
        assert_eq!(f.path_len(hosts[0], sw), 1);
        assert_eq!(f.path_len(tcas[0], hosts[0]), 2);
        assert_eq!(f.kind(sw), NodeKind::Switch);
        assert_eq!(f.kind(hosts[0]), NodeKind::Host);
        assert_eq!(f.kind(tcas[0]), NodeKind::Tca);
    }

    #[test]
    fn one_hop_delivery_timing() {
        let (mut f, hosts, _, sw) = single_switch_cluster(2, 1);
        let d = f.transmit(528, hosts[0], sw, SimTime::ZERO);
        assert_eq!(d.hops, 1);
        assert_eq!(d.arrival.as_ns(), 538); // 528 ns serialization + 10 ns prop
        assert_eq!(d.header_at.as_ns(), 26);
    }

    #[test]
    fn two_hop_delivery_adds_routing_latency() {
        let (mut f, hosts, _, _) = single_switch_cluster(2, 1);
        let d = f.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
        assert_eq!(d.hops, 2);
        // Hop 1 header at 26 ns; +100 ns routing; hop 2: 528 ns ser +10 prop.
        assert_eq!(d.arrival.as_ns(), 26 + 100 + 528 + 10);
    }

    #[test]
    fn traffic_recorded_at_endpoints_only() {
        let (mut f, hosts, _, _) = single_switch_cluster(2, 1);
        f.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
        assert_eq!(f.traffic(hosts[0]).bytes_out, 528);
        assert_eq!(f.traffic(hosts[1]).bytes_in, 528);
        assert_eq!(f.traffic(hosts[0]).bytes_in, 0);
        // Both hops carried the bytes.
        assert_eq!(f.total_link_bytes(), 2 * 528);
    }

    #[test]
    fn contention_on_shared_output_port() {
        let (mut f, hosts, tcas, _) = single_switch_cluster(2, 1);
        // Host0 and TCA0 both send to host1 at t=0: the second packet
        // serializes after the first on the switch→host1 link.
        let a = f.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
        let b = f.transmit(528, tcas[0], hosts[1], SimTime::ZERO);
        assert!(b.arrival > a.arrival);
        assert_eq!(b.arrival.since(a.arrival).as_ns(), 528);
    }

    #[test]
    fn byte_at_interpolates() {
        let (mut f, hosts, _, sw) = single_switch_cluster(1, 0);
        let d = f.transmit(528, hosts[0], sw, SimTime::ZERO);
        assert_eq!(d.byte_at(0, 512), d.payload_start);
        assert_eq!(d.byte_at(512, 512), d.arrival);
        let mid = d.byte_at(256, 512);
        assert!(mid > d.payload_start && mid < d.arrival);
    }

    #[test]
    fn multi_switch_tree_routes() {
        // Two leaf switches under a root, a host on each leaf.
        let mut b = TopologyBuilder::new();
        let root = b.add_switch(SwitchSpec::paper());
        let l1 = b.add_switch(SwitchSpec::paper());
        let l2 = b.add_switch(SwitchSpec::paper());
        let h1 = b.add_host();
        let h2 = b.add_host();
        b.connect(l1, root, LinkConfig::paper());
        b.connect(l2, root, LinkConfig::paper());
        b.connect(h1, l1, LinkConfig::paper());
        b.connect(h2, l2, LinkConfig::paper());
        let mut f = b.build();
        assert_eq!(f.path_len(h1, h2), 4);
        let d = f.transmit(528, h1, h2, SimTime::ZERO);
        assert_eq!(d.hops, 4);
        // Three intermediate switches each add 100 ns.
        assert_eq!(d.arrival.as_ns(), 26 + 100 + 26 + 100 + 26 + 100 + 528 + 10);
    }

    #[test]
    fn store_and_forward_is_slower_than_cut_through() {
        let build = |spec: SwitchSpec| {
            let mut b = TopologyBuilder::new();
            let s1 = b.add_switch(spec);
            let s2 = b.add_switch(spec);
            let h1 = b.add_host();
            let h2 = b.add_host();
            b.connect(h1, s1, LinkConfig::paper());
            b.connect(s1, s2, LinkConfig::paper());
            b.connect(h2, s2, LinkConfig::paper());
            let mut f = b.build();
            f.transmit(528, h1, h2, SimTime::ZERO).arrival
        };
        let ct = build(SwitchSpec::paper());
        let sf = build(SwitchSpec::store_and_forward());
        // Store-and-forward pays the full serialization per hop.
        assert!(sf > ct, "store-and-forward {sf} <= cut-through {ct}");
        assert!(sf.since(ct).as_ns() >= 900, "diff = {}", sf.since(ct));
    }

    #[test]
    fn fabric_snapshot_preserves_contention_state() {
        let (mut f, hosts, tcas, _) = single_switch_cluster(2, 1);
        // Load the switch→host1 output port so future sends contend.
        f.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
        f.transmit(528, tcas[0], hosts[1], SimTime::ZERO);

        let mut w = SnapWriter::new();
        f.snapshot(&mut w);
        let bytes = w.into_bytes();
        let (mut back, ..) = single_switch_cluster(2, 1);
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();

        // Same occupancy: the next packet sees identical queueing.
        let a = f.transmit(528, hosts[0], hosts[1], SimTime::from_ns(100));
        let b = back.transmit(528, hosts[0], hosts[1], SimTime::from_ns(100));
        assert_eq!(a, b);
        assert_eq!(back.total_link_bytes(), f.total_link_bytes());
        assert_eq!(back.traffic(hosts[1]), f.traffic(hosts[1]));
        // Mismatched topology fails loudly.
        let (mut wrong, ..) = single_switch_cluster(3, 1);
        let mut r2 = SnapReader::new(&bytes).unwrap();
        assert!(wrong.restore(&mut r2).is_err());
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_topology_rejected() {
        let mut b = TopologyBuilder::new();
        b.add_host();
        b.add_host();
        b.build();
    }

    #[test]
    #[should_panic(expected = "transmit to self")]
    fn self_transmit_rejected() {
        let (mut f, hosts, _, _) = single_switch_cluster(1, 1);
        f.transmit(16, hosts[0], hosts[0], SimTime::ZERO);
    }
}
