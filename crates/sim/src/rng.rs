//! Deterministic pseudo-random number generation for workload synthesis.
//!
//! Every input in the reproduction (MPEG frame sizes, database records,
//! Datamation keys, …) is generated from a [`SimRng`] seeded from a stable
//! textual label, so runs are reproducible across machines and the same
//! experiment always sees the same bytes.
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64, the standard
//! dependency-free construction; statistical quality is far beyond what
//! workload generation needs.

/// A small, fast, deterministic PRNG (xoshiro256\*\*).
///
/// # Example
///
/// ```
/// use asan_sim::SimRng;
/// let mut a = SimRng::from_label("grep-input");
/// let mut b = SimRng::from_label("grep-input");
/// assert_eq!(a.next_u64(), b.next_u64()); // same label => same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Creates a generator from a stable textual label (FNV-1a hashed).
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        SimRng::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly distributed value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range({lo}, {hi})");
        lo + self.below(hi - lo + 1)
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Random printable ASCII byte (space through `~`).
    pub fn ascii(&mut self) -> u8 {
        b' ' + self.below(95) as u8
    }

    /// Writes the generator's exact position in its stream.
    pub fn snapshot(&self, w: &mut crate::snap::SnapWriter) {
        for word in self.s {
            w.u64(word);
        }
    }

    /// Restores a generator mid-stream, continuing the exact sequence
    /// the snapshotted generator would have produced.
    pub fn restore(r: &mut crate::snap::SnapReader<'_>) -> Result<Self, crate::snap::SnapError> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        Ok(SimRng { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = SimRng::from_label("x");
        let mut b = SimRng::from_label("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = SimRng::from_seed(7);
        for _ in 0..10_000 {
            assert!(r.below(37) < 37);
        }
        for _ in 0..1000 {
            assert!(r.below(1) == 0);
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SimRng::from_seed(9);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut r = SimRng::from_seed(11);
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_respects_probability_roughly() {
        let mut r = SimRng::from_seed(13);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SimRng::from_seed(17);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // Overwhelmingly unlikely to be all zero if filled.
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn ascii_is_printable() {
        let mut r = SimRng::from_seed(19);
        for _ in 0..1000 {
            let c = r.ascii();
            assert!((b' '..=b'~').contains(&c));
        }
    }

    #[test]
    fn snapshot_resumes_mid_stream() {
        let mut orig = SimRng::from_label("snap");
        for _ in 0..37 {
            orig.next_u64();
        }
        let mut w = crate::snap::SnapWriter::new();
        orig.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = crate::snap::SnapReader::new(&bytes).unwrap();
        let mut restored = SimRng::restore(&mut r).unwrap();
        r.finish().unwrap();
        for _ in 0..100 {
            assert_eq!(orig.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut r = SimRng::from_seed(23);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket = {b}");
        }
    }
}
