//! Corrected twin: every declared variant is constructed somewhere and
//! matched by exactly one engine's `on_event` — the event vocabulary
//! is closed.

pub enum Event {
    Ping(u64),
    Pong(u64),
}

impl RelayEngine {
    pub fn on_event(&mut self, ev: Event) {
        match ev {
            Event::Ping(seq) => self.acks += seq,
            Event::Pong(seq) => self.nacks += seq,
        }
    }
}

pub fn inject(bus: &mut Vec<Event>) {
    bus.push(Event::Ping(1));
    bus.push(Event::Pong(2));
}
