//! Benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! The `repro` binary drives full-size runs and prints the same rows
//! and series the paper reports; the Criterion benches under
//! `benches/` time the simulator itself on scaled-down configurations.
//!
//! Figures come in pairs per application: an *overall* chart
//! (execution time normalized to `normal`, host utilization, host I/O
//! traffic normalized to `normal`) and an execution-time *breakdown*
//! (CPU busy / cache stall / idle for the host CPU, plus the switch CPU
//! in the active cases).

use asan_apps::runner::AppRun;
use asan_apps::Variant;

/// Renders the overall figure (e.g. Figure 3: exec time, host
/// utilization, host I/O traffic; first row is the normalization base).
pub fn overall_table(title: &str, runs: &[AppRun]) -> String {
    let base = runs
        .iter()
        .find(|r| r.variant == Variant::Normal)
        .expect("normal run present");
    let base_exec = base.exec.as_ps().max(1) as f64;
    let base_traffic = base.host_traffic.max(1) as f64;
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<14} {:>12} {:>10} {:>10} {:>12} {:>10}\n",
        "config", "exec", "norm.time", "speedup", "host util", "traffic"
    ));
    for r in runs {
        let norm = r.exec.as_ps() as f64 / base_exec;
        out.push_str(&format!(
            "{:<14} {:>12} {:>10.3} {:>10.2} {:>11.1}% {:>10.3}\n",
            r.variant.label(),
            format!("{}", r.exec),
            norm,
            1.0 / norm,
            r.host_utilization * 100.0,
            r.host_traffic as f64 / base_traffic,
        ));
    }
    out
}

/// Renders the breakdown figure (e.g. Figure 4: busy / cache-stall /
/// idle shares for host and switch CPUs).
pub fn breakdown_table(title: &str, runs: &[AppRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}\n",
        "cpu", "busy%", "stall%", "idle%", "total"
    ));
    for r in runs {
        let b = &r.host_breakdown;
        let t = b.total().as_ps().max(1) as f64;
        out.push_str(&format!(
            "{:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>12}\n",
            format!("{}-HP", r.variant.short()),
            b.busy.as_ps() as f64 / t * 100.0,
            b.stall.as_ps() as f64 / t * 100.0,
            b.idle.as_ps() as f64 / t * 100.0,
            format!("{}", b.total()),
        ));
        for (i, sb) in r.switch_breakdowns.iter().enumerate() {
            let st = sb.total().as_ps().max(1) as f64;
            let tag = if r.switch_breakdowns.len() > 1 {
                format!("{}-SP{}", r.variant.short(), i)
            } else {
                format!("{}-SP", r.variant.short())
            };
            out.push_str(&format!(
                "{:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>12}\n",
                tag,
                sb.busy.as_ps() as f64 / st * 100.0,
                sb.stall.as_ps() as f64 / st * 100.0,
                sb.idle.as_ps() as f64 / st * 100.0,
                format!("{}", sb.total()),
            ));
        }
    }
    out
}

/// Renders an overall figure as CSV (`experiment,config,exec_ps,
/// normalized_time,host_utilization,traffic_ratio`), for plotting.
pub fn overall_csv(experiment: &str, runs: &[AppRun]) -> String {
    let base = runs
        .iter()
        .find(|r| r.variant == Variant::Normal)
        .expect("normal run present");
    let base_exec = base.exec.as_ps().max(1) as f64;
    let base_traffic = base.host_traffic.max(1) as f64;
    let mut out = String::from(
        "experiment,config,exec_ps,normalized_time,host_utilization,traffic_ratio
",
    );
    for r in runs {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6}
",
            experiment,
            r.variant.label(),
            r.exec.as_ps(),
            r.exec.as_ps() as f64 / base_exec,
            r.host_utilization,
            r.host_traffic as f64 / base_traffic,
        ));
    }
    out
}

/// Extracts the headline speedups (active vs normal, active+pref vs
/// normal+pref) for EXPERIMENTS.md-style summaries.
pub fn speedups(runs: &[AppRun]) -> (f64, f64) {
    let get = |v: Variant| {
        runs.iter()
            .find(|r| r.variant == v)
            .expect("variant present")
            .exec
            .as_ps() as f64
    };
    (
        get(Variant::Normal) / get(Variant::Active),
        get(Variant::NormalPref) / get(Variant::ActivePref),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_sim::stats::TimeBreakdown;
    use asan_sim::{SimDuration, SimTime};

    fn fake(variant: Variant, exec_ns: u64, traffic: u64) -> AppRun {
        AppRun {
            variant,
            exec: SimTime::from_ns(exec_ns),
            host_breakdown: TimeBreakdown {
                busy: SimDuration::from_ns(exec_ns / 2),
                stall: SimDuration::from_ns(exec_ns / 4),
                idle: SimDuration::from_ns(exec_ns / 4),
            },
            switch_breakdowns: vec![],
            host_traffic: traffic,
            host_utilization: 0.75,
            link_bytes: 0,
            artifact: 0,
            stats_digest: 0,
        }
    }

    #[test]
    fn overall_table_normalizes_to_normal() {
        let runs = vec![
            fake(Variant::Normal, 1000, 100),
            fake(Variant::Active, 500, 25),
        ];
        let t = overall_table("Figure X", &runs);
        assert!(t.contains("Figure X"));
        assert!(t.contains("normal"));
        assert!(t.contains("active"));
        assert!(t.contains("2.00"), "table:\n{t}");
        assert!(t.contains("0.250"), "traffic ratio:\n{t}");
    }

    #[test]
    fn breakdown_table_shows_shares() {
        let runs = vec![fake(Variant::NormalPref, 1000, 1)];
        let t = breakdown_table("Figure Y", &runs);
        assert!(t.contains("n+p-HP"));
        assert!(t.contains("50.0%"));
        assert!(t.contains("25.0%"));
    }

    #[test]
    fn overall_csv_has_header_and_rows() {
        let runs = vec![
            fake(Variant::Normal, 1000, 100),
            fake(Variant::Active, 500, 25),
        ];
        let csv = overall_csv("fig3", &runs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("experiment,config"));
        assert!(lines[1].starts_with("fig3,normal,1000000,1.000000"));
        assert!(lines[2].contains("fig3,active,500000,0.500000"));
    }

    #[test]
    fn speedups_extracts_ratios() {
        let runs = vec![
            fake(Variant::Normal, 1000, 1),
            fake(Variant::NormalPref, 800, 1),
            fake(Variant::Active, 500, 1),
            fake(Variant::ActivePref, 400, 1),
        ];
        let (s, sp) = speedups(&runs);
        assert!((s - 2.0).abs() < 1e-9);
        assert!((sp - 2.0).abs() < 1e-9);
    }
}
