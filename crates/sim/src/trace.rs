//! Structured trace spans and the sinks that receive them.
//!
//! The observability layer replaces the old on/off `eprintln!` tracer
//! with typed **spans**: a [`Span`] names one timed interval of
//! simulated work — a packet crossing the fabric, a handler occupying a
//! switch CPU, a disk servicing a request, a data buffer held between
//! seize and release. Engines emit spans; a [`TraceSink`] decides what
//! happens to them.
//!
//! Three sinks ship with the simulator:
//!
//! * [`NullSink`] — drops everything (the zero-cost default),
//! * [`JsonlSink`] — appends one deterministic JSON line per span to a
//!   file (`ASAN_TRACE=<path>` selects this sink),
//! * [`RingSink`] — keeps the last `cap` spans in memory for tests and
//!   interactive inspection.
//!
//! # Determinism rules
//!
//! Spans carry **simulated time only** ([`SimTime`], picoseconds).
//! Sinks must not read wall-clock time, environment state, or any other
//! ambient input while formatting (the asan-lint `no-wall-clock` rule
//! enforces the first of these mechanically): a trace file produced by
//! two runs of the same configuration must be byte-for-byte identical,
//! and CI diffs exactly that. Instrumentation must also never *change*
//! the simulation — a sink observes timings, it does not schedule
//! events — so golden digests are bit-identical with any sink
//! installed.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::time::SimTime;

/// What kind of timed interval a [`Span`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// A packet, from fabric injection to last-byte delivery.
    Packet,
    /// A handler invocation, from dispatch start to completion.
    Handler,
    /// A disk request, from issue to service done.
    Disk,
    /// A data buffer, from seize (grant) to release.
    Buffer,
    /// One hop of a packet across a single link (child of the packet's
    /// end-to-end span).
    Link,
    /// Time a send spent waiting before a link accepted it — credit
    /// exhaustion, wire busy, or an outage deferral (child of the
    /// packet's end-to-end span).
    Stall,
}

impl SpanKind {
    /// Stable lower-case label, used in the JSONL encoding.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Packet => "packet",
            SpanKind::Handler => "handler",
            SpanKind::Disk => "disk",
            SpanKind::Buffer => "buffer",
            SpanKind::Link => "link",
            SpanKind::Stall => "stall",
        }
    }

    /// Stable small integer for each kind — the Perfetto exporter's
    /// `tid` derivation and any fixed-width encoding use this, so the
    /// values are part of the export contract and never reordered.
    pub fn index(self) -> u64 {
        match self {
            SpanKind::Packet => 0,
            SpanKind::Handler => 1,
            SpanKind::Disk => 2,
            SpanKind::Buffer => 3,
            SpanKind::Link => 4,
            SpanKind::Stall => 5,
        }
    }
}

/// Causal trace context carried alongside a span: which logical flow
/// (trace) the span belongs to and which span caused it.
///
/// Trace ids are allocated deterministically from simulation state
/// (never wall clock): the probe hands out consecutive ids starting at
/// 1, and id 0 means "untraced" — work that is not attributable to a
/// single flow (e.g. aggregated archive writes that combine many
/// packets). `parent` is the span id of the causing span within the
/// same trace, or 0 for a root span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// The flow this span belongs to (0 = untraced).
    pub trace: u64,
    /// Span id of the causing span (0 = root of its trace).
    pub parent: u64,
}

impl TraceCtx {
    /// The untraced context: no flow, no parent.
    pub const NONE: TraceCtx = TraceCtx {
        trace: 0,
        parent: 0,
    };
}

/// One timed interval of simulated work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What this interval measures.
    pub kind: SpanKind,
    /// The node the work is attributed to (destination node for
    /// packets, the engine's node for handlers/buffers, the TCA for
    /// disk requests).
    pub node: u64,
    /// Deterministic per-kind sequence number (emission order).
    pub id: u64,
    /// When the interval began.
    pub start: SimTime,
    /// When the interval ended.
    pub end: SimTime,
    /// Bytes involved (wire bytes, payload bytes, or request length).
    pub bytes: u64,
    /// The flow (trace) this span belongs to; 0 = untraced. Allocated
    /// deterministically from simulation state, never wall clock.
    pub trace_id: u64,
    /// Span id of the causing span within the same trace; 0 = root.
    pub parent: u64,
}

impl Span {
    /// The canonical JSONL encoding: fixed field order, integral
    /// picoseconds, no floats — byte-identical across runs and
    /// platforms.
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"node\":{},\"id\":{},\"start_ps\":{},\"end_ps\":{},\
             \"bytes\":{},\"trace\":{},\"parent\":{}}}",
            self.kind.label(),
            self.node,
            self.id,
            self.start.as_ps(),
            self.end.as_ps(),
            self.bytes,
            self.trace_id,
            self.parent,
        )
    }
}

/// Receives spans as engines emit them.
///
/// The contract: `record` must be deterministic (no wall clock, no
/// randomness, no environment reads), must not panic on any span, and
/// must not feed anything back into the simulation. `flush` is called
/// once at the end of a run.
pub trait TraceSink {
    /// Receives one span.
    fn record(&mut self, span: &Span);

    /// Flushes buffered output (end of run).
    fn flush(&mut self) {}

    /// Downcast support, so tests can read a concrete sink back out of
    /// a `Box<dyn TraceSink>`. Sinks meant for inspection return
    /// `Some(self)`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

impl fmt::Debug for dyn TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<trace sink>")
    }
}

/// The zero-cost sink: every span is dropped.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _span: &Span) {}
}

/// A bounded in-memory sink keeping the most recent `cap` spans.
///
/// # Capacity and eviction semantics
///
/// The ring holds **exactly the last `cap` spans recorded**, in
/// emission order. Recording into a full ring evicts the *oldest*
/// retained span (FIFO) before the new span is appended — one eviction
/// per record, never a batch. Consequences callers rely on:
///
/// * [`RingSink::spans`] always iterates oldest → newest, and that
///   order is the probe's emission order restricted to the retained
///   window — wrapping never reorders, only truncates the front.
/// * Span `id`s therefore remain strictly increasing across the
///   iterator even after arbitrarily many wraps.
/// * `cap == 0` is a valid degenerate ring: every record is dropped
///   immediately and the ring stays empty (it never allocates).
/// * The ring never grows past `cap`: `len() <= cap` at all times.
#[derive(Debug, Default)]
pub struct RingSink {
    cap: usize,
    spans: VecDeque<Span>,
}

impl RingSink {
    /// Creates a ring holding at most `cap` spans.
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap,
            spans: VecDeque::new(),
        }
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.iter()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, span: &Span) {
        if self.cap == 0 {
            return;
        }
        if self.spans.len() == self.cap {
            self.spans.pop_front();
        }
        self.spans.push_back(*span);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

/// A deterministic JSONL file sink: one [`Span::to_jsonl`] line per
/// span, in emission order.
#[derive(Debug)]
pub struct JsonlSink {
    out: BufWriter<File>,
}

impl JsonlSink {
    /// Creates (truncating) `path` and writes spans to it.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(File::create(path)?),
        })
    }

    /// Opens `path` in append mode (creating it if missing), so several
    /// runs in one process accumulate into one trace file. This is what
    /// the `ASAN_TRACE=<path>` compatibility shim uses.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from opening the file.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink {
            out: BufWriter::new(OpenOptions::new().create(true).append(true).open(path)?),
        })
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, span: &Span) {
        // Writing can only fail on I/O errors (disk full); a trace must
        // never abort the simulation, so the error is ignored here and
        // surfaces on flush at the latest.
        let _ = writeln!(self.out, "{}", span.to_jsonl());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64) -> Span {
        Span {
            kind: SpanKind::Packet,
            node: 3,
            id,
            start: SimTime::from_ns(10),
            end: SimTime::from_ns(25),
            bytes: 528,
            trace_id: 1,
            parent: 0,
        }
    }

    #[test]
    fn jsonl_encoding_is_canonical() {
        assert_eq!(
            span(7).to_jsonl(),
            "{\"kind\":\"packet\",\"node\":3,\"id\":7,\"start_ps\":10000,\
             \"end_ps\":25000,\"bytes\":528,\"trace\":1,\"parent\":0}"
        );
    }

    #[test]
    fn span_kind_indices_are_pinned() {
        // The Perfetto exporter derives tids from these; reordering
        // the enum must not silently change exported traces.
        let kinds = [
            SpanKind::Packet,
            SpanKind::Handler,
            SpanKind::Disk,
            SpanKind::Buffer,
            SpanKind::Link,
            SpanKind::Stall,
        ];
        let idx: Vec<u64> = kinds.iter().map(|k| k.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5]);
        let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(
            labels,
            vec!["packet", "handler", "disk", "buffer", "link", "stall"]
        );
    }

    #[test]
    fn ring_sink_is_bounded_and_keeps_newest() {
        let mut s = RingSink::new(3);
        for i in 0..5 {
            s.record(&span(i));
        }
        assert_eq!(s.len(), 3);
        let ids: Vec<u64> = s.spans().map(|sp| sp.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert!(!s.is_empty());
        assert!(RingSink::new(0).is_empty());
    }

    #[test]
    fn ring_sink_preserves_emission_order_after_wrap() {
        // Wrap the ring several times over: the retained window must
        // always be the newest `cap` spans in exact emission order —
        // eviction is strictly FIFO, one span per record.
        let mut s = RingSink::new(4);
        for i in 0..11 {
            s.record(&span(i));
            assert!(s.len() <= 4, "ring grew past cap at i={i}");
            let ids: Vec<u64> = s.spans().map(|sp| sp.id).collect();
            let lo = (i + 1).saturating_sub(4);
            let want: Vec<u64> = (lo..=i).collect();
            assert_eq!(ids, want, "window after recording span {i}");
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "ids must stay strictly increasing after wrap"
            );
        }
        // A zero-capacity ring drops everything even under wrap load.
        let mut z = RingSink::new(0);
        for i in 0..3 {
            z.record(&span(i));
        }
        assert!(z.is_empty());
    }

    #[test]
    fn ring_sink_downcasts() {
        let mut boxed: Box<dyn TraceSink> = Box::new(RingSink::new(2));
        boxed.record(&span(0));
        let ring = boxed
            .as_any()
            .and_then(|a| a.downcast_ref::<RingSink>())
            .expect("ring downcast");
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn null_sink_has_no_observable_effect() {
        let mut s = NullSink;
        s.record(&span(1));
        s.flush();
        assert!(s.as_any().is_none());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_span() {
        let path =
            std::env::temp_dir().join(format!("asan-trace-test-{}.jsonl", std::process::id()));
        {
            let mut s = JsonlSink::create(&path).expect("create");
            s.record(&span(0));
            s.record(&span(1));
            s.flush();
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":0"));
        assert!(lines[1].contains("\"id\":1"));
        // Append mode accumulates across sink instances.
        {
            let mut s = JsonlSink::append(&path).expect("append");
            s.record(&span(2));
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
