//! Rule `no-unordered-iteration`: no `HashMap`/`HashSet` in crates
//! whose iteration order can feed simulation state.
//!
//! `std::collections::HashMap` iterates in `RandomState` order, which
//! differs between processes. Any such iteration on a path that
//! schedules events, accumulates statistics, or emits packets breaks
//! bit-identical replay — exactly the property the golden-digest
//! regression pins down. Rather than trying to prove "this particular
//! map is never iterated" from a token stream, the rule bans the types
//! outright inside the model crates: `BTreeMap`/`BTreeSet` cost
//! O(log n) lookups but give deterministic order everywhere. A map
//! that genuinely is lookup-only can carry
//! `// asan-lint: allow(no-unordered-iteration)` with a justification.

use super::{FileCtx, Rule};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::Kind;

/// Crates where event or statistics order can depend on map order.
const SCOPED: [&str; 5] = [
    "crates/core/",
    "crates/net/",
    "crates/io/",
    "crates/sim/",
    "crates/apps/",
];

pub(crate) struct NoUnorderedIteration;

impl Rule for NoUnorderedIteration {
    fn name(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn describe(&self) -> &'static str {
        "deny HashMap/HashSet in order-sensitive model crates (use BTreeMap/BTreeSet)"
    }

    fn scope(&self) -> &'static str {
        "model crates (core, net, io, sim, apps)"
    }

    fn since_pr(&self) -> u32 {
        3
    }

    fn applies(&self, rel_path: &str) -> bool {
        SCOPED.iter().any(|p| rel_path.starts_with(p))
    }

    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        for t in ctx.tokens() {
            if t.kind != Kind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
                continue;
            }
            let replacement = if t.text == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            out.push(Diagnostic {
                rule: self.name(),
                severity: Severity::Deny,
                file: ctx.rel_path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` iterates in nondeterministic order; use `{replacement}` (or \
                     annotate `// asan-lint: allow(no-unordered-iteration)` if the \
                     collection is provably never iterated)",
                    t.text,
                ),
            });
        }
    }
}
