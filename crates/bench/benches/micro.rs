//! Micro-benchmarks of the simulator's hot paths: these bound how fast
//! whole-cluster simulations can run (the 128 MB Select pushes ~17 M
//! events and ~6 M cache accesses through these structures).
//! Plain `main()` harness — no external deps.

use std::hint::black_box;
use std::time::Instant;

use asan_apps::dfa::LiteralDfa;
use asan_apps::md5::md5;
use asan_mem::cache::{AccessKind, Cache, CacheConfig};
use asan_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use asan_sim::{EventQueue, SimRng, SimTime};

fn bench(name: &str, iters: u32, mut f: impl FnMut() -> u64) {
    black_box(f());
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        acc = acc.wrapping_add(f());
    }
    black_box(acc);
    let per = t0.elapsed() / iters;
    println!("{name:<32} {per:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    println!("== micro: simulator hot paths ==");

    bench("event_queue_push_pop_1k", 200, || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(SimTime::from_ns(i * 7 % 503), i);
        }
        let mut acc = 0u64;
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        acc
    });

    let mut cache = Cache::new(CacheConfig::host_l1d());
    bench("l1_cache_hits_4k", 200, || {
        let mut hits = 0u64;
        for i in 0..4096u64 {
            if cache.access((i % 64) * 64, AccessKind::Read).hit {
                hits += 1;
            }
        }
        hits
    });

    let mut m = MemoryHierarchy::new(HierarchyConfig::host());
    let mut t = SimTime::ZERO;
    let mut addr = 0u64;
    bench("hierarchy_streaming_loads_4k", 200, || {
        let mut stall = 0u64;
        for _ in 0..4096 {
            let out = m.load(addr, t);
            stall += out.stall.as_ps();
            addr += 64;
            t = t + out.stall + asan_sim::SimDuration::from_ns(1);
        }
        stall
    });

    let mut rng = SimRng::from_seed(7);
    bench("rng_throughput_64k", 200, || {
        let mut acc = 0u64;
        for _ in 0..65536 {
            acc = acc.wrapping_add(rng.next_u64());
        }
        acc
    });

    let data = vec![0xABu8; 64 * 1024];
    bench("md5_64kb", 100, || {
        let d = md5(&data);
        u64::from_le_bytes(d[0..8].try_into().unwrap())
    });

    let dfa = LiteralDfa::new(b"Big Red Bear");
    let mut rng = SimRng::from_seed(3);
    let mut text = vec![0u8; 64 * 1024];
    rng.fill_bytes(&mut text);
    bench("dfa_search_64kb", 200, || dfa.count(&text) as u64);
}
