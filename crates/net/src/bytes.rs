//! Cheaply cloneable, sliceable byte buffers for packet payloads.
//!
//! Every fabric hop, retransmit-cache entry, and fallback forward used
//! to deep-copy its payload `Vec<u8>`. [`Bytes`] replaces those copies
//! with a reference-counted view: a shared backing buffer plus a
//! `(start, len)` window. Cloning a [`Bytes`] or taking a sub-[`slice`]
//! is O(1) and allocation-free, so a file region read off a disk array
//! is interned once and every per-MTU packet payload is a view into it.
//!
//! [`slice`]: Bytes::slice
//!
//! The type is deliberately read-only: simulated corruption (the one
//! hot-path writer) goes through copy-on-write in
//! [`Packet::corrupt_payload_bit`](crate::Packet::corrupt_payload_bit),
//! so no holder can observe another's mutation.
//!
//! `Rc` (not `Arc`) keeps the refcount bump free of atomics; a whole
//! cluster simulation is single-threaded by design, and parallel
//! harnesses run one simulation per thread, never sharing packets
//! across threads.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// A cheaply cloneable view into a shared, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    /// Shared backing storage (`Rc<Vec<u8>>` adopts a `Vec` without
    /// copying, unlike `Rc<[u8]>`).
    data: Rc<Vec<u8>>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// An O(1) sub-view of `range` within this view (no copy).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {}..{} out of bounds for Bytes of length {}",
            range.start,
            range.end,
            self.len
        );
        Bytes {
            data: Rc::clone(&self.data),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// Copies the visible bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// The visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Adopts the `Vec` as shared storage without copying its contents.
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Rc::new(v),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(a: [u8; N]) -> Self {
        Bytes::from(a.to_vec())
    }
}

impl PartialEq for Bytes {
    /// Content equality: two views are equal iff their visible bytes
    /// are, regardless of backing buffer identity.
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B)", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_is_zero_copy_and_slices_share() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(&*b, &[1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        let ss = s.slice(1..2);
        assert_eq!(&*ss, &[3]);
        // Clones and slices point at the same backing buffer.
        assert!(Rc::ptr_eq(&b.data, &ss.data));
    }

    #[test]
    fn equality_is_by_contents() {
        let a = Bytes::from(vec![9u8, 8, 7]);
        let b = Bytes::from(vec![0u8, 9, 8, 7]).slice(1..4);
        assert_eq!(a, b);
        assert_ne!(a, Bytes::from(vec![9u8, 8]));
    }

    #[test]
    fn empty_views() {
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let b = Bytes::from(vec![1u8]);
        assert!(b.slice(1..1).is_empty());
        assert_eq!(b.to_vec(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        Bytes::from(vec![1u8, 2]).slice(0..3);
    }
}
