//! Criterion benches: time the simulator itself on scaled-down
//! configurations of every figure's workload (one group per figure).
//! The *results* of the figures come from the `repro` binary; these
//! benches track the cost of producing them.

use criterion::{criterion_group, criterion_main, Criterion};

use asan_apps::{grep, hashjoin, md5app, mpeg, psort, reduce, select, tar, Variant};

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig3_mpeg_active_pref", |b| {
        let p = mpeg::Params::small();
        b.iter(|| mpeg::run(Variant::ActivePref, &p))
    });
    g.bench_function("fig5_hashjoin_active_pref", |b| {
        let p = hashjoin::Params::small();
        b.iter(|| hashjoin::run(Variant::ActivePref, &p))
    });
    g.bench_function("fig7_select_active_pref", |b| {
        let p = select::Params::small();
        b.iter(|| select::run(Variant::ActivePref, &p))
    });
    g.bench_function("fig9_grep_active_pref", |b| {
        let p = grep::Params::small();
        b.iter(|| grep::run(Variant::ActivePref, &p))
    });
    g.bench_function("fig11_tar_active", |b| {
        let p = tar::Params::small();
        b.iter(|| tar::run(Variant::Active, &p))
    });
    g.bench_function("fig13_psort_active_pref", |b| {
        let p = psort::Params::small();
        b.iter(|| psort::run(Variant::ActivePref, &p))
    });
    g.bench_function("fig15_reduce_to_one_16", |b| {
        b.iter(|| reduce::run(reduce::Mode::ReduceToOne, true, 16))
    });
    g.bench_function("fig16_distributed_16", |b| {
        b.iter(|| reduce::run(reduce::Mode::Distributed, true, 16))
    });
    g.bench_function("fig17_md5_4cpu", |b| {
        let p = md5app::Params {
            switch_cpus: 4,
            ..md5app::Params::small()
        };
        b.iter(|| md5app::run(Variant::Active, &p))
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
