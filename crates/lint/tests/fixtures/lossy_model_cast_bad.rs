//! Known-bad: a 4 GiB transfer wraps this counter and quietly skews
//! the bandwidth curve instead of crashing.

pub fn book_transfer(total_bytes: u64, elapsed_ns: u64) -> (u32, u32) {
    (total_bytes as u32, elapsed_ns as u32)
}
