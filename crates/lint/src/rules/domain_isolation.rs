//! Rule `domain-isolation`: no shared mutable state between engine
//! domains.
//!
//! ROADMAP item 2 (the parallel simulation core) partitions the event
//! loop by engine: each engine's state must be movable to its own
//! worker without hidden channels. Three things defeat that
//! partitioning and all three lex innocently in a single file:
//!
//! 1. process-wide mutable state (`static mut`, `thread_local!`),
//! 2. ad-hoc threading primitives outside the blessed worker pool
//!    (`std::sync::*`, `std::thread::*` anywhere but
//!    `asan-bench::pool`),
//! 3. interior mutability (`Rc`, `RefCell`, `Cell`) on a type that two
//!    different engines can reach through their fields — aliased
//!    mutation across the future thread boundary.
//!
//! Items 1–2 are token checks over every file; item 3 runs a
//! reachability walk over the phase-1 index: seed at every
//! `*Engine` struct, close over field-type identifiers, and deny any
//! type reached from two or more engines that carries an
//! interior-mutability wrapper in a field type.

use std::collections::{BTreeMap, BTreeSet};

use super::WorkspaceRule;
use crate::diag::{Diagnostic, Severity};
use crate::index::WorkspaceIndex;
use crate::lexer::Kind;

/// The one module allowed to touch `std::sync` / `std::thread`: the
/// bench harness's worker pool, which never runs inside a simulation.
const BLESSED: &str = "crates/bench/src/pool.rs";

/// Interior-mutability wrappers that alias mutation across engines.
const SHARED_MUT: &[&str] = &["Rc", "RefCell", "Cell"];

pub(crate) struct DomainIsolation;

impl WorkspaceRule for DomainIsolation {
    fn name(&self) -> &'static str {
        "domain-isolation"
    }

    fn describe(&self) -> &'static str {
        "no static mut/thread_local, no std::sync|thread outside bench::pool, no Rc/RefCell/Cell on state shared by >1 engine"
    }

    fn scope(&self) -> &'static str {
        "workspace (std::sync/std::thread allowed only in crates/bench/src/pool.rs)"
    }

    fn since_pr(&self) -> u32 {
        8
    }

    fn check(&self, index: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
        self.check_ambient_state(index, out);
        self.check_shared_interior_mut(index, out);
    }
}

impl DomainIsolation {
    /// Items 1–2: token scan for process-wide state and stray
    /// threading primitives.
    fn check_ambient_state(&self, index: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
        for file in &index.files {
            if file.rel_path == BLESSED {
                continue;
            }
            let toks = &file.lexed.tokens;
            for (i, t) in toks.iter().enumerate() {
                if t.kind != Kind::Ident {
                    continue;
                }
                match t.text.as_str() {
                    "static" if super::is_ident(toks, i + 1, "mut") => {
                        out.push(
                            self.deny(
                                file,
                                t.line,
                                t.col,
                                "`static mut` is process-wide mutable state; engine state \
                             must live in the engine struct so the parallel core can \
                             move it to a worker"
                                    .to_string(),
                            ),
                        );
                    }
                    "thread_local" if super::is_punct(toks, i + 1, "!") => {
                        out.push(
                            self.deny(
                                file,
                                t.line,
                                t.col,
                                "`thread_local!` pins state to whichever thread runs the \
                             engine; store it in the engine struct instead"
                                    .to_string(),
                            ),
                        );
                    }
                    "std" if super::is_punct(toks, i + 1, "::") => {
                        let Some(seg) = toks.get(i + 2) else { continue };
                        if seg.kind == Kind::Ident && (seg.text == "sync" || seg.text == "thread") {
                            out.push(self.deny(
                                file,
                                t.line,
                                t.col,
                                format!(
                                    "`std::{}` outside `asan-bench::pool`: simulation \
                                     code must not spawn or synchronize threads; \
                                     cross-engine traffic goes through the event bus",
                                    seg.text
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Item 3: interior mutability on types reachable from more than
    /// one engine.
    fn check_shared_interior_mut(&self, index: &WorkspaceIndex, out: &mut Vec<Diagnostic>) {
        let by_name = index.structs_by_name();
        // Seed the walk at every `*Engine` struct, then close over the
        // identifiers in field (and tuple newtype) types. Type names
        // are matched workspace-wide by bare name — coarse, but
        // collisions only widen the net, and findings anchor at real
        // field declarations.
        let mut reached_by: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for root in by_name.keys().filter(|n| n.ends_with("Engine")) {
            let mut stack = vec![*root];
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            while let Some(ty) = stack.pop() {
                if !seen.insert(ty) {
                    continue;
                }
                reached_by.entry(ty).or_default().insert(*root);
                let Some(defs) = by_name.get(ty) else {
                    continue;
                };
                for (_, s) in defs {
                    for id in s
                        .fields
                        .iter()
                        .flat_map(|f| f.ty.iter())
                        .chain(s.tuple_ty.iter())
                    {
                        if by_name.contains_key(id.as_str()) {
                            stack.push(id.as_str());
                        }
                    }
                }
            }
        }

        for (ty, roots) in &reached_by {
            if roots.len() < 2 {
                continue;
            }
            let Some(defs) = by_name.get(ty) else {
                continue;
            };
            for (fi, s) in defs {
                let file = &index.files[*fi];
                for f in &s.fields {
                    let Some(w) = SHARED_MUT.iter().find(|w| f.ty.iter().any(|t| t == **w)) else {
                        continue;
                    };
                    let owners: Vec<&str> = roots.iter().copied().collect();
                    out.push(self.deny(
                        file,
                        f.line,
                        f.col,
                        format!(
                            "field `{}.{}` wraps state in `{w}`, and `{}` is reachable \
                             from {} engines ({}); shared interior mutability aliases \
                             across the future engine/thread boundary — own the data \
                             in one engine and communicate through events",
                            ty,
                            f.name,
                            ty,
                            owners.len(),
                            owners.join(", "),
                        ),
                    ));
                }
            }
        }
    }

    fn deny(
        &self,
        file: &crate::index::FileIndex,
        line: u32,
        col: u32,
        message: String,
    ) -> Diagnostic {
        Diagnostic {
            rule: self.name(),
            severity: Severity::Deny,
            file: file.rel_path.clone(),
            line,
            col,
            message,
        }
    }
}
