//! `asan-lint` — the workspace's determinism & event-contract checker.
//!
//! The golden-digest regression (`tests/golden.rs`) proves after the
//! fact that a change kept all benchmarks bit-identical; this crate is
//! the *before* layer: a static pass over every `.rs` file that
//! rejects the constructs which historically cause digest drift —
//! unordered map iteration, wall-clock reads, ambient randomness,
//! silently truncating casts — plus the structural contracts the
//! parallel-core refactor leans on (the `Event` vocabulary is closed
//! over the workspace, snapshot writers mirror their restore readers,
//! engine domains share no mutable state).
//!
//! # How a run works
//!
//! The analyzer is two-phase:
//!
//! 1. **Index.** Every `.rs` file under the workspace root (plus any
//!    explicitly passed paths) is lexed once and folded into a
//!    [`index::WorkspaceIndex`]: per file, the `struct` definitions
//!    with field-type identifiers, `enum` definitions with variants,
//!    and `fn` items with their impl type and body token span. The
//!    index is cheap — one lex plus a linear item scan per file — and
//!    it is *always* built over the whole workspace, even when only a
//!    subset of files is being reported on. That is what makes
//!    `check --paths $(git diff --name-only ...)` sound: a changed
//!    file is judged with full cross-file context, and only the
//!    *reporting* is narrowed.
//! 2. **Check.** Per-file rules ([`rules::Rule`]) run over each file's
//!    tokens; workspace rules ([`rules::WorkspaceRule`]) run once over
//!    the index. The driver then does the bookkeeping no rule can:
//!    `// asan-lint: allow(<rule>)` directives suppress findings on
//!    their own and the following line, and any directive that
//!    suppressed *nothing* (or names an unknown rule) becomes an
//!    `unused-allow` finding of its own — the escape-hatch inventory
//!    can only shrink. Finally diagnostics are filtered (`--paths`,
//!    `--diff-base`, `--baseline`) and sorted by (path, line, column,
//!    rule) so two runs over the same tree byte-diff cleanly.
//!
//! The container this workspace builds in has no crates.io access, so
//! the pass is built on a small in-tree lexer ([`lexer`]) rather than
//! `syn`; see `docs/DETERMINISM.md` for the rule catalog and the
//! `// asan-lint: allow(<rule>)` escape hatch.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

pub mod diag;
pub mod fix;
pub mod index;
pub mod lexer;
pub mod rules;

pub use diag::{render_human, render_json, Diagnostic, Severity, Summary};

use index::WorkspaceIndex;
use rules::FileCtx;

/// What to check and how.
#[derive(Debug, Default)]
pub struct Options {
    /// Workspace root (where `Cargo.toml` and `crates/` live).
    pub root: PathBuf,
    /// Report only on these files. The whole workspace is still
    /// indexed for cross-file context; empty means report on
    /// everything.
    pub paths: Vec<PathBuf>,
    /// Apply every rule to every file, ignoring per-rule path scopes
    /// (used by the fixture tests).
    pub scope_all: bool,
    /// Known-findings file (`rule<TAB>file<TAB>message` lines);
    /// matching findings are reported as baselined, not violations.
    pub baseline: Option<PathBuf>,
    /// Report only on files changed since this git ref.
    pub diff_base: Option<String>,
}

/// A finished run: what was checked and what was found.
#[derive(Debug)]
pub struct Report {
    /// Files that were lexed and checked.
    pub checked_files: usize,
    /// All findings, sorted by (file, line, col, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings matched and swallowed by `--baseline`.
    pub baselined: usize,
}

impl Report {
    /// Number of `Deny` findings (the exit-code driver).
    pub fn violations(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of findings `check --fix` can rewrite mechanically.
    pub fn fixable(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| fix::is_fixable(d))
            .count()
    }

    /// The run-level counters for rendering.
    pub fn summary(&self) -> Summary {
        Summary {
            checked_files: self.checked_files,
            catalog_version: rules::CATALOG_VERSION,
            baselined: self.baselined,
            fixable: self.fixable(),
        }
    }
}

/// Runs the checker. `Err` means an internal error (unreadable file),
/// not a lint finding.
pub fn run(opts: &Options) -> Result<Report, String> {
    // Phase 1: index the workspace walk plus any explicit paths,
    // deduplicated, sorted by relative path.
    let mut walked = Vec::new();
    walk(&opts.root, &mut walked);
    let mut files: BTreeMap<String, PathBuf> = walked
        .into_iter()
        .map(|p| (rel_path(&opts.root, &p), p))
        .collect();
    let mut requested: Vec<String> = Vec::new();
    for p in &opts.paths {
        let rel = rel_path(&opts.root, p);
        requested.push(rel.clone());
        files.entry(rel).or_insert_with(|| p.clone());
    }
    let mut lexed_files = Vec::with_capacity(files.len());
    for (rel, path) in &files {
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        lexed_files.push((rel.clone(), lexer::lex(&src)));
    }
    let index = WorkspaceIndex::build(lexed_files);

    // Phase 2: per-file rules, workspace rules, then driver
    // bookkeeping (allow suppression and the unused-allow audit).
    let raw = analyze(&index, opts.scope_all);
    let mut diagnostics = suppress_and_audit(&index, raw);

    // Narrow the *report* (never the analysis) to the requested files.
    let checked_files = if requested.is_empty() {
        files.len()
    } else {
        let keep: BTreeSet<&str> = requested.iter().map(String::as_str).collect();
        diagnostics.retain(|d| keep.contains(d.file.as_str()));
        requested.len()
    };
    if let Some(base) = &opts.diff_base {
        let changed = git_changed_files(&opts.root, base)?;
        diagnostics.retain(|d| changed.contains(d.file.as_str()));
    }

    // Baseline: swallow known findings (matched by rule + file +
    // message, deliberately line-insensitive so unrelated edits above
    // a baselined finding do not un-baseline it).
    let mut baselined = 0usize;
    if let Some(path) = &opts.baseline {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let mut known: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let mut parts = line.splitn(3, '\t');
            let (Some(r), Some(f), Some(m)) = (parts.next(), parts.next(), parts.next()) else {
                return Err(format!(
                    "malformed baseline line (want rule<TAB>file<TAB>message): {line:?}"
                ));
            };
            *known
                .entry((r.to_string(), f.to_string(), m.to_string()))
                .or_default() += 1;
        }
        diagnostics.retain(|d| {
            let key = (d.rule.to_string(), d.file.clone(), d.message.clone());
            if let Some(n) = known.get_mut(&key) {
                if *n > 0 {
                    *n -= 1;
                    baselined += 1;
                    return false;
                }
            }
            true
        });
    }

    diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    Ok(Report {
        checked_files,
        diagnostics,
        baselined,
    })
}

/// One line of the `--write-baseline` format for a finding.
pub fn baseline_line(d: &Diagnostic) -> String {
    format!("{}\t{}\t{}", d.rule, d.file, d.message)
}

/// Runs every rule over the index; returns raw (pre-suppression)
/// findings.
fn analyze(index: &WorkspaceIndex, scope_all: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let file_rules = rules::all_rules();
    for file in &index.files {
        let ctx = FileCtx {
            rel_path: &file.rel_path,
            lexed: &file.lexed,
        };
        for rule in &file_rules {
            if !scope_all && !rule.applies(&file.rel_path) {
                continue;
            }
            rule.check(&ctx, &mut out);
        }
    }
    for rule in rules::workspace_rules() {
        rule.check(index, &mut out);
    }
    out
}

/// Applies `// asan-lint: allow(..)` suppression and emits the
/// `unused-allow` audit: every directive must suppress at least one
/// finding and name only catalog rules. `unused-allow` findings are
/// not themselves suppressible.
fn suppress_and_audit(index: &WorkspaceIndex, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let catalog_names: BTreeSet<&str> = rules::catalog().iter().map(|e| e.name).collect();
    let file_of: BTreeMap<&str, &index::FileIndex> = index
        .files
        .iter()
        .map(|f| (f.rel_path.as_str(), f))
        .collect();
    // used[rel_path] = one flag per allow directive in that file.
    let mut used: BTreeMap<&str, Vec<bool>> = index
        .files
        .iter()
        .map(|f| (f.rel_path.as_str(), vec![false; f.lexed.allows.len()]))
        .collect();

    let mut kept = Vec::with_capacity(raw.len());
    for d in raw {
        let Some(file) = file_of.get(d.file.as_str()) else {
            kept.push(d);
            continue;
        };
        let mut suppressed = false;
        for (ai, a) in file.lexed.allows.iter().enumerate() {
            let in_range = a.line == d.line || a.line + 1 == d.line;
            if in_range && a.rules.iter().any(|r| r == d.rule || r == "all") {
                suppressed = true;
                used.get_mut(d.file.as_str()).expect("indexed file")[ai] = true;
            }
        }
        if !suppressed {
            kept.push(d);
        }
    }

    for file in &index.files {
        let flags = &used[file.rel_path.as_str()];
        for (ai, a) in file.lexed.allows.iter().enumerate() {
            let unknown: Vec<&str> = a
                .rules
                .iter()
                .map(String::as_str)
                .filter(|r| *r != "all" && !catalog_names.contains(r))
                .collect();
            if !unknown.is_empty() {
                kept.push(Diagnostic {
                    rule: rules::UNUSED_ALLOW,
                    severity: Severity::Deny,
                    file: file.rel_path.clone(),
                    line: a.line,
                    col: 0,
                    message: format!(
                        "allow directive names unknown rule(s) {}; see `--list-rules` \
                         for the catalog",
                        unknown
                            .iter()
                            .map(|r| format!("`{r}`"))
                            .collect::<Vec<_>>()
                            .join(", "),
                    ),
                });
            } else if !flags[ai] {
                kept.push(Diagnostic {
                    rule: rules::UNUSED_ALLOW,
                    severity: Severity::Deny,
                    file: file.rel_path.clone(),
                    line: a.line,
                    col: 0,
                    message: format!(
                        "`// asan-lint: allow({})` suppresses nothing on this or the \
                         next line; delete it (`check --fix` does) so the escape-hatch \
                         inventory stays honest",
                        a.rules.join(", "),
                    ),
                });
            }
        }
    }
    kept
}

/// Files changed since `base`, as workspace-relative paths.
fn git_changed_files(root: &Path, base: &str) -> Result<BTreeSet<String>, String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", base])
        .output()
        .map_err(|e| format!("cannot run git diff: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "git diff --name-only {base} failed: {}",
            String::from_utf8_lossy(&out.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect())
}

/// Workspace-relative display path with `/` separators.
fn rel_path(root: &Path, file: &Path) -> String {
    let canonical = file.canonicalize();
    let file = canonical.as_deref().unwrap_or(file);
    let root_canonical = root.canonicalize();
    let root = root_canonical.as_deref().unwrap_or(root);
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Directories never scanned: build output, VCS, and the lint's own
/// known-bad fixture corpus.
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | ".git" | "fixtures") || name.starts_with('.')
}

/// Recursively collects `.rs` files under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skip_dir(&name) {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_snippet(rel: &str, src: &str, scope_all: bool) -> Vec<Diagnostic> {
        let index = WorkspaceIndex::build(vec![(rel.to_string(), lexer::lex(src))]);
        suppress_and_audit(&index, analyze(&index, scope_all))
    }

    #[test]
    fn hashmap_denied_in_core_but_not_bench() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(check_snippet("crates/core/src/x.rs", src, false).len(), 1);
        assert!(check_snippet("crates/bench/src/x.rs", src, false).is_empty());
    }

    #[test]
    fn allow_comment_suppresses_and_counts_as_used() {
        let src = "use std::collections::HashMap; // asan-lint: allow(no-unordered-iteration)\n";
        assert!(check_snippet("crates/core/src/x.rs", src, false).is_empty());
    }

    #[test]
    fn unused_allow_is_itself_a_finding() {
        let src = "// asan-lint: allow(no-wall-clock)\nfn quiet() {}\n";
        let d = check_snippet("crates/core/src/x.rs", src, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unused-allow");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn allow_naming_unknown_rule_is_flagged() {
        let src = "// asan-lint: allow(no-wall-clok)\nfn quiet() {}\n";
        let d = check_snippet("crates/core/src/x.rs", src, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "unused-allow");
        assert!(d[0].message.contains("no-wall-clok"));
    }

    #[test]
    fn wall_clock_denied_outside_benches() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(check_snippet("crates/cpu/src/x.rs", src, false).len(), 2);
        assert!(check_snippet("crates/bench/benches/x.rs", src, false).is_empty());
    }

    #[test]
    fn randomness_denied_everywhere() {
        let src = "fn f() { let x = rand::random::<u64>(); }\n";
        assert_eq!(
            check_snippet("crates/bench/benches/x.rs", src, false).len(),
            1
        );
    }

    #[test]
    fn lossy_cast_on_model_quantity() {
        let src = "fn f(total_cycles: u64) -> u32 { total_cycles as u32 }\n";
        assert_eq!(check_snippet("crates/cpu/src/x.rs", src, false).len(), 1);
        // Widening is fine.
        let ok = "fn f(total_cycles: u32) -> u64 { u64::from(total_cycles) }\n";
        assert!(check_snippet("crates/cpu/src/x.rs", ok, false).is_empty());
    }

    #[test]
    fn event_wildcard_denied_in_engines() {
        let src = "fn on_event(&mut self, ev: Event) {\n    match ev {\n        Event::Start(_) => {}\n        _ => {}\n    }\n}\n";
        let d = check_snippet("crates/core/src/engines/x.rs", src, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 4);
        // A loud catch-all is a conscious decision.
        let ok = "fn on_event(&mut self, ev: Event) {\n    match ev {\n        Event::Start(_) => {}\n        other => unreachable!(\"{other:?}\"),\n    }\n}\n";
        assert!(check_snippet("crates/core/src/engines/x.rs", ok, false).is_empty());
    }

    #[test]
    fn digest_completeness_finds_missing_field() {
        let src = "pub struct ClusterStats { pub events: u64, pub lost: u64 }\n\
                   impl ClusterStats { pub fn digest(&self) -> u64 { self.events } }\n";
        let d = check_snippet("crates/core/src/stats.rs", src, false);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lost"));
    }

    #[test]
    fn cross_file_orphan_is_caught_only_with_both_files_indexed() {
        // `Event::Orphan` is constructed in net/ but no engine matches
        // it — invisible to every per-file rule, denied by
        // event-flow-closure.
        let events = "pub enum Event { Ping, Orphan }\n";
        let engine = "impl HostEngine { fn on_event(&mut self, ev: Event) {\n    match ev { Event::Ping => {}, other => unreachable!(\"{other:?}\") }\n} }\n";
        let producer = "fn emit() -> Vec<Event> { vec![Event::Ping, Event::Orphan] }\n";
        let index = WorkspaceIndex::build(vec![
            ("crates/core/src/events.rs".to_string(), lexer::lex(events)),
            (
                "crates/core/src/engines/host.rs".to_string(),
                lexer::lex(engine),
            ),
            ("crates/net/src/emit.rs".to_string(), lexer::lex(producer)),
        ]);
        let d = suppress_and_audit(&index, analyze(&index, false));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "event-flow-closure");
        assert_eq!(d[0].file, "crates/core/src/events.rs");
        assert!(d[0].message.contains("Orphan"));
    }

    #[test]
    fn snapshot_symmetry_spans_files() {
        let writer = "impl Port { pub fn snapshot(&self, w: &mut SnapWriter) { w.u32(self.seq); w.u64(self.credits); } }\n";
        let reader = "impl Port { pub fn restore(&mut self, r: &mut SnapReader) { self.seq = r.u32()?; self.credits = r.u32()? as u64; Ok(()) } }\n";
        let index = WorkspaceIndex::build(vec![
            ("crates/net/src/port.rs".to_string(), lexer::lex(writer)),
            ("crates/net/src/restore.rs".to_string(), lexer::lex(reader)),
        ]);
        let d = suppress_and_audit(&index, analyze(&index, false));
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "snapshot-symmetry");
        assert_eq!(d[0].file, "crates/net/src/restore.rs");
    }
}
