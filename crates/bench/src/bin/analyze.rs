//! Renders tables from the harness's JSON documents.
//!
//! ```text
//! analyze breakdown <file.json>        per-phase time-breakdown table
//! analyze latency   <file.json>        latency-percentile table
//! analyze timeline  <file.json>        windowed sparklines + hotspots
//! analyze perf      <file.json>        wall-clock / events-per-sec table
//! analyze perf      <old.json> <new.json>   trajectory diff (events/sec)
//! analyze scale     <file.json>        multi-switch speedup table
//! ```
//!
//! `breakdown`, `latency`, and `timeline` read what
//! `repro --small metrics --json > file.json` writes: the nine
//! benchmarks in the normal and active configurations, each with its
//! phase breakdown and latency percentiles. `perf` reads the
//! `BENCH_PERF.json` that `repro perf` writes — with two files it
//! diffs the trajectory points run-by-run. `scale` reads what
//! `repro scale --json` writes. This subcommand is the offline half of
//! the observability pipeline — simulate once, slice the report as
//! many ways as needed.

use std::env;
use std::fs;
use std::process::ExitCode;

use asan_bench::{
    latency_report, parse_metrics_doc, perf, phase_breakdown_report, scale, timeline_report,
};

fn usage() -> ExitCode {
    eprintln!("usage: analyze <breakdown|latency|timeline|perf|scale> <file.json> [new.json]");
    ExitCode::FAILURE
}

fn read(path: &str) -> Result<String, ExitCode> {
    fs::read_to_string(path).map_err(|e| {
        eprintln!("analyze: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let (cmd, path, second) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, old, new] if cmd == "perf" => (cmd.as_str(), old.as_str(), Some(new.as_str())),
        _ => return usage(),
    };
    let text = match read(path) {
        Ok(t) => t,
        Err(code) => return code,
    };
    match cmd {
        "perf" => {
            let old = match perf::parse_perf_doc(&text) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("analyze: {path} is not a perf document: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(new_path) = second else {
                print!("{}", perf::perf_report(&old));
                return ExitCode::SUCCESS;
            };
            let new_text = match read(new_path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match perf::parse_perf_doc(&new_text) {
                Ok(new) => print!("{}", perf::perf_diff(&old, &new)),
                Err(e) => {
                    eprintln!("analyze: {new_path} is not a perf document: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        "scale" => match scale::parse_scale_doc(&text) {
            Ok(doc) => print!("{}", scale::scale_report(&doc)),
            Err(e) => {
                eprintln!("analyze: {path} is not a scale document: {e}");
                return ExitCode::FAILURE;
            }
        },
        "breakdown" | "latency" | "timeline" => {
            let rows = match parse_metrics_doc(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("analyze: {path} is not a metrics document: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match cmd {
                "breakdown" => print!("{}", phase_breakdown_report(&rows)),
                "latency" => print!("{}", latency_report(&rows)),
                _ => print!("{}", timeline_report(&rows)),
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
