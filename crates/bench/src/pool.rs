//! Dependency-free scoped worker pool for the repro harness.
//!
//! The simulations in a sweep are completely independent — each builds
//! its own [`Cluster`], runs it, and returns plain data — so the
//! harness can run them on OS threads and only the *wall-clock* time
//! changes. Determinism is preserved by construction:
//!
//! - every job is a self-contained closure with no shared mutable
//!   state (the simulators themselves are single-threaded and
//!   `Rc`-based internally; only the `Send` result crosses threads);
//! - results are collected **by submission index**, so the output
//!   order is the job order, never the completion order;
//! - the worker count affects scheduling only, never results — the
//!   same sweep on 1 or 64 workers prints byte-identical reports.
//!
//! [`Cluster`]: ../asan_core/cluster/struct.Cluster.html
//!
//! # Example
//!
//! ```
//! use asan_bench::pool;
//!
//! let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..8u64)
//!     .map(|i| Box::new(move || i * i) as Box<dyn FnOnce() -> u64 + Send>)
//!     .collect();
//! let squares = pool::run_indexed(jobs, 4);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A boxed, sendable job for [`run_indexed`].
pub type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// Runs `jobs` across up to `workers` OS threads and returns their
/// results **in submission order**, regardless of completion order.
///
/// With `workers <= 1` (or a single job) everything runs inline on the
/// calling thread — the deterministic serial baseline the parallel
/// path must match byte for byte.
///
/// # Panics
///
/// Propagates a panic from any job after all workers have stopped.
pub fn run_indexed<T: Send>(jobs: Vec<Job<T>>, workers: usize) -> Vec<T> {
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    let workers = workers.min(n);
    // Each slot owns one job (taken exactly once) and later its result;
    // a lock-free counter hands out indices so workers self-balance.
    let slots: Vec<Mutex<Option<Job<T>>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i]
                    .lock()
                    .expect("job slot")
                    .take()
                    .expect("each job runs once");
                let out = job();
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker panicked").expect("job ran"))
        .collect()
}

/// The worker count the harness should use: the `ASAN_JOBS` environment
/// variable when set (0 or unparsable falls back), else the machine's
/// available parallelism, else 1. Worker count never affects results,
/// only wall-clock time, so reading the environment here is safe.
pub fn default_workers() -> usize {
    if let Ok(v) = std::env::var("ASAN_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(n: u64, workers: usize) -> Vec<u64> {
        let jobs: Vec<Job<u64>> = (0..n)
            .map(|i| Box::new(move || i * i) as Job<u64>)
            .collect();
        run_indexed(jobs, workers)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let expect: Vec<u64> = (0..64).map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64, 100] {
            assert_eq!(squares(64, workers), expect, "workers = {workers}");
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        assert_eq!(squares(17, 1), squares(17, 4));
    }

    #[test]
    fn empty_and_single_job_edge_cases() {
        assert_eq!(squares(0, 8), Vec::<u64>::new());
        assert_eq!(squares(1, 8), vec![0]);
    }

    #[test]
    fn uneven_job_durations_do_not_reorder_results() {
        // Early jobs sleep, late jobs finish first; index-ordered
        // collection must hide that completely.
        let jobs: Vec<Job<usize>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i < 2 {
                        // Test-only delay. asan-lint: allow(no-wall-clock)
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    i
                }) as Job<usize>
            })
            .collect();
        assert_eq!(run_indexed(jobs, 4), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}
