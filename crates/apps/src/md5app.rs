//! MD5 (§5): message digest of a 256 KB input.
//!
//! The deliberately *unsuccessful* partitioning example: MD5 is
//! compute-intensive and its block chaining prevents parallelism, so
//! putting it on the 4× slower switch CPU **slows the program down** —
//! until the paper's K-way interleaved variant spreads independent
//! chains over 2 or 4 switch CPUs (Figure 17: 4 CPUs give 1.50× without
//! prefetch and 1.18× with prefetch, vs the host-only normal case).
//!
//! Digests are real (RFC 1321): the simulated runs produce exactly the
//! digest of the reference implementation.

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::active::ActiveSwitchConfig;
use asan_core::cluster::{ClusterConfig, Dest, HostCtx, HostMsg, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx, MsgInfo};
use asan_net::{HandlerId, NodeId, MTU};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::blockio::{BlockPlan, BlockReader};
use crate::cost;
use crate::data;
use crate::md5::{md5, md5_interleaved, Md5};
use crate::runner::{drive, standard_cluster, AppRun, Variant};

/// Handler ID of the MD5 handler.
pub const MD5_HANDLER: HandlerId = HandlerId::new_const(8);

/// Flow tag of the digest result message.
pub const DONE_HANDLER: HandlerId = HandlerId::new_const(59);

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Input size (256 KB in Table 1).
    pub input_bytes: u64,
    /// I/O request size.
    pub io_block: u64,
    /// Number of switch CPUs (1, 2 or 4; also the number of chains K).
    pub switch_cpus: usize,
}

impl Params {
    /// The paper's configuration with one switch CPU.
    pub fn paper() -> Self {
        Params {
            input_bytes: 256 * 1024,
            io_block: 64 * 1024,
            switch_cpus: 1,
        }
    }

    /// The multi-processor variant (Figure 17).
    pub fn with_cpus(k: usize) -> Self {
        Params {
            switch_cpus: k,
            ..Params::paper()
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        Params {
            input_bytes: 32 * 1024,
            ..Params::paper()
        }
    }
}

/// First 8 bytes of a digest, used as the validation artifact.
fn digest_tag(d: &[u8; 16]) -> u64 {
    u64::from_le_bytes(d[..8].try_into().expect("8 bytes"))
}

/// Normal-case host program: read and hash the whole file (original
/// single-chain MD5).
struct NormalMd5 {
    input: Arc<Vec<u8>>, // asan-lint: allow(snapshot-completeness)
    reader: BlockReader,
    hasher: Option<Md5>,
    digest: Option<[u8; 16]>,
}

impl HostProgram for NormalMd5 {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        let Some((off, len)) = self.reader.on_complete(ctx, req) else {
            return;
        };
        let chunk = &self.input[off as usize..(off + len) as usize];
        self.hasher.as_mut().expect("hashing").update(chunk);
        // Charge the compression: per-byte cost + streaming loads.
        ctx.cpu().scan(
            0x1000_0000 + off,
            len,
            64,
            cost::MD5_INSTR_PER_BYTE * 64,
            false,
        );
        self.reader.refill(ctx);
        if self.reader.done() {
            self.digest = Some(self.hasher.take().expect("hashing").finalize());
            ctx.finish();
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.bool(self.hasher.is_some());
        if let Some(h) = &self.hasher {
            h.snapshot(w);
        }
        w.bool(self.digest.is_some());
        if let Some(d) = &self.digest {
            w.bytes(d);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.hasher = if r.bool()? {
            Some(Md5::restore(r)?)
        } else {
            None
        };
        self.digest = if r.bool()? {
            let d = r.bytes()?;
            Some(
                <[u8; 16]>::try_from(d.as_slice())
                    .map_err(|_| SnapError::Malformed("md5 digest length"))?,
            )
        } else {
            None
        };
        Ok(())
    }
}

/// The MD5 switch handler: K independent chains, packet `seq % K`
/// pinned to switch CPU `seq % K` (the paper's added "switch CPU Id
/// field in the message header").
pub struct Md5Handler {
    k: usize, // asan-lint: allow(snapshot-completeness)
    chains: Vec<Md5>,
    host: NodeId, // asan-lint: allow(snapshot-completeness)
    seen: u64,
    expect: u64, // asan-lint: allow(snapshot-completeness)
}

impl Md5Handler {
    fn new(k: usize, host: NodeId, expect: u64) -> Self {
        Md5Handler {
            k,
            chains: (0..k).map(|_| Md5::new()).collect(),
            host,
            seen: 0,
            expect,
        }
    }
}

impl Handler for Md5Handler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let msg = ctx.msg();
        let payload = ctx.payload();
        let chain = msg.seq as usize % self.k;
        self.chains[chain].update(&payload);
        ctx.charge_stream(payload.len(), cost::MD5_INSTR_PER_BYTE * 8);
        self.seen += payload.len() as u64;
        if self.seen >= self.expect {
            // Finalize all chains, digest the digests, send the result.
            let mut combined = Md5::new();
            for c in std::mem::take(&mut self.chains) {
                combined.update(&c.finalize());
            }
            // Final combination cost: K digests of 16 B each.
            ctx.compute(self.k as u64 * 16 * cost::MD5_INSTR_PER_BYTE + 2_000);
            let digest = combined.finalize();
            ctx.send(self.host, Some(DONE_HANDLER), 0, &digest);
        }
    }

    fn cpu_affinity(&self, msg: &MsgInfo) -> Option<usize> {
        Some(msg.seq as usize % self.k)
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.usize(self.chains.len());
        for c in &self.chains {
            c.snapshot(w);
        }
        w.u64(self.seen);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        self.chains = (0..n).map(|_| Md5::restore(r)).collect::<Result<_, _>>()?;
        self.seen = r.u64()?;
        Ok(())
    }
}

/// Active-case host program: issue mapped reads, receive the digest.
struct ActiveMd5 {
    reader: BlockReader,
    digest: Option<[u8; 16]>,
}

impl HostProgram for ActiveMd5 {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        self.reader.on_complete(ctx, req);
        self.reader.refill(ctx);
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if msg.handler == Some(DONE_HANDLER) {
            self.digest = Some(msg.data[..16].try_into().expect("digest"));
            ctx.finish();
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.bool(self.digest.is_some());
        if let Some(d) = &self.digest {
            w.bytes(d);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.digest = if r.bool()? {
            let d = r.bytes()?;
            Some(
                <[u8; 16]>::try_from(d.as_slice())
                    .map_err(|_| SnapError::Malformed("md5 digest length"))?,
            )
        } else {
            None
        };
        Ok(())
    }
}

/// Runs MD5 in one configuration, validating the digest bit-for-bit
/// against the reference implementation.
///
/// # Panics
///
/// Panics if the digest is wrong.
pub fn run(variant: Variant, p: &Params) -> AppRun {
    let input = Arc::new(data::md5_input(p.input_bytes as usize));
    // Reference: single chain for normal, K-way interleave (per MTU
    // packet) for active.
    let want = if variant.is_active() {
        md5_interleaved(&input, p.switch_cpus, MTU)
    } else {
        md5(&input)
    };

    let build = || {
        let mut cfg = ClusterConfig::paper();
        cfg.active = ActiveSwitchConfig::with_cpus(p.switch_cpus);
        let (mut cl, hs, ts, sw) = standard_cluster(1, 1, cfg);
        let file = cl
            .add_file(ts[0], input.as_ref().clone())
            .expect("cluster setup");
        let host = hs[0];

        if variant.is_active() {
            cl.register_handler(
                sw,
                MD5_HANDLER,
                Box::new(Md5Handler::new(p.switch_cpus, host, p.input_bytes)),
            )
            .expect("cluster setup");
            cl.set_program(
                host,
                Box::new(ActiveMd5 {
                    reader: BlockReader::new(BlockPlan {
                        file,
                        total: p.input_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::Mapped {
                            node: sw,
                            handler: MD5_HANDLER,
                            base_addr: 0,
                        },
                    }),
                    digest: None,
                }),
            )
            .expect("cluster setup");
        } else {
            cl.set_program(
                host,
                Box::new(NormalMd5 {
                    input: input.clone(),
                    reader: BlockReader::new(BlockPlan {
                        file,
                        total: p.input_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::HostBuf { addr: 0x1000_0000 },
                    }),
                    hasher: Some(Md5::new()),
                    digest: None,
                }),
            )
            .expect("cluster setup");
        }
        (cl, host)
    };

    let (mut cl, host, report) = drive(&format!("md5-{}", variant.label()), build);
    let got = if variant.is_active() {
        cl.take_program(host)
            .expect("program")
            .as_any()
            .and_then(|a| a.downcast_ref::<ActiveMd5>())
            .and_then(|m| m.digest)
            .expect("digest arrived")
    } else {
        cl.take_program(host)
            .expect("program")
            .as_any()
            .and_then(|a| a.downcast_ref::<NormalMd5>())
            .and_then(|m| m.digest)
            .expect("digest computed")
    };
    assert_eq!(got, want, "MD5 digest mismatch");
    AppRun::from_report(variant, &cl, &report, report.finish, digest_tag(&got))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_correct_for_all_k() {
        for k in [1usize, 2, 4] {
            let p = Params {
                switch_cpus: k,
                ..Params::small()
            };
            let input = data::md5_input(p.input_bytes as usize);
            let r = run(Variant::Active, &p);
            assert_eq!(
                r.artifact,
                digest_tag(&md5_interleaved(&input, k, MTU)),
                "k = {k}"
            );
        }
    }

    #[test]
    fn normal_digest_matches_reference() {
        let p = Params::small();
        let input = data::md5_input(p.input_bytes as usize);
        let r = run(Variant::Normal, &p);
        assert_eq!(r.artifact, digest_tag(&md5(&input)));
    }

    #[test]
    fn one_switch_cpu_is_slower_than_host() {
        // Enough input that compute outweighs the initial disk seek.
        let p = Params {
            input_bytes: 128 * 1024,
            ..Params::small()
        };
        let normal = run(Variant::NormalPref, &p);
        let active1 = run(Variant::ActivePref, &p);
        assert!(
            active1.exec > normal.exec,
            "1 switch CPU should lose: active {} vs normal {}",
            active1.exec,
            normal.exec
        );
    }

    #[test]
    fn four_switch_cpus_beat_one() {
        let p1 = Params {
            input_bytes: 128 * 1024,
            ..Params::small()
        };
        let p4 = Params {
            switch_cpus: 4,
            input_bytes: 128 * 1024,
            ..Params::small()
        };
        let a1 = run(Variant::Active, &p1);
        let a4 = run(Variant::Active, &p4);
        assert!(
            a4.exec < a1.exec,
            "4 CPUs {} should beat 1 CPU {}",
            a4.exec,
            a1.exec
        );
    }
}
