//! The storage subsystem: TCAs, their SCSI/disk arrays, read
//! scheduling, and archive-write aggregation.
//!
//! Serves host-issued and switch-issued read requests by turning each
//! into a per-MTU packet schedule off the two-disk array, and absorbs
//! raw archive-write streams in aggregated chunks. Disk fault fates
//! (soft CRC errors with retry, latency spikes) are decided here, at
//! the subsystem boundary where the disk request is about to start.

use std::collections::BTreeMap;

use asan_io::Storage;
use asan_net::{NodeId, MTU};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::trace::TraceCtx;
use asan_sim::{SimDuration, SimTime};

use crate::cluster::ClusterConfig;
use crate::error::SimError;
use crate::events::{Dest, Event, EventBus, FileId, ReqId};
use crate::handler::SwitchIoReq;
use crate::stats::StorageSnapshot;

use super::Engine;

use asan_sim::faults::DiskFate;

#[derive(Debug)]
struct TcaNode {
    storage: Storage,
    /// Next free byte on the array (files are placed sequentially).
    alloc_cursor: u64,
    /// Archive-write aggregation.
    write_pending: u64,
    write_cursor: u64,
    last_write_done: SimTime,
    write_chunk: u64,
}

/// The storage subsystem engine: every TCA node and its disk array.
#[derive(Debug, Default)]
pub struct StorageEngine {
    tcas: BTreeMap<NodeId, TcaNode>,
}

impl Engine for StorageEngine {
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError> {
        match ev {
            Event::PacketToTca { tca, bytes } => {
                let node = self.tcas.get_mut(&tca).expect("tca exists");
                node.write_pending += bytes;
                if node.write_pending >= node.write_chunk {
                    let chunk = node.write_pending;
                    let done = node.storage.write(node.write_cursor, chunk, t);
                    node.write_cursor += chunk;
                    node.write_pending = 0;
                    node.last_write_done = node.last_write_done.max(done);
                    // Aggregated archive chunks mix bytes from many
                    // senders: no single causal trace applies.
                    bus.probe.disk(tca, t, done, chunk, TraceCtx::NONE);
                }
            }
            Event::IoRequestAtTca {
                tca,
                req,
                file,
                offset,
                len,
                dest,
                attempt,
            } => match self.disk_attempt(tca, req.0, attempt, bus)? {
                Some(delay) => {
                    bus.push(
                        t + delay,
                        Event::IoRequestAtTca {
                            tca,
                            req,
                            file,
                            offset,
                            len,
                            dest,
                            attempt: attempt + 1,
                        },
                    );
                }
                None => self.start_storage_read(tca, req, file, offset, len, dest, t, bus),
            },
            Event::SwitchIoAtTca { r, attempt } => {
                match self.disk_attempt(r.tca, r.file as u64, attempt, bus)? {
                    Some(delay) => {
                        bus.push(
                            t + delay,
                            Event::SwitchIoAtTca {
                                r,
                                attempt: attempt + 1,
                            },
                        );
                    }
                    None => self.start_switch_read(&r, t, bus),
                }
            }
            other => unreachable!("not a storage event: {other:?}"),
        }
        Ok(())
    }
}

impl StorageEngine {
    /// Adds the TCA node at `id`, configured per `cfg`.
    pub(crate) fn add_tca(&mut self, id: NodeId, cfg: &ClusterConfig) {
        self.tcas.insert(
            id,
            TcaNode {
                storage: Storage::new(cfg.storage),
                alloc_cursor: 0,
                write_pending: 0,
                write_cursor: 1 << 40, // archive region
                last_write_done: SimTime::ZERO,
                write_chunk: 64 * 1024,
            },
        );
    }

    /// Whether `node` is a TCA.
    pub(crate) fn contains(&self, node: NodeId) -> bool {
        self.tcas.contains_key(&node)
    }

    /// Allocates `len` stripe-aligned bytes on `tca`'s array, returning
    /// the placement offset. Files never share a stripe unit but
    /// consecutively-added files stay contiguous on the platters (as a
    /// freshly written file set would be).
    pub(crate) fn alloc(&mut self, tca: NodeId, len: u64, stripe: u64) -> Result<u64, SimError> {
        let t = self.tcas.get_mut(&tca).ok_or(SimError::NotATca(tca))?;
        let offset = t.alloc_cursor;
        t.alloc_cursor += len.div_ceil(stripe).max(1) * stripe;
        Ok(offset)
    }

    /// Flushes trailing archive writes on every TCA (ascending node
    /// order), reporting each as a disk span, and returns the updated
    /// drain time.
    pub(crate) fn flush(
        &mut self,
        mut drain: SimTime,
        probe: &mut crate::metrics::Probe,
    ) -> SimTime {
        for (&id, tca) in self.tcas.iter_mut() {
            if tca.write_pending > 0 {
                let chunk = tca.write_pending;
                let done = tca.storage.write(tca.write_cursor, chunk, drain);
                tca.write_cursor += chunk;
                tca.write_pending = 0;
                tca.last_write_done = tca.last_write_done.max(done);
                probe.disk(id, drain, done, chunk, TraceCtx::NONE);
            }
            drain = drain.max(tca.last_write_done);
        }
        drain
    }

    /// Per-array low-level statistics snapshots, in ascending node
    /// order.
    pub(crate) fn snapshots(&self) -> Vec<StorageSnapshot> {
        self.tcas
            .iter()
            .map(|(&id, t)| StorageSnapshot {
                node: id,
                disk_bytes: t
                    .storage
                    .disks()
                    .iter()
                    .map(|d| d.stats().bytes.get())
                    .collect(),
                disk_seeks: t
                    .storage
                    .disks()
                    .iter()
                    .map(|d| d.stats().seeks.get())
                    .collect(),
                bus_bursts: t.storage.bus().stats().bursts.get(),
                bus_bytes: t.storage.bus().stats().bytes.get(),
            })
            .collect()
    }

    /// Writes the engine's dynamic state: every TCA node's disk array,
    /// allocation cursor, and archive-write aggregation state.
    pub(crate) fn snapshot(&self, w: &mut SnapWriter) {
        w.section("storage");
        w.usize(self.tcas.len());
        for (&id, t) in &self.tcas {
            w.u16(id.0);
            t.storage.snapshot(w);
            w.u64(t.alloc_cursor);
            w.u64(t.write_pending);
            w.u64(t.write_cursor);
            w.time(t.last_write_done);
            w.u64(t.write_chunk);
        }
    }

    /// Overwrites the engine's dynamic state from a snapshot taken of
    /// an identically built engine (same TCA set).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is malformed or the TCA
    /// set does not match.
    pub(crate) fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("storage")?;
        if r.usize()? != self.tcas.len() {
            return Err(SnapError::Malformed("tca count mismatch"));
        }
        for (&id, t) in &mut self.tcas {
            if r.u16()? != id.0 {
                return Err(SnapError::Malformed("tca node mismatch"));
            }
            t.storage.restore(r)?;
            t.alloc_cursor = r.u64()?;
            t.write_pending = r.u64()?;
            t.write_cursor = r.u64()?;
            t.last_write_done = r.time()?;
            t.write_chunk = r.u64()?;
        }
        Ok(())
    }

    /// Decides the fate of one disk request attempt. `Ok(Some(delay))`
    /// means the attempt soft-errored (controller CRC caught it) and
    /// must be retried after `delay`; `Ok(None)` means proceed now.
    fn disk_attempt(
        &mut self,
        tca: NodeId,
        label: u64,
        attempt: u32,
        bus: &mut EventBus<'_>,
    ) -> Result<Option<SimDuration>, SimError> {
        let fate = match bus.injector.as_mut() {
            Some(inj) => inj.disk_fate(),
            None => return Ok(None),
        };
        match fate {
            DiskFate::Ok => {
                if attempt > 0 {
                    bus.injector
                        .as_mut()
                        .expect("armed")
                        .stats
                        .disk_error
                        .recovered += 1;
                }
                Ok(None)
            }
            DiskFate::Error => {
                let inj = bus.injector.as_mut().expect("armed");
                inj.stats.disk_error.detected += 1;
                if attempt >= inj.plan().max_retries {
                    return Err(SimError::RetriesExhausted {
                        req: label,
                        attempts: attempt + 1,
                    });
                }
                Ok(Some(inj.plan().disk_retry_delay))
            }
            DiskFate::Spike => {
                // The request completes, but the disk pays a full
                // mechanical reposition first.
                let inj = bus.injector.as_mut().expect("armed");
                inj.stats.disk_latency.detected += 1;
                inj.stats.disk_latency.degraded += 1;
                self.tcas
                    .get_mut(&tca)
                    .expect("tca exists")
                    .storage
                    .force_seek_next();
                Ok(None)
            }
        }
    }

    /// Starts a host-requested storage read at its TCA.
    #[allow(clippy::too_many_arguments)]
    fn start_storage_read(
        &mut self,
        tca: NodeId,
        req: ReqId,
        file: FileId,
        offset: u64,
        len: u64,
        dest: Dest,
        now: SimTime,
        bus: &mut EventBus<'_>,
    ) {
        let meta = bus.files.meta[file.0];
        let sched = {
            let node = self.tcas.get_mut(&tca).expect("tca exists");
            node.storage
                .read_stream(meta.disk_offset + offset, len, now)
        };
        // The whole read rides the issuing request's causal trace.
        let ctx = bus.probe.trace_for_req(req.0);
        if let Some(&last) = sched.packet_ready.last() {
            // One disk-service span per read request: issue → last
            // stripe ready off the array.
            bus.probe.disk(tca, now, last, len, ctx);
        }
        let host = bus.reqs[&req].host;
        let (dst, handler, base_addr) = match dest {
            Dest::HostBuf { addr } => (host, None, addr as u32),
            Dest::Mapped {
                node,
                handler,
                base_addr,
            } => (node, Some(handler), base_addr),
        };
        let track_packets = matches!(dest, Dest::HostBuf { .. });
        // Under an armed fault plan every fabric-crossing data packet is
        // tracked per sequence number, so drops/corruption can be
        // detected, retransmitted, and the request completed exactly
        // once.
        let faulted_path = bus.injector.is_some() && dst != tca;
        if track_packets || faulted_path {
            if let Some(st) = bus.reqs.get_mut(&req) {
                st.remaining = sched.len();
                if faulted_path {
                    st.got = vec![false; sched.len()];
                    st.faulted = vec![0; sched.len()];
                    st.lens = sched.packet_len.clone();
                }
            }
        }
        let mut cursor = offset as usize;
        for (i, (&ready, &plen)) in sched
            .packet_ready
            .iter()
            .zip(sched.packet_len.iter())
            .enumerate()
        {
            let plen = plen as usize;
            let payload = bus.files.data[file.0].slice(cursor..cursor + plen);
            cursor += plen;
            if dst == tca {
                // Mapped to the TCA's own active engine (an active
                // disk): no fabric traversal — the buffer fills as the
                // bus delivers.
                let h = handler.expect("local TCA delivery is active");
                let pkt = asan_net::Packet::new(
                    asan_net::Header {
                        src: tca,
                        dst,
                        len: u16::try_from(plen).expect("packet bounded by MTU"),
                        handler: Some(h),
                        addr: base_addr.wrapping_add((i * MTU) as u32),
                        seq: i as u32,
                    },
                    payload,
                );
                let window = SimDuration::transfer(plen as u64, 320_000_000);
                bus.push(
                    ready,
                    Event::PacketToSwitch {
                        sw: tca,
                        pkt,
                        payload_start: ready - window.min(SimDuration::from_ps(ready.as_ps())),
                        payload_end: ready,
                        io_req: None,
                        trace: ctx.trace,
                    },
                );
                continue;
            }
            bus.push(
                ready,
                Event::InjectIoPacket {
                    src: tca,
                    dst,
                    handler,
                    addr: base_addr.wrapping_add((i * MTU) as u32),
                    payload,
                    seq: i as u32,
                    io_req: (track_packets || faulted_path).then_some(req),
                    trace: ctx.trace,
                },
            );
        }
        // For mapped (active) destinations, the host still needs its
        // completion notification: a small message from the TCA once the
        // last data packet has been injected. Deferred via an event so
        // the link sees it in causal order. Under a fault plan the
        // notice instead fires when the last data packet actually
        // arrives (handled by the dispatch engine's reorder buffer).
        if !track_packets && !faulted_path {
            let last_ready = *sched.packet_ready.last().expect("non-empty read");
            bus.push(last_ready, Event::CompletionNotice { tca, host, req });
        }
    }

    /// Starts a switch-initiated storage read (Tar): stream a file
    /// region to any node without host involvement.
    fn start_switch_read(&mut self, r: &SwitchIoReq, now: SimTime, bus: &mut EventBus<'_>) {
        let meta = bus.files.meta[r.file];
        assert_eq!(meta.tca, r.tca, "file lives on a different TCA");
        let sched = {
            let node = self.tcas.get_mut(&r.tca).expect("tca exists");
            node.storage
                .read_stream(meta.disk_offset + r.offset, r.len, now)
        };
        // Switch-initiated reads are not tied to a host request id, so
        // each read roots a fresh trace covering its disk service and
        // every injected data packet (documented compromise: the
        // triggering handler's trace is not carried through the
        // `SwitchIoAtTca` event).
        let ctx = bus.probe.fresh_trace();
        if let Some(&last) = sched.packet_ready.last() {
            bus.probe.disk(r.tca, now, last, r.len, ctx);
        }
        let mut cursor = r.offset as usize;
        for (i, (&ready, &plen)) in sched
            .packet_ready
            .iter()
            .zip(sched.packet_len.iter())
            .enumerate()
        {
            let plen = plen as usize;
            let payload = bus.files.data[r.file].slice(cursor..cursor + plen);
            cursor += plen;
            bus.push(
                ready,
                Event::InjectIoPacket {
                    src: r.tca,
                    dst: r.deliver_to,
                    handler: r.deliver_handler,
                    addr: r.deliver_addr.wrapping_add((i * MTU) as u32),
                    payload,
                    seq: i as u32,
                    io_req: None,
                    trace: ctx.trace,
                },
            );
        }
    }
}
