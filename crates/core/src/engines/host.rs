//! The host subsystem: programs, their CPUs/HCAs, OS cost charging,
//! and I/O completion delivery.
//!
//! Host programs are state machines ([`HostProgram`]): the engine calls
//! their hooks in simulated-time order and the program charges CPU time
//! through the [`HostCtx`] as it processes real data. Everything a
//! program *does* — issue a read, send a message, finish — is collected
//! as an effect and applied after the hook returns, so a hook never
//! re-enters the simulation.

use std::collections::BTreeMap;

use asan_cpu::Cpu;
use asan_io::OsCost;
use asan_net::{HandlerId, Hca, NodeId, HEADER_BYTES, MTU};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Traffic;
use asan_sim::{SimDuration, SimTime};

use crate::cluster::{ClusterConfig, HostReport};
use crate::error::SimError;
use crate::events::{Dest, Event, EventBus, FileId, FileMeta, HostMsg, IoState, ReqId};
use crate::stats::{snap_cpu, HostSnapshot};

use super::Engine;

/// A host-resident application (one per compute node).
///
/// Programs are state machines: the cluster calls these hooks in
/// simulated-time order, and the program charges CPU time through the
/// [`HostCtx`] as it processes real data.
pub trait HostProgram {
    /// Called once at time zero.
    fn on_start(&mut self, ctx: &mut HostCtx<'_>);

    /// Called when an I/O request previously issued via
    /// [`HostCtx::read_file`] has fully delivered its data.
    fn on_io_complete(&mut self, _ctx: &mut HostCtx<'_>, _req: ReqId) {}

    /// Called when a message arrives for this host.
    fn on_message(&mut self, _ctx: &mut HostCtx<'_>, _msg: &HostMsg) {}

    /// Downcasting hook so benchmarks can read back program state after
    /// a run (`Some(self)` in implementations that support it).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }

    /// Writes this program's persistent state into a snapshot. Stateful
    /// programs (anything whose behaviour depends on values mutated
    /// across hook calls) must override this together with
    /// [`HostProgram::restore_state`]; the default writes nothing.
    fn snapshot_state(&self, _w: &mut SnapWriter) {}

    /// Restores the state written by [`HostProgram::snapshot_state`]
    /// into a freshly constructed program.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is malformed.
    fn restore_state(&mut self, _r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        Ok(())
    }
}

impl std::fmt::Debug for dyn HostProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<host program>")
    }
}

#[derive(Debug)]
enum Effect {
    Io {
        req: ReqId,
        file: FileId,
        offset: u64,
        len: u64,
        dest: Dest,
        issue_at: SimTime,
    },
    Send {
        dst: NodeId,
        handler: Option<HandlerId>,
        addr: u32,
        data: Vec<u8>,
        ready: SimTime,
    },
    Finish,
}

/// Kernel/OS services available to a host program during a callback.
#[derive(Debug)]
pub struct HostCtx<'a> {
    cpu: &'a mut Cpu,
    hca: &'a mut Hca,
    node: NodeId,
    os: OsCost,
    files: &'a [FileMeta],
    next_req: &'a mut u64,
    effects: Vec<Effect>,
}

impl HostCtx<'_> {
    /// This host's node ID.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current local time.
    pub fn now(&self) -> SimTime {
        self.cpu.now()
    }

    /// The CPU model, for charging application work (compute, loads,
    /// scans over real data).
    pub fn cpu(&mut self) -> &mut Cpu {
        self.cpu
    }

    /// Length of a stored file.
    pub fn file_len(&self, file: FileId) -> u64 {
        self.files[file.0].len
    }

    /// Issues an asynchronous read of `[offset, offset+len)` of `file`,
    /// delivering to `dest`. Charges the issue share of the OS
    /// per-request cost now; the completion share (and the per-KB cost
    /// for host-destined data) is charged when the request completes.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the file or is empty.
    pub fn read_file(&mut self, file: FileId, offset: u64, len: u64, dest: Dest) -> ReqId {
        let meta = self.files[file.0];
        assert!(offset + len <= meta.len, "read beyond file end");
        assert!(len > 0, "zero-length read");
        // Issue share only; the completion share is charged at
        // IoComplete. Active (mapped) requests bypass the heavyweight
        // OS path entirely.
        match dest {
            Dest::HostBuf { .. } => self.cpu.charge_fixed_busy(self.os.per_request / 2),
            Dest::Mapped { .. } => self.cpu.charge_fixed_busy(self.os.active_request),
        }
        let req = ReqId(*self.next_req);
        *self.next_req += 1;
        self.effects.push(Effect::Io {
            req,
            file,
            offset,
            len,
            dest,
            issue_at: self.cpu.now(),
        });
        req
    }

    /// Sends `data` to `dst` (packetized into MTU packets by the HCA).
    /// `handler` names the switch handler for active messages, or tags
    /// the flow for host receivers.
    pub fn send(&mut self, dst: NodeId, handler: Option<HandlerId>, addr: u32, data: Vec<u8>) {
        let ready = self.hca.post_send(self.cpu);
        self.effects.push(Effect::Send {
            dst,
            handler,
            addr,
            data,
            ready,
        });
    }

    /// Declares this host's program finished.
    pub fn finish(&mut self) {
        self.effects.push(Effect::Finish);
    }
}

#[derive(Debug)]
struct HostNode {
    cpu: Cpu,
    hca: Hca,
    program: Option<Box<dyn HostProgram>>,
    finished_at: Option<SimTime>,
    payload: Traffic,
    /// Remaining CPU time of a co-scheduled background job that soaks
    /// up this host's idle time (the paper's "multi-programmed server"
    /// scenario: freed host cycles are usable by other tasks).
    background_left: SimDuration,
    /// When the background job completed, if it did.
    background_done: Option<SimTime>,
}

/// The host subsystem engine: owns every host node (CPU, HCA, program,
/// traffic counters) and the request-ID allocator.
#[derive(Debug, Default)]
pub struct HostEngine {
    hosts: BTreeMap<NodeId, HostNode>,
    next_req: u64,
}

impl Engine for HostEngine {
    fn on_event(&mut self, t: SimTime, ev: Event, bus: &mut EventBus<'_>) -> Result<(), SimError> {
        match ev {
            Event::Start(h) => {
                self.call_host(h, t, None, None, bus);
            }
            Event::PacketToHost { host, msg, io_req } => {
                let bytes = msg.data.len() as u64;
                let seq = msg.seq;
                let lat = self.hosts[&host].hca.config().recv_latency;
                match io_req {
                    Some(req) => {
                        // DMA of request data: no per-packet CPU cost.
                        let Some(st) = bus.reqs.get_mut(&req) else {
                            // Late duplicate for a completed request (a
                            // timeout retransmit racing a NAK one).
                            return Ok(());
                        };
                        let done = if st.got.is_empty() {
                            st.remaining -= 1;
                            st.remaining == 0
                        } else {
                            let i = seq as usize;
                            if st.got[i] {
                                return Ok(()); // duplicate delivery
                            }
                            st.got[i] = true;
                            let cat = std::mem::take(&mut st.faulted[i]);
                            let all = st.got.iter().all(|&g| g);
                            bus.note_recovered(cat);
                            all
                        };
                        // Only accepted stripes count as host payload:
                        // the HCA discards duplicates before DMA.
                        self.hosts
                            .get_mut(&host)
                            .expect("host exists")
                            .payload
                            .record_in(bytes);
                        if done {
                            bus.push(t + lat, Event::IoComplete { host, req });
                        }
                    }
                    None => {
                        self.hosts
                            .get_mut(&host)
                            .expect("host exists")
                            .payload
                            .record_in(bytes);
                        self.call_host(host, t, None, Some(msg), bus);
                    }
                }
            }
            Event::IoComplete { host, req } => {
                // The dispatch engine's reorder buffer for this flow, if
                // any, was already cleared when its last packet arrived.
                let st = bus.reqs.remove(&req).expect("live request");
                bus.probe.end_req(req.0);
                // Completion-side OS cost: the interrupt/copy share, plus
                // the per-KB cost — only for data that landed in host
                // memory (active completions are consumed by polling).
                let (per_req, per_kb) = if matches!(st.dest, Dest::HostBuf { .. }) {
                    (
                        bus.cfg.os.per_request / 2,
                        SimDuration::from_ns_f64(
                            st.bytes as f64 * bus.cfg.os.per_kb_ns as f64 / 1024.0,
                        ),
                    )
                } else {
                    (SimDuration::ZERO, SimDuration::ZERO)
                };
                {
                    let node = self.hosts.get_mut(&host).expect("host exists");
                    advance_host(node, t);
                    node.cpu.charge_fixed_busy(per_req + per_kb);
                }
                let at = self.hosts[&host].cpu.now();
                self.call_host(host, at, Some(req), None, bus);
            }
            other => unreachable!("not a host event: {other:?}"),
        }
        Ok(())
    }
}

impl HostEngine {
    /// Adds a host node configured per `cfg`.
    pub(crate) fn add_host(&mut self, id: NodeId, cfg: &ClusterConfig) {
        self.hosts.insert(
            id,
            HostNode {
                cpu: Cpu::new(cfg.host_cpu.clone()),
                hca: Hca::new(cfg.hca),
                program: None,
                finished_at: None,
                payload: Traffic::default(),
                background_left: SimDuration::ZERO,
                background_done: None,
            },
        );
    }

    /// Installs `program` on host `node`.
    pub(crate) fn set_program(
        &mut self,
        node: NodeId,
        program: Box<dyn HostProgram>,
    ) -> Result<(), SimError> {
        let h = self.hosts.get_mut(&node).ok_or(SimError::NotAHost(node))?;
        if h.program.is_some() {
            return Err(SimError::ProgramAlreadyInstalled(node));
        }
        h.program = Some(program);
        Ok(())
    }

    /// Removes a host's program (for post-run state readback).
    pub(crate) fn take_program(&mut self, node: NodeId) -> Option<Box<dyn HostProgram>> {
        self.hosts.get_mut(&node)?.program.take()
    }

    /// Co-schedules `cpu_time` of background computation on `node`.
    pub(crate) fn set_background_job(
        &mut self,
        node: NodeId,
        cpu_time: SimDuration,
    ) -> Result<(), SimError> {
        let h = self.hosts.get_mut(&node).ok_or(SimError::NotAHost(node))?;
        h.background_left = cpu_time;
        h.background_done = None;
        Ok(())
    }

    /// Hosts with a program installed, in ascending node order.
    pub(crate) fn nodes_with_programs(&self) -> Vec<NodeId> {
        self.hosts
            .iter()
            .filter(|(_, h)| h.program.is_some())
            .map(|(&id, _)| id)
            .collect()
    }

    /// The lowest-numbered host (the fallback host under fault plans).
    pub(crate) fn first_host(&self) -> Option<NodeId> {
        self.hosts.keys().copied().min_by_key(|n| n.0)
    }

    /// When the last host program finished ([`SimTime::ZERO`] if none
    /// did).
    pub(crate) fn finish_time(&self) -> SimTime {
        self.hosts
            .values()
            .filter_map(|h| h.finished_at)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Per-host reports, idle-padded to `finish`.
    pub(crate) fn reports(&self, finish: SimTime) -> Vec<HostReport> {
        self.hosts
            .iter()
            .map(|(&id, h)| {
                let mut b = *h.cpu.breakdown();
                b.pad_idle_to(finish.since(SimTime::ZERO));
                HostReport {
                    node: id,
                    breakdown: b,
                    payload: h.payload,
                    finished_at: h.finished_at.unwrap_or(finish),
                    background_done: h.background_done,
                    background_left: h.background_left,
                }
            })
            .collect()
    }

    /// Per-host low-level statistics snapshots.
    pub(crate) fn snapshots(&self) -> Vec<HostSnapshot> {
        self.hosts
            .iter()
            .map(|(&id, h)| HostSnapshot {
                node: id,
                cpu: snap_cpu(&h.cpu),
                hca_sends: h.hca.sends(),
                hca_recvs: h.hca.recvs(),
            })
            .collect()
    }

    /// Writes the engine's dynamic state: the request-ID allocator and
    /// every host node (CPU, HCA, finish/background state, traffic,
    /// program state via [`HostProgram::snapshot_state`]).
    pub(crate) fn snapshot(&self, w: &mut SnapWriter) {
        w.section("host");
        w.u64(self.next_req);
        w.usize(self.hosts.len());
        for (&id, h) in &self.hosts {
            w.u16(id.0);
            h.cpu.snapshot(w);
            h.hca.snapshot(w);
            match &h.program {
                Some(p) => {
                    w.bool(true);
                    p.snapshot_state(w);
                }
                None => w.bool(false),
            }
            w.opt_time(h.finished_at);
            h.payload.snapshot(w);
            w.dur(h.background_left);
            w.opt_time(h.background_done);
        }
    }

    /// Overwrites the engine's dynamic state from a snapshot taken of
    /// an identically built engine (same hosts, same programs
    /// installed).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is malformed or the host
    /// set / program placement does not match.
    pub(crate) fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("host")?;
        self.next_req = r.u64()?;
        if r.usize()? != self.hosts.len() {
            return Err(SnapError::Malformed("host count mismatch"));
        }
        for (&id, h) in &mut self.hosts {
            if r.u16()? != id.0 {
                return Err(SnapError::Malformed("host node mismatch"));
            }
            h.cpu.restore(r)?;
            h.hca.restore(r)?;
            let has_program = r.bool()?;
            match (has_program, h.program.as_mut()) {
                (true, Some(p)) => p.restore_state(r)?,
                (false, None) => {}
                _ => return Err(SnapError::Malformed("program placement mismatch")),
            }
            h.finished_at = r.opt_time()?;
            h.payload = Traffic::restore(r)?;
            h.background_left = r.dur()?;
            h.background_done = r.opt_time()?;
        }
        Ok(())
    }

    /// Invokes a host program hook. `io` = completed request;
    /// `msg` = arrived message; neither = start.
    fn call_host(
        &mut self,
        host: NodeId,
        at: SimTime,
        io: Option<ReqId>,
        msg: Option<HostMsg>,
        bus: &mut EventBus<'_>,
    ) {
        let node = self.hosts.get_mut(&host).expect("host exists");
        if node.finished_at.is_some() {
            // Finished programs ignore late traffic (e.g. trailing
            // completion notifications).
            return;
        }
        let mut program = match node.program.take() {
            Some(p) => p,
            None => return,
        };
        advance_host(node, at);
        if msg.is_some() {
            // Poll + consume the completion.
            let instr = node.hca.config().recv_instr;
            node.cpu.compute(instr);
        }
        let mut ctx = HostCtx {
            cpu: &mut node.cpu,
            hca: &mut node.hca,
            node: host,
            os: bus.cfg.os,
            files: bus.files.meta(),
            next_req: &mut self.next_req,
            effects: Vec::new(),
        };
        match (io, &msg) {
            (Some(req), _) => program.on_io_complete(&mut ctx, req),
            (None, Some(m)) => program.on_message(&mut ctx, m),
            (None, None) => program.on_start(&mut ctx),
        }
        let effects = std::mem::take(&mut ctx.effects);
        drop(ctx);
        self.hosts.get_mut(&host).expect("host exists").program = Some(program);
        self.apply_effects(host, effects, bus);
    }

    fn apply_effects(&mut self, host: NodeId, effects: Vec<Effect>, bus: &mut EventBus<'_>) {
        for e in effects {
            match e {
                Effect::Io {
                    req,
                    file,
                    offset,
                    len,
                    dest,
                    issue_at,
                } => {
                    let tca = bus.files.meta[file.0].tca;
                    let wire = (HEADER_BYTES * 2) as u64;
                    // Root of the request's causal trace: the issue
                    // packet and everything downstream (disk service,
                    // data injection, retransmits, completion) share it.
                    let ctx = bus.probe.trace_for_req(req.0);
                    let d = bus.transmit(wire, host, tca, issue_at, ctx);
                    let timeout = bus
                        .injector
                        .as_ref()
                        .map_or(SimDuration::ZERO, |i| i.plan().request_timeout);
                    bus.reqs.insert(
                        req,
                        IoState {
                            host,
                            dest,
                            remaining: usize::MAX, // set when the read starts
                            bytes: len,
                            tca,
                            file,
                            offset,
                            got: Vec::new(),
                            lens: Vec::new(),
                            faulted: Vec::new(),
                            attempt: 0,
                            timeout,
                        },
                    );
                    bus.push(
                        d.arrival,
                        Event::IoRequestAtTca {
                            tca,
                            req,
                            file,
                            offset,
                            len,
                            dest,
                            attempt: 0,
                        },
                    );
                    // The end-to-end timeout only guards flows whose
                    // data actually crosses the fabric (and can
                    // therefore be dropped): local active-disk
                    // deliveries are reliable by construction.
                    let faultable = bus.injector.is_some()
                        && match dest {
                            Dest::HostBuf { .. } => true,
                            Dest::Mapped { node, .. } => node != tca,
                        };
                    if faultable {
                        bus.push(
                            issue_at + timeout,
                            Event::RequestTimeout { req, attempt: 0 },
                        );
                    }
                }
                Effect::Send {
                    dst,
                    handler,
                    addr,
                    data,
                    ready,
                } => {
                    self.hosts
                        .get_mut(&host)
                        .expect("host exists")
                        .payload
                        .record_out(data.len() as u64);
                    // Packetize; each packet is its own fabric
                    // transfer. The message is interned once so every
                    // chunk payload is an O(1) view.
                    let data = asan_net::Bytes::from(data);
                    let chunks: Vec<(usize, usize)> = if data.is_empty() {
                        vec![(0, 0)]
                    } else {
                        (0..data.len())
                            .step_by(MTU)
                            .map(|o| (o, (data.len() - o).min(MTU)))
                            .collect()
                    };
                    // One causal trace per message: every MTU chunk
                    // (and the handler work it triggers) shares it.
                    let ctx = bus.probe.fresh_trace();
                    for (i, (off, clen)) in chunks.into_iter().enumerate() {
                        let payload = data.slice(off..off + clen);
                        let wire = (clen + HEADER_BYTES) as u64;
                        let d = bus.transmit(wire, host, dst, ready, ctx);
                        bus.deliver(
                            host,
                            dst,
                            handler,
                            addr.wrapping_add(off as u32),
                            payload,
                            i as u32,
                            d,
                            None,
                            ctx.trace,
                        );
                    }
                }
                Effect::Finish => {
                    let node = self.hosts.get_mut(&host).expect("host exists");
                    node.finished_at = Some(node.cpu.now());
                }
            }
        }
    }
}

/// Advances `node`'s CPU to `at`, letting any co-scheduled background
/// job consume the gap as busy time before the rest is filed as idle.
fn advance_host(node: &mut HostNode, at: SimTime) {
    if at <= node.cpu.now() {
        return;
    }
    if node.background_left > SimDuration::ZERO {
        let gap = at.since(node.cpu.now());
        let take = gap.min(node.background_left);
        node.cpu.busy_until(node.cpu.now() + take);
        node.background_left -= take;
        if node.background_left == SimDuration::ZERO {
            node.background_done = Some(node.cpu.now());
        }
    }
    node.cpu.idle_until(at);
}
