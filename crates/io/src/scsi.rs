//! Ultra-320 SCSI bus model.
//!
//! §4: "The SCSI bus models the overhead of arbitration and selection
//! transactions and has a peak throughput of 320 MB/s." The bus is a
//! shared medium: the two disks' streams interleave in bursts, each
//! burst paying arbitration + selection before its data phase.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Counter;
use asan_sim::{SimDuration, SimTime};

/// Electrical/protocol parameters of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScsiConfig {
    /// Peak data-phase throughput in bytes/second.
    pub bytes_per_sec: u64,
    /// Arbitration phase duration before each burst.
    pub arbitration: SimDuration,
    /// (Re)selection phase duration before each burst.
    pub selection: SimDuration,
}

impl ScsiConfig {
    /// Ultra-320: 320 MB/s, with SPI-4 arbitration (~1 µs) and
    /// selection (~0.5 µs) overheads per bus transaction.
    pub fn ultra320() -> Self {
        ScsiConfig {
            bytes_per_sec: 320_000_000,
            arbitration: SimDuration::from_ns(1_000),
            selection: SimDuration::from_ns(500),
        }
    }
}

/// Timing of one burst over the bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusXfer {
    /// When arbitration for this burst began.
    pub start: SimTime,
    /// When the data phase began (arbitration + selection done).
    pub data_start: SimTime,
    /// When the last byte crossed the bus.
    pub complete: SimTime,
    /// Data-phase rate for interpolation.
    pub bytes_per_sec: u64,
    /// Burst length.
    pub len: u64,
}

impl BusXfer {
    /// Time at which byte `k` of the burst has crossed the bus.
    pub fn byte_ready(&self, k: u64) -> SimTime {
        debug_assert!(k <= self.len);
        self.data_start + SimDuration::transfer(k, self.bytes_per_sec)
    }
}

/// Bus statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScsiStats {
    /// Bursts carried.
    pub bursts: Counter,
    /// Bytes carried.
    pub bytes: Counter,
}

/// The shared SCSI bus.
///
/// # Example
///
/// ```
/// use asan_io::scsi::{ScsiBus, ScsiConfig};
/// use asan_sim::SimTime;
/// let mut bus = ScsiBus::new(ScsiConfig::ultra320());
/// let x = bus.burst(4096, SimTime::ZERO);
/// assert_eq!(x.data_start.as_ns(), 1_500); // arbitration + selection
/// ```
#[derive(Debug, Clone)]
pub struct ScsiBus {
    cfg: ScsiConfig, // asan-lint: allow(snapshot-completeness)
    busy_until: SimTime,
    stats: ScsiStats,
}

impl ScsiBus {
    /// Creates an idle bus.
    pub fn new(cfg: ScsiConfig) -> Self {
        assert!(cfg.bytes_per_sec > 0, "zero bus rate");
        ScsiBus {
            cfg,
            busy_until: SimTime::ZERO,
            stats: ScsiStats::default(),
        }
    }

    /// The bus parameters.
    pub fn config(&self) -> &ScsiConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ScsiStats {
        &self.stats
    }

    /// Holds the bus busy until `until` (models a bus reset/retrain
    /// after a parity error); later bursts queue behind it.
    pub fn inject_stall(&mut self, until: SimTime) {
        self.busy_until = self.busy_until.max(until);
    }

    /// Transfers one burst of `len` bytes whose data is ready at the
    /// initiator at `ready`. The bus is exclusive for
    /// arbitration + selection + data phase.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn burst(&mut self, len: u64, ready: SimTime) -> BusXfer {
        assert!(len > 0, "zero-length SCSI burst");
        let start = ready.max(self.busy_until);
        let data_start = start + self.cfg.arbitration + self.cfg.selection;
        let complete = data_start + SimDuration::transfer(len, self.cfg.bytes_per_sec);
        self.busy_until = complete;
        self.stats.bursts.inc();
        self.stats.bytes.add(len);
        BusXfer {
            start,
            data_start,
            complete,
            bytes_per_sec: self.cfg.bytes_per_sec,
            len,
        }
    }

    /// Writes the bus occupancy and statistics.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.time(self.busy_until);
        self.stats.bursts.snapshot(w);
        self.stats.bytes.snapshot(w);
    }

    /// Overwrites this bus's dynamic state from a snapshot taken of a
    /// bus with the same configuration.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.busy_until = r.time()?;
        self.stats = ScsiStats {
            bursts: Counter::restore(r)?,
            bytes: Counter::restore(r)?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_pays_arbitration_and_selection() {
        let mut bus = ScsiBus::new(ScsiConfig::ultra320());
        let x = bus.burst(3200, SimTime::ZERO);
        assert_eq!(x.data_start.as_ns(), 1500);
        // 3200 B at 320 MB/s = 10 us data phase.
        assert_eq!(x.complete.since(x.data_start).as_us(), 10);
    }

    #[test]
    fn competing_bursts_serialize() {
        let mut bus = ScsiBus::new(ScsiConfig::ultra320());
        let a = bus.burst(4096, SimTime::ZERO);
        let b = bus.burst(4096, SimTime::ZERO);
        assert_eq!(b.start, a.complete);
        assert_eq!(bus.stats().bursts.get(), 2);
        assert_eq!(bus.stats().bytes.get(), 8192);
    }

    #[test]
    fn effective_throughput_below_peak_due_to_overheads() {
        let mut bus = ScsiBus::new(ScsiConfig::ultra320());
        // 100 bursts of 4 KB.
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            t = bus.burst(4096, t).complete;
        }
        let eff = (100.0 * 4096.0) / t.as_secs_f64();
        assert!(eff < 320e6, "must be below peak");
        assert!(eff > 250e6, "4 KB bursts should still be efficient: {eff}");
    }

    #[test]
    fn injected_stall_delays_bursts() {
        let mut bus = ScsiBus::new(ScsiConfig::ultra320());
        bus.inject_stall(SimTime::from_us(50));
        let x = bus.burst(4096, SimTime::ZERO);
        assert_eq!(x.start, SimTime::from_us(50));
    }

    #[test]
    fn byte_ready_interpolates() {
        let mut bus = ScsiBus::new(ScsiConfig::ultra320());
        let x = bus.burst(3200, SimTime::ZERO);
        assert_eq!(x.byte_ready(0), x.data_start);
        assert_eq!(x.byte_ready(3200), x.complete);
    }
}
