//! Corrected twin: each engine owns its copy of the routing data
//! outright (plain `Vec`, no interior mutability), and cross-engine
//! traffic goes through the event bus instead of threads or globals.

pub struct RouteTable {
    pub entries: Vec<u64>,
}

pub struct IngressEngine {
    pub table: RouteTable,
    pub seen: u64,
}

pub struct EgressEngine {
    pub mirror: RouteTable,
}
