//! Property-style tests on the simulator's core data structures and the
//! benchmarks' algorithmic kernels.
//!
//! Each property runs against a deterministic sweep of randomized
//! inputs drawn from the simulator's own seeded [`SimRng`] — no
//! external property-testing dependency, same reproducibility: a
//! failure prints the case index, and re-running replays the identical
//! sequence.

use asan_apps::data;
use asan_apps::dfa::LiteralDfa;
use asan_apps::md5::{md5, md5_interleaved, Md5};
use asan_core::atb::Atb;
use asan_core::buffer::{line_schedule, BufId, DataBuffer};
use asan_mem::cache::{AccessKind, Cache, CacheConfig};
use asan_net::{packetize, reassemble, HandlerId, Header, NodeId, ReassembleError, MTU};
use asan_sim::{EventQueue, SimRng, SimTime};

/// Runs `body` over `cases` deterministic cases seeded from `label`.
fn sweep(label: &str, cases: usize, mut body: impl FnMut(usize, &mut SimRng)) {
    for case in 0..cases {
        let mut rng = SimRng::from_seed(
            SimRng::from_label(label).next_u64()
                ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        body(case, &mut rng);
    }
}

fn random_bytes(rng: &mut SimRng, max_len: usize) -> Vec<u8> {
    let mut v = vec![0u8; rng.below(max_len as u64 + 1) as usize];
    rng.fill_bytes(&mut v);
    v
}

/// The event queue is a stable priority queue: popping yields times in
/// non-decreasing order, FIFO among equal times.
#[test]
fn event_queue_is_stable_priority_queue() {
    sweep("event-queue", 50, |case, rng| {
        let n = rng.range(1, 200) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.below(1000)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ns(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, (orig, idx))) = q.pop() {
            assert_eq!(t, SimTime::from_ns(orig), "case {case}");
            if let Some((lt, lidx)) = last {
                assert!(t >= lt, "case {case}");
                if t == lt {
                    assert!(idx > lidx, "case {case}: FIFO violated among equal times");
                }
            }
            last = Some((t, idx));
        }
    });
}

/// A cache never reports a hit for a line it has not seen, and always
/// hits a line just accessed (temporal safety of LRU).
#[test]
fn cache_hit_iff_recently_resident() {
    sweep("cache-hit", 30, |case, rng| {
        let n = rng.range(1, 500) as usize;
        let mut c = Cache::new(CacheConfig {
            name: "prop",
            size_bytes: 1024,
            line_bytes: 32,
            assoc: 2,
        });
        use std::collections::HashSet;
        let mut ever: HashSet<u64> = HashSet::new();
        for _ in 0..n {
            let a = rng.below(1 << 16);
            let line = a / 32;
            let out = c.access(a, AccessKind::Read);
            if out.hit {
                assert!(ever.contains(&line), "case {case}: hit on never-seen line");
            }
            ever.insert(line);
            // Immediate re-access must hit.
            assert!(c.access(a, AccessKind::Read).hit, "case {case}");
        }
    });
}

/// Write-back integrity: every dirty line is either resident or was
/// reported as a writeback exactly once.
#[test]
fn cache_never_loses_dirty_lines() {
    sweep("cache-dirty", 30, |case, rng| {
        let n = rng.range(1, 500) as usize;
        let mut c = Cache::new(CacheConfig {
            name: "prop",
            size_bytes: 512,
            line_bytes: 32,
            assoc: 2,
        });
        use std::collections::HashSet;
        let mut dirty: HashSet<u64> = HashSet::new();
        for _ in 0..n {
            let a = rng.below(1 << 14);
            let line_base = a / 32 * 32;
            let out = c.access(a, AccessKind::Write);
            if let Some(wb) = out.writeback {
                assert!(
                    dirty.remove(&wb),
                    "case {case}: write-back of non-dirty line {wb:#x}"
                );
            }
            dirty.insert(line_base);
        }
        // Every remaining dirty line must still be resident.
        for &d in &dirty {
            assert!(c.probe(d), "case {case}: dirty line {d:#x} vanished");
        }
    });
}

/// Packetize ∘ reassemble is the identity for any payload.
#[test]
fn packetize_reassemble_roundtrip() {
    sweep("roundtrip", 50, |case, rng| {
        let data = random_bytes(rng, 5000);
        let pkts = packetize(NodeId(1), NodeId(2), Some(HandlerId::new(7)), 0x1000, &data);
        let back = reassemble(&pkts).expect("in order");
        assert_eq!(back, data, "case {case}");
    });
}

/// Any single flipped payload bit breaks the packet's ICRC, and the
/// flow is rejected as `Corrupt` — never silently reassembled.
#[test]
fn corrupted_packet_never_silently_reassembled() {
    sweep("icrc-corrupt", 60, |case, rng| {
        let mut data = random_bytes(rng, 4 * MTU);
        if data.is_empty() {
            data.push(rng.next_u64() as u8);
        }
        let mut pkts = packetize(NodeId(1), NodeId(2), None, 0, &data);
        let victim = rng.below(pkts.len() as u64) as usize;
        let bit = rng.next_u64() as usize;
        pkts[victim].corrupt_payload_bit(bit);
        assert!(!pkts[victim].icrc_ok(), "case {case}: flip not detected");
        assert_eq!(
            reassemble(&pkts),
            Err(ReassembleError::Corrupt(victim as u32)),
            "case {case}: corruption must surface, not concatenate"
        );
    });
}

/// A dropped packet leaves a sequence gap that reassembly reports as
/// out-of-order at exactly the first missing position.
#[test]
fn dropped_packet_detected_as_sequence_gap() {
    sweep("icrc-drop", 40, |case, rng| {
        let len = rng.range(2, 6) as usize * MTU;
        let data = {
            let mut v = vec![0u8; len];
            rng.fill_bytes(&mut v);
            v
        };
        let mut pkts = packetize(NodeId(1), NodeId(2), None, 0, &data);
        let victim = rng.below(pkts.len() as u64 - 1) as usize; // keep ≥2
        pkts.remove(victim);
        let err = reassemble(&pkts).unwrap_err();
        assert_eq!(
            err,
            ReassembleError::OutOfOrder(victim as u32 + 1),
            "case {case}: gap at {victim} not reported"
        );
    });
}

/// A duplicated packet breaks the sequence and is rejected — the
/// receiver never double-counts a stripe.
#[test]
fn duplicated_packet_detected() {
    sweep("icrc-dup", 40, |case, rng| {
        let len = rng.range(2, 6) as usize * MTU;
        let data = {
            let mut v = vec![0u8; len];
            rng.fill_bytes(&mut v);
            v
        };
        let mut pkts = packetize(NodeId(1), NodeId(2), None, 0, &data);
        let victim = rng.below(pkts.len() as u64) as usize;
        let dup = pkts[victim].clone();
        pkts.insert(victim, dup);
        assert!(
            matches!(reassemble(&pkts), Err(ReassembleError::OutOfOrder(_))),
            "case {case}: duplicate silently accepted"
        );
    });
}

/// Corrupting any single byte of a packet's wire image changes the
/// CRC32 over it (error detection at the wire level).
#[test]
fn wire_image_crc_catches_byte_flips() {
    use asan_net::crc32;
    sweep("wire-crc", 40, |case, rng| {
        let data = {
            let mut v = vec![0u8; rng.range(1, 1500) as usize];
            rng.fill_bytes(&mut v);
            v
        };
        let pkts = packetize(NodeId(4), NodeId(5), Some(HandlerId::new(3)), 0x40, &data);
        for p in &pkts {
            let mut wire_len = p.wire_bytes();
            // The wire image includes header + payload + ICRC.
            assert!(wire_len > p.payload.len() as u64, "case {case}");
            // Flipping one payload byte must change the payload CRC.
            if p.payload.is_empty() {
                continue;
            }
            let mut copy = p.payload.to_vec();
            let i = rng.below(copy.len() as u64) as usize;
            copy[i] ^= 1 << rng.below(8);
            assert_ne!(
                crc32(0, &copy),
                crc32(0, &p.payload),
                "case {case}: collision"
            );
            wire_len -= 1; // silence unused-assignment lint on last loop
            let _ = wire_len;
        }
    });
}

/// Header encode/decode round-trips for all field values.
#[test]
fn header_roundtrip() {
    sweep("header", 200, |case, rng| {
        let h = Header {
            src: NodeId(rng.next_u64() as u16),
            dst: NodeId(rng.next_u64() as u16),
            len: rng.below(513) as u16,
            handler: if rng.chance(0.5) {
                Some(HandlerId::new(rng.below(64) as u8))
            } else {
                None
            },
            addr: rng.next_u32(),
            seq: rng.next_u32(),
        };
        assert_eq!(Header::decode(&h.encode()).unwrap(), h, "case {case}");
    });
}

/// The ATB translates exactly the mapped windows and deallocation frees
/// exactly the windows below the given address.
#[test]
fn atb_translation_partial_order() {
    sweep("atb", 60, |case, rng| {
        let n = rng.range(1, 16) as usize;
        let windows: Vec<u32> = (0..n).map(|_| rng.below(64) as u32).collect();
        let cut = rng.below(70) as u32;
        let mut atb = Atb::new();
        let mut mapped = std::collections::HashMap::new();
        for (i, &w) in windows.iter().enumerate() {
            let base = w * 512;
            let old = atb.map(base, BufId(i as u8));
            if let Some(_prev) = old {
                // Direct-mapped conflict replaced an entry.
                mapped.retain(|&b, _| !(b != base && (b / 512) % 16 == (base / 512) % 16));
            }
            mapped.insert(base, BufId(i as u8));
        }
        for (&base, &buf) in &mapped {
            assert_eq!(atb.probe(base + 100), Some((buf, 100)), "case {case}");
        }
        let freed = atb.deallocate_below(cut * 512);
        for (&base, &buf) in &mapped {
            if base + 512 <= cut * 512 {
                assert!(freed.contains(&buf), "case {case}");
                assert_eq!(atb.probe(base), None, "case {case}");
            } else {
                assert_eq!(atb.probe(base), Some((buf, 0)), "case {case}");
            }
        }
    });
}

/// Data buffer line schedules are monotone and end exactly at the
/// last-byte time.
#[test]
fn line_schedule_monotone() {
    sweep("line-sched", 60, |case, rng| {
        let len = rng.range(1, 513) as usize;
        let start = rng.below(1000);
        let span = rng.range(1, 2000);
        let s0 = SimTime::from_ns(start);
        let s1 = SimTime::from_ns(start + span);
        let sched = line_schedule(len, s0, s1);
        assert_eq!(sched.len(), len.div_ceil(32), "case {case}");
        for w in sched.windows(2) {
            assert!(w[0] <= w[1], "case {case}");
        }
        assert_eq!(*sched.last().unwrap(), s1, "case {case}");
        // A buffer filled with this schedule reports the same times.
        let mut b = DataBuffer::new();
        b.fill(&vec![0xEE; len], &sched);
        assert_eq!(b.all_valid_at(), Some(s1), "case {case}");
    });
}

/// MD5 incremental updates equal one-shot hashing for any chunking.
#[test]
fn md5_chunking_invariance() {
    sweep("md5-chunk", 40, |case, rng| {
        let data = random_bytes(rng, 4096);
        let oneshot = md5(&data);
        let mut h = Md5::new();
        let mut rest: &[u8] = &data;
        let cuts = rng.below(20) as usize;
        for _ in 0..cuts {
            if rest.is_empty() {
                break;
            }
            let take = (rng.range(1, 128) as usize).min(rest.len());
            h.update(&rest[..take]);
            rest = &rest[take..];
        }
        h.update(rest);
        assert_eq!(h.finalize(), oneshot, "case {case}");
    });
}

/// K-way interleaved MD5 is deterministic and equals the explicit
/// per-chain construction.
#[test]
fn md5_interleave_matches_manual() {
    sweep("md5-interleave", 30, |case, rng| {
        let data = random_bytes(rng, 4096);
        let k = rng.range(1, 5) as usize;
        let unit = 512;
        let fast = md5_interleaved(&data, k, unit);
        // Manual: distribute chunks round-robin.
        let mut chains: Vec<Vec<u8>> = vec![Vec::new(); k];
        for (i, chunk) in data.chunks(unit).enumerate() {
            chains[i % k].extend_from_slice(chunk);
        }
        let mut outer = Md5::new();
        for c in chains {
            outer.update(&md5(&c));
        }
        assert_eq!(outer.finalize(), fast, "case {case}");
    });
}

/// The literal DFA finds exactly the occurrences a naive scan finds.
#[test]
fn dfa_equals_naive() {
    sweep("dfa", 40, |case, rng| {
        let n = rng.below(2000) as usize;
        let hay: Vec<u8> = (0..n).map(|_| rng.below(4) as u8).collect();
        let pattern = [1u8, 0, 1];
        let dfa = LiteralDfa::new(&pattern);
        let naive = hay.windows(3).filter(|w| *w == pattern).count();
        assert_eq!(dfa.count(&hay), naive, "case {case}");
    });
}

/// Vector addition is commutative on the reduction lanes.
#[test]
fn vector_add_abelian() {
    sweep("vec-add", 40, |case, rng| {
        let mk = |s: u64| {
            let mut r = SimRng::from_seed(s);
            let mut v = vec![0u8; 512];
            r.fill_bytes(&mut v);
            v
        };
        let (a, b) = (mk(rng.next_u64()), mk(rng.next_u64()));
        let mut ab = a.clone();
        data::vector_add(&mut ab, &b);
        let mut ba = b.clone();
        data::vector_add(&mut ba, &a);
        assert_eq!(ab, ba, "case {case}");
    });
}

/// Sort bucketing maps every key to a valid node and respects the range
/// order.
#[test]
fn sort_bucket_valid_and_ordered() {
    sweep("sort-bucket", 40, |case, rng| {
        let n = rng.range(1, 200) as usize;
        let p = rng.range(1, 16) as usize;
        let keys: Vec<[u8; 10]> = (0..n)
            .map(|_| {
                let mut k = [0u8; 10];
                rng.fill_bytes(&mut k);
                k
            })
            .collect();
        let mut pairs: Vec<(u16, usize)> = keys
            .iter()
            .map(|k| {
                let b = data::sort_bucket(k, p);
                assert!(b < p, "case {case}");
                (u16::from_be_bytes([k[0], k[1]]), b)
            })
            .collect();
        pairs.sort();
        for w in pairs.windows(2) {
            assert!(
                w[0].1 <= w[1].1,
                "case {case}: bucket order violates key order"
            );
        }
    });
}

/// A link conserves serialization time: N equal packets arrive no
/// faster than the wire allows, and arrivals are monotone.
#[test]
fn link_serialization_conserved() {
    use asan_net::link::{Link, LinkConfig};
    sweep("link-serial", 40, |case, rng| {
        let n = rng.range(1, 100) as usize;
        let wire = rng.range(16, 2000);
        let cfg = LinkConfig::paper();
        let mut l = Link::new(cfg);
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            let t = l.send(wire, SimTime::ZERO);
            l.note_drain(t.done);
            assert!(t.done >= last, "case {case}: arrival regressed");
            last = t.done;
        }
        let min_time = asan_sim::SimDuration::transfer(wire, cfg.bytes_per_sec) * n as u64;
        assert!(
            last >= SimTime::ZERO + min_time,
            "case {case}: {n} x {wire} B finished before the wire could carry them"
        );
        assert_eq!(l.bytes_carried(), wire * n as u64, "case {case}");
    });
}

/// A storage read's packet schedule covers exactly the requested bytes,
/// is monotone, and respects the aggregate media rate.
#[test]
fn storage_schedule_sound() {
    use asan_io::storage::{Storage, StorageConfig};
    sweep("storage-sched", 30, |case, rng| {
        let offset = rng.below(1 << 20);
        let len = rng.range(1, 1 << 20);
        let cfg = StorageConfig::paper();
        let mut s = Storage::new(cfg);
        let sched = s.read_stream(offset, len, SimTime::ZERO);
        let total: u64 = sched.packet_len.iter().map(|&l| l as u64).sum();
        assert_eq!(total, len, "case {case}: bytes not conserved");
        for w in sched.packet_ready.windows(2) {
            assert!(w[0] <= w[1], "case {case}: schedule not monotone");
        }
        // Aggregate rate bound: both disks flat out.
        let aggregate = cfg.disk.bytes_per_sec * cfg.num_disks as u64;
        let min = asan_sim::SimDuration::transfer(len / 2, aggregate);
        assert!(
            sched.complete >= SimTime::ZERO + min,
            "case {case}: faster than the platters"
        );
    });
}

/// The buffer administrator never exceeds its capacity: at any sampled
/// instant the number of live buffers is at most the file size, and
/// every allocation eventually succeeds.
#[test]
fn dba_capacity_respected() {
    use asan_core::dba::BufferAdmin;
    sweep("dba-capacity", 30, |case, rng| {
        let n = rng.range(1, 100) as usize;
        let mut a = BufferAdmin::new(4);
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            let gap = rng.range(1, 1000);
            let hold = rng.range(1, 500);
            t += asan_sim::SimDuration::from_ns(gap);
            let (id, granted) = a.alloc(t);
            assert!(granted >= t, "case {case}");
            a.release(id, granted + asan_sim::SimDuration::from_ns(hold));
            assert!(a.busy_count(granted) <= 4, "case {case}");
        }
    });
}

/// CPU accounting is exact: the busy/stall/idle breakdown always sums
/// to the local clock, under any interleaving of operations.
#[test]
fn cpu_breakdown_conserves_time() {
    use asan_cpu::{Cpu, CpuConfig};
    sweep("cpu-breakdown", 30, |case, rng| {
        let n = rng.range(1, 200) as usize;
        let mut c = Cpu::new(CpuConfig::host());
        let mut addr = 0x1000_0000u64;
        for _ in 0..n {
            match rng.below(5) {
                0 => c.compute(37),
                1 => c.load(addr),
                2 => c.store(addr + 64),
                3 => c.prefetch(addr + 128),
                _ => {
                    let t = c.now() + asan_sim::SimDuration::from_ns(100);
                    c.idle_until(t);
                }
            }
            addr += 4096;
        }
        assert_eq!(
            c.breakdown().total(),
            c.now().since(SimTime::ZERO),
            "case {case}"
        );
    });
}

/// ustar headers always checksum-validate and store the size field
/// correctly, for any name and size.
#[test]
fn ustar_header_valid() {
    use asan_apps::tar_fmt;
    sweep("ustar", 60, |case, rng| {
        let name_len = rng.range(1, 99) as usize;
        let size = rng.below(1 << 33);
        let name: String = "f".repeat(name_len);
        let h = tar_fmt::ustar_header(&name, size, 12345);
        assert!(tar_fmt::checksum_ok(&h), "case {case}");
        // Parse the octal size field back.
        let parsed = h[124..135]
            .iter()
            .fold(0u64, |acc, &b| acc * 8 + (b - b'0') as u64);
        assert_eq!(parsed, size, "case {case}");
    });
}

/// The MPEG frame scanner conserves bytes globally under any chunking:
/// total segment bytes equal the stream length (up to a trailing
/// incomplete header).
#[test]
fn frame_scanner_conserves_bytes() {
    use asan_apps::data::{mpeg_stream, FrameScanner};
    sweep("mpeg-frames", 25, |case, rng| {
        let total = rng.range(1000, 50_000) as usize;
        let chunk = rng.range(7, 4096) as usize;
        let stream = mpeg_stream(total);
        let mut sc = FrameScanner::new();
        let mut covered = 0usize;
        for c in stream.chunks(chunk) {
            covered += sc.feed(c).into_iter().map(|(_, n)| n).sum::<usize>();
        }
        assert!(covered <= total, "case {case}");
        assert!(total - covered < 16, "case {case}: lost more than a header");
    });
}

/// Every generated fat tree is connected with symmetric shortest
/// routes: for any pair of nodes a route exists in both directions and
/// has the same hop count, hosts reach their leaf in one hop, and no
/// path exceeds the tree's diameter (up to the root and back down).
#[test]
fn fat_tree_routes_connected_and_symmetric() {
    use asan_net::topo::TopoSpec;
    sweep("fat-tree-routes", 25, |case, rng| {
        let radix = 2 * rng.range(2, 5) as usize; // even radix 4..8
        let hosts = rng.range(2, 40) as usize;
        let tcas = rng.below(3) as usize;
        let spec = TopoSpec::fat_tree(radix, hosts, tcas);
        let (fabric, map) = spec.try_build().expect("fat tree must build");
        let n = fabric.num_nodes();
        // Levels: hosts -> leaves -> ... -> root. Diameter bounds any
        // shortest path at twice the host depth.
        let depth = fabric.path_len(map.hosts[0], map.root);
        for a in 0..n as u16 {
            for b in 0..n as u16 {
                let (a, b) = (NodeId(a), NodeId(b));
                let fwd = fabric.path_len(a, b); // panics if disconnected
                let rev = fabric.path_len(b, a);
                assert_eq!(fwd, rev, "case {case}: asymmetric route {a:?}<->{b:?}");
                assert!(fwd <= 2 * depth, "case {case}: path beyond diameter");
                assert_eq!(fwd == 0, a == b, "case {case}");
            }
        }
        for (&h, &leaf) in map.hosts.iter().zip(&map.host_leaf) {
            assert_eq!(
                fabric.path_len(h, leaf),
                1,
                "case {case}: host not on its leaf"
            );
        }
    });
}

/// Fabric transmissions are causal: with non-decreasing ready times on
/// one flow, arrivals are non-decreasing too.
#[test]
fn fabric_arrivals_monotone() {
    use asan_net::topo::single_switch_cluster;
    sweep("fabric-causal", 30, |case, rng| {
        let n = rng.range(1, 100) as usize;
        let (mut f, hosts, tcas, _) = single_switch_cluster(1, 1);
        let mut ready = SimTime::ZERO;
        let mut last_arrival = SimTime::ZERO;
        for i in 0..n {
            let w = rng.range(16, 528);
            ready += asan_sim::SimDuration::from_ns((i % 7) as u64 * 100);
            let d = f.transmit(w, tcas[0], hosts[0], ready);
            assert!(d.arrival >= last_arrival, "case {case}: arrival regressed");
            assert!(d.header_at <= d.arrival, "case {case}");
            assert!(d.payload_start <= d.arrival, "case {case}");
            last_arrival = d.arrival;
        }
    });
}
