//! Diagnostics and the two output formats (`human`, `json`).

use std::fmt;

/// How severe a finding is. `Deny` findings fail the run (exit 1);
/// `Warn` findings are reported but do not affect the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, non-fatal.
    Warn,
    /// Fails the run.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// One finding, anchored to a file and line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule identifier (the name accepted by `allow(...)`).
    pub rule: &'static str,
    /// Severity level.
    pub severity: Severity,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.severity, self.rule, self.file, self.line, self.message
        )
    }
}

/// Renders the full human-format report.
pub fn render_human(diags: &[Diagnostic], checked_files: usize) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&format!(
        "asan-lint: {checked_files} files checked, {} finding(s) ({denies} deny)\n",
        diags.len(),
    ));
    out
}

/// Renders the machine-readable JSON report (stable field order; no
/// external JSON crate, so strings are escaped by hand).
pub fn render_json(diags: &[Diagnostic], checked_files: usize) -> String {
    let mut out = String::from("{\n  \"checked_files\": ");
    out.push_str(&checked_files.to_string());
    out.push_str(",\n  \"violations\": ");
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&denies.to_string());
    out.push_str(",\n  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"severity\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            json_str(d.rule),
            json_str(&d.severity.to_string()),
            json_str(&d.file),
            d.line,
            json_str(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "no-wall-clock",
            severity: Severity::Deny,
            file: "crates/core/src/lib.rs".into(),
            line: 7,
            message: "say \"no\" to wall clocks".into(),
        }
    }

    #[test]
    fn human_format_has_location_and_counts() {
        let text = render_human(&[sample()], 3);
        assert!(text.contains("deny[no-wall-clock] crates/core/src/lib.rs:7:"));
        assert!(text.contains("3 files checked, 1 finding(s) (1 deny)"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let text = render_json(&[sample()], 3);
        assert!(text.contains("\"violations\": 1"));
        assert!(text.contains("\\\"no\\\""));
        assert!(text.contains("\"line\": 7"));
    }

    #[test]
    fn json_empty_is_clean() {
        let text = render_json(&[], 0);
        assert!(text.contains("\"violations\": 0"));
        assert!(text.contains("\"diagnostics\": []"));
    }
}
