//! Fully-associative TLB model.
//!
//! The paper's host processor has fully-associative, 64-entry instruction
//! and data TLBs, and "accurately models the latency and cache effects
//! of TLB misses" (§4). Our model tracks resident page translations with
//! LRU replacement; on a miss, the memory hierarchy charges a page-table
//! walk (two dependent memory reads through the cache hierarchy).

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Counter;

/// Configuration for a [`Tlb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries (fully associative).
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// The paper's 64-entry TLB over 4 KB pages.
    pub fn paper() -> Self {
        TlbConfig {
            entries: 64,
            page_bytes: 4096,
        }
    }
}

/// TLB access statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct TlbStats {
    /// Accesses that found the translation resident.
    pub hits: Counter,
    /// Accesses that required a page-table walk.
    pub misses: Counter,
}

/// A fully-associative, LRU, tagged TLB.
///
/// # Example
///
/// ```
/// use asan_mem::tlb::{Tlb, TlbConfig};
/// let mut t = Tlb::new(TlbConfig::paper());
/// assert!(!t.access(0x1234));          // cold
/// assert!(t.access(0x1FFF));           // same 4 KB page
/// assert!(!t.access(0x2000));          // next page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// (page number, recency stamp) pairs; vector scan is fine at 64 entries.
    entries: Vec<(u64, u64)>,
    stamp: u64,
    stats: TlbStats,
    page_shift: u32, // asan-lint: allow(snapshot-completeness)
}

impl Tlb {
    /// Builds a TLB.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a power of two or `entries` is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.page_bytes.is_power_of_two(), "page size must be 2^k");
        assert!(cfg.entries > 0, "TLB needs at least one entry");
        Tlb {
            page_shift: cfg.page_bytes.trailing_zeros(),
            cfg,
            entries: Vec::new(),
            stamp: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Looks up the page containing `addr`, inserting it on miss.
    /// Returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.stamp;
            self.stats.hits.inc();
            return true;
        }
        self.stats.misses.inc();
        if self.entries.len() < self.cfg.entries {
            self.entries.push((page, self.stamp));
        } else {
            let victim = self
                .entries
                .iter_mut()
                .min_by_key(|e| e.1)
                .expect("non-empty");
            *victim = (page, self.stamp);
        }
        false
    }

    /// Bulk-records `n` lookups that are known to hit resident
    /// translations (see [`Cache::record_warm_hits`] for the soundness
    /// conditions — the caller must have proven residency and
    /// exclusivity first).
    ///
    /// [`Cache::record_warm_hits`]: crate::Cache::record_warm_hits
    pub fn record_warm_hits(&mut self, n: u64) {
        self.stats.hits.add(n);
    }

    /// Checks residency without updating LRU, statistics, or contents.
    pub fn probe(&self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        self.entries.iter().any(|e| e.0 == page)
    }

    /// Drops all translations.
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Writes the resident translations (in insertion order), the
    /// recency stamp and the statistics.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.stamp);
        self.stats.hits.snapshot(w);
        self.stats.misses.snapshot(w);
        w.usize(self.entries.len());
        for &(page, lru) in &self.entries {
            w.u64(page);
            w.u64(lru);
        }
    }

    /// Overwrites this TLB's dynamic state from a snapshot taken of a
    /// TLB with the same configuration.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stamp = r.u64()?;
        self.stats = TlbStats {
            hits: Counter::restore(r)?,
            misses: Counter::restore(r)?,
        };
        let n = r.usize()?;
        if n > self.cfg.entries {
            return Err(SnapError::Malformed("TLB snapshot exceeds capacity"));
        }
        self.entries.clear();
        for _ in 0..n {
            let page = r.u64()?;
            let lru = r.u64()?;
            self.entries.push((page, lru));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert!(!t.access(0));
        assert!(t.access(4095));
        assert!(!t.access(4096));
        assert_eq!(t.stats().hits.get(), 1);
        assert_eq!(t.stats().misses.get(), 2);
    }

    #[test]
    fn lru_replacement() {
        let mut t = tiny();
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // refresh page 0
        t.access(0x2000); // evicts page 1
        assert!(t.access(0x0000));
        assert!(!t.access(0x1000));
    }

    #[test]
    fn flush_forgets_everything() {
        let mut t = tiny();
        t.access(0);
        t.flush();
        assert!(!t.access(0));
    }

    #[test]
    fn snapshot_restores_residency_and_lru() {
        let mut t = tiny();
        t.access(0x0000);
        t.access(0x1000);
        t.access(0x0000); // page 0 most recent
        let mut w = SnapWriter::new();
        t.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = tiny();
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.stats().hits.get(), t.stats().hits.get());
        assert_eq!(back.stats().misses.get(), t.stats().misses.get());
        // Same LRU victim on the next insertion (page 1 evicted).
        assert!(!back.access(0x2000));
        assert!(back.probe(0x0000));
        assert!(!back.probe(0x1000));
    }

    #[test]
    fn paper_config_covers_256kb_working_set() {
        let mut t = Tlb::new(TlbConfig::paper());
        // Touch 64 pages; all fit.
        for p in 0..64u64 {
            t.access(p * 4096);
        }
        for p in 0..64u64 {
            assert!(t.access(p * 4096), "page {p} evicted prematurely");
        }
        // A 65th page evicts exactly one of the originals (the LRU).
        t.access(64 * 4096);
        let resident = (0..64u64).filter(|p| t.probe(p * 4096)).count();
        assert_eq!(resident, 63);
        assert!(!t.probe(0)); // page 0 was least recently used
    }
}
