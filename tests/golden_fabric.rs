//! Multi-switch golden-digest regression test: the scaled collective
//! reduction on the radix-4 fat tree at 64 hosts, under every handler
//! placement, must match the committed
//! [`tests/golden_digests_fabric.txt`](golden_digests_fabric.txt) byte
//! for byte.
//!
//! This is the fabric counterpart of `tests/golden.rs`: where that file
//! pins the nine single-switch paper benchmarks, this one pins the
//! multi-hop topology — the BFS route tables, per-link credit chains,
//! and cross-switch handler placement all feed these digests, so any
//! perturbation of the fabric model surfaces here. The file is
//! regenerated with
//! `cargo run --release -p asan-bench --bin repro -- golden-fabric`.

use asan_apps::reduce::{self, Mode};
use asan_core::HandlerPlacement;

const GOLDEN: &str = include_str!("golden_digests_fabric.txt");
const P: usize = 64;
const RADIX: usize = 4;

/// Rebuilds the golden-fabric rows in file order: per mode, the
/// host-side baseline then every placement's active run.
fn digests() -> Vec<(String, u64)> {
    let mut rows = Vec::new();
    for mode in [Mode::ReduceToOne, Mode::Distributed] {
        let base = reduce::run_scaled(mode, false, P, RADIX, HandlerPlacement::Nca);
        rows.push((
            format!("{}-r{RADIX}-p{P} normal", mode.tag()),
            base.stats_digest,
        ));
        for placement in HandlerPlacement::ALL {
            let r = reduce::run_scaled(mode, true, P, RADIX, placement);
            rows.push((
                format!("{}-r{RADIX}-p{P} {}", mode.tag(), placement.label()),
                r.stats_digest,
            ));
        }
    }
    rows
}

#[test]
fn fabric_digests_match_committed_golden_file() {
    let mut produced = String::new();
    for (name, digest) in digests() {
        produced.push_str(&format!("{name} {digest:016x}\n"));
    }
    let mut mismatches = Vec::new();
    for (want, got) in GOLDEN.lines().zip(produced.lines()) {
        if want != got {
            mismatches.push(format!("golden: {want}\n   got: {got}"));
        }
    }
    assert_eq!(
        GOLDEN.lines().count(),
        produced.lines().count(),
        "fabric golden file and produced digests differ in length:\n{produced}"
    );
    assert!(
        mismatches.is_empty(),
        "multi-switch simulation results changed ({} of {} digests):\n{}\n\nIf \
         intentional, regenerate with `cargo run --release -p asan-bench --bin repro \
         -- golden-fabric > tests/golden_digests_fabric.txt` and explain the change.",
        mismatches.len(),
        GOLDEN.lines().count(),
        mismatches.join("\n")
    );
}
