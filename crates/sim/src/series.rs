//! Windowed time-series telemetry: deterministic fixed-window samplers
//! and the [`Timeline`] report they produce.
//!
//! End-of-run aggregates (histograms, phase breakdowns) say *how much*
//! time a run spent where; they cannot say *when* a link saturated or
//! which window of a reduction stalled. [`TimeSeries`] fills that gap:
//! it buckets per-resource occupancy into fixed simulated-time windows
//! — "link 3 was busy 412 ns during window 7" — with no dependencies,
//! no floats in state, and no wall-clock reads.
//!
//! # Window semantics
//!
//! Windows are half-open intervals of simulated time:
//! window `w` covers `[w * window_ps, (w + 1) * window_ps)`. Edges are
//! therefore a pure function of the configured width — two runs with
//! the same width always agree on every bucket boundary, which is what
//! makes exported timelines byte-diffable in CI.
//!
//! * **Occupancy tracks** (link utilization, credit stalls, handler
//!   occupancy) split each busy interval across the windows it
//!   overlaps, attributing to each window exactly the picoseconds of
//!   overlap. Sample values are picoseconds-of-busy-time per window.
//! * **Gauge tracks** (event-queue depth) keep the *maximum* value
//!   observed in each window.
//!
//! A run longer than [`MAX_WINDOWS`] windows does not grow without
//! bound: every window index at or past the cap clamps to the final
//! window, which then accumulates the entire tail of the run. Choose
//! the width so the interesting part of the run fits; the clamp is a
//! safety valve, not a sampling strategy.
//!
//! # Determinism
//!
//! Sampling is always on and independent of any installed trace sink,
//! so the [`Timeline`] folded into the metrics digest is identical
//! whether tracing is off, on with a null sink, or exporting Perfetto
//! JSON. Nothing here schedules events or feeds back into the
//! simulation.

use std::collections::BTreeMap;

use crate::faults::fnv1a_fold;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// Track kind: per-link wire occupancy (sample = busy ps per window).
pub const KIND_LINK_UTIL: u8 = 0;
/// Track kind: per-link credit-stall time (sample = stalled ps per
/// window, attributed to the windows the wait overlapped).
pub const KIND_CREDIT_STALL: u8 = 1;
/// Track kind: event-queue depth (gauge; sample = max pending events
/// observed in the window; key 0 — the queue is global).
pub const KIND_QUEUE_DEPTH: u8 = 2;
/// Track kind: per-node handler occupancy (sample = ps handler code
/// occupied the node's engine CPUs per window).
pub const KIND_HANDLER_OCC: u8 = 3;

/// Hard cap on windows per track; indices past it clamp to the last
/// window (see module docs).
pub const MAX_WINDOWS: usize = 512;

/// Stable lower-case label for a track kind (JSON encoding and
/// rendering). Unknown kinds (future schema versions) get `"unknown"`.
pub fn kind_label(kind: u8) -> &'static str {
    match kind {
        KIND_LINK_UTIL => "link_util",
        KIND_CREDIT_STALL => "credit_stall",
        KIND_QUEUE_DEPTH => "queue_depth",
        KIND_HANDLER_OCC => "handler_occ",
        _ => "unknown",
    }
}

/// The in-run collector: fixed-window samplers keyed by
/// `(kind, resource)`.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    window_ps: u64,
    tracks: BTreeMap<(u8, u64), Vec<u64>>,
}

impl Default for TimeSeries {
    fn default() -> Self {
        TimeSeries::new(SimDuration::from_us(10))
    }
}

impl TimeSeries {
    /// Creates a collector with the given window width.
    ///
    /// # Panics
    ///
    /// Panics on a zero-width window (bucket edges would be undefined).
    pub fn new(window: SimDuration) -> Self {
        assert!(window.as_ps() > 0, "time-series window must be non-zero");
        TimeSeries {
            window_ps: window.as_ps(),
            tracks: BTreeMap::new(),
        }
    }

    /// The window width.
    pub fn window(&self) -> SimDuration {
        SimDuration::from_ps(self.window_ps)
    }

    /// Replaces the window width. Only legal before any sample has been
    /// recorded — resizing would silently re-bucket history.
    ///
    /// # Panics
    ///
    /// Panics if samples exist or `window` is zero.
    pub fn set_window(&mut self, window: SimDuration) {
        assert!(window.as_ps() > 0, "time-series window must be non-zero");
        assert!(
            self.tracks.is_empty(),
            "cannot resize a time-series that already holds samples"
        );
        self.window_ps = window.as_ps();
    }

    /// Window index of instant `t`, clamped to the cap.
    fn index(&self, t: SimTime) -> usize {
        ((t.as_ps() / self.window_ps) as usize).min(MAX_WINDOWS - 1)
    }

    fn track(&mut self, kind: u8, key: u64, upto: usize) -> &mut Vec<u64> {
        let v = self.tracks.entry((kind, key)).or_default();
        if v.len() <= upto {
            v.resize(upto + 1, 0);
        }
        v
    }

    /// Attributes the busy interval `[start, end)` of resource
    /// `(kind, key)` to the windows it overlaps, proportionally in
    /// exact integer picoseconds. Empty or inverted intervals record
    /// nothing.
    pub fn add_occupancy(&mut self, kind: u8, key: u64, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        let (w0, w1) = (self.index(start), self.index(end));
        let window_ps = self.window_ps;
        let track = self.track(kind, key, w1);
        if w0 == w1 {
            track[w0] += end.since(start).as_ps();
            return;
        }
        let mut cursor = start.as_ps();
        for (w, slot) in track.iter_mut().enumerate().take(w1 + 1).skip(w0) {
            // The last window is unbounded when clamped at the cap, so
            // the tail of the interval lands there in full.
            let edge = if w == w1 {
                end.as_ps()
            } else {
                ((w as u64 + 1) * window_ps).min(end.as_ps())
            };
            *slot += edge - cursor;
            cursor = edge;
        }
    }

    /// Records gauge `value` at instant `t` for `(kind, key)`, keeping
    /// the per-window maximum.
    pub fn gauge_max(&mut self, kind: u8, key: u64, t: SimTime, value: u64) {
        let w = self.index(t);
        let track = self.track(kind, key, w);
        track[w] = track[w].max(value);
    }

    /// Snapshot of the collected series as a [`Timeline`] report,
    /// tracks in ascending `(kind, key)` order.
    pub fn timeline(&self) -> Timeline {
        Timeline {
            window_ps: self.window_ps,
            tracks: self
                .tracks
                .iter()
                .map(|(&(kind, key), samples)| Track {
                    kind,
                    key,
                    samples: samples.clone(),
                })
                .collect(),
        }
    }

    /// Writes the collector's dynamic state (window width and every
    /// track's dense samples).
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.window_ps);
        w.usize(self.tracks.len());
        for (&(kind, key), samples) in &self.tracks {
            w.u8(kind);
            w.u64(key);
            w.usize(samples.len());
            for &s in samples {
                w.u64(s);
            }
        }
    }

    /// Overwrites the collector from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the stream is malformed (zero
    /// window, oversized track).
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let window_ps = r.u64()?;
        if window_ps == 0 {
            return Err(SnapError::Malformed("zero time-series window"));
        }
        let ntracks = r.usize()?;
        let mut tracks = BTreeMap::new();
        for _ in 0..ntracks {
            let kind = r.u8()?;
            let key = r.u64()?;
            let len = r.usize()?;
            if len > MAX_WINDOWS {
                return Err(SnapError::Malformed("time-series track over cap"));
            }
            let mut samples = Vec::with_capacity(len);
            for _ in 0..len {
                samples.push(r.u64()?);
            }
            tracks.insert((kind, key), samples);
        }
        Ok(TimeSeries { window_ps, tracks })
    }
}

/// One resource's sampled series: `samples[w]` is the value for window
/// `w` (dense from window 0; trailing windows the run never reached are
/// simply absent).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Track {
    /// What the samples measure ([`KIND_LINK_UTIL`] …).
    pub kind: u8,
    /// Which resource: link index for link tracks, node id for handler
    /// occupancy, 0 for the global queue gauge.
    pub key: u64,
    /// Per-window values (picoseconds for occupancy kinds, a count for
    /// gauges).
    pub samples: Vec<u64>,
}

/// The end-of-run windowed time-series report: the `timeline` section
/// of the metrics JSON. Fixed shape, schema-versioned at the metrics
/// layer, deterministic track order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Window width in picoseconds (0 only in an empty default report).
    pub window_ps: u64,
    /// All tracks, ascending `(kind, key)`.
    pub tracks: Vec<Track>,
}

impl Timeline {
    /// Folds every counter into an FNV-1a digest continuation: the
    /// window width, then each track's kind, key, length, and full
    /// dense sample values. Keeps the timeline under the same
    /// digest-completeness contract as the histograms.
    pub fn digest(&self, seed: u64) -> u64 {
        let mut h = fnv1a_fold(seed, self.window_ps);
        for Track { kind, key, samples } in &self.tracks {
            h = fnv1a_fold(h, u64::from(*kind));
            h = fnv1a_fold(h, *key);
            h = fnv1a_fold(h, samples.len() as u64);
            for &s in samples {
                h = fnv1a_fold(h, s);
            }
        }
        h
    }

    /// Tracks of one kind, in ascending key order.
    pub fn tracks_of(&self, kind: u8) -> impl Iterator<Item = &Track> {
        self.tracks.iter().filter(move |t| t.kind == kind)
    }

    /// Deterministic JSON encoding: fixed field order, integral values,
    /// sparse samples (only non-zero windows, as `[index, value]`
    /// pairs) so quiet tracks stay small.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"window_ps\":{},\"tracks\":[", self.window_ps);
        for (i, t) in self.tracks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"kind\":\"{}\",\"key\":{},\"windows\":{},\"samples\":[",
                kind_label(t.kind),
                t.key,
                t.samples.len(),
            ));
            let mut first = true;
            for (w, &v) in t.samples.iter().enumerate() {
                if v == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!("[{w},{v}]"));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_splits_across_window_boundaries() {
        let mut s = TimeSeries::new(SimDuration::from_us(1));
        // 0.5 us .. 2.5 us: 500 ns in window 0, 1000 in 1, 500 in 2.
        s.add_occupancy(
            KIND_LINK_UTIL,
            3,
            SimTime::from_ns(500),
            SimTime::from_ns(2500),
        );
        let tl = s.timeline();
        assert_eq!(tl.tracks.len(), 1);
        let t = &tl.tracks[0];
        assert_eq!((t.kind, t.key), (KIND_LINK_UTIL, 3));
        assert_eq!(
            t.samples,
            vec![500_000, 1_000_000, 500_000],
            "ps per window"
        );
        // Total is exactly the interval length: no rounding loss.
        assert_eq!(t.samples.iter().sum::<u64>(), 2_000_000);
    }

    #[test]
    fn empty_and_inverted_intervals_record_nothing() {
        let mut s = TimeSeries::new(SimDuration::from_us(1));
        s.add_occupancy(KIND_LINK_UTIL, 0, SimTime::from_ns(5), SimTime::from_ns(5));
        s.add_occupancy(KIND_LINK_UTIL, 0, SimTime::from_ns(9), SimTime::from_ns(5));
        assert!(s.timeline().tracks.is_empty());
    }

    #[test]
    fn gauge_keeps_per_window_maximum() {
        let mut s = TimeSeries::new(SimDuration::from_us(1));
        s.gauge_max(KIND_QUEUE_DEPTH, 0, SimTime::from_ns(100), 4);
        s.gauge_max(KIND_QUEUE_DEPTH, 0, SimTime::from_ns(900), 9);
        s.gauge_max(KIND_QUEUE_DEPTH, 0, SimTime::from_ns(950), 2);
        s.gauge_max(KIND_QUEUE_DEPTH, 0, SimTime::from_ns(1100), 1);
        let tl = s.timeline();
        assert_eq!(tl.tracks[0].samples, vec![9, 1]);
    }

    #[test]
    fn windows_clamp_at_the_cap() {
        let mut s = TimeSeries::new(SimDuration::from_ns(1));
        let far = SimTime::from_ps(MAX_WINDOWS as u64 * 1000 * 10);
        s.add_occupancy(KIND_HANDLER_OCC, 7, far, far + SimDuration::from_ns(2));
        s.gauge_max(KIND_QUEUE_DEPTH, 0, far, 5);
        let tl = s.timeline();
        for t in &tl.tracks {
            assert_eq!(t.samples.len(), MAX_WINDOWS, "clamped to the cap");
        }
        // The whole tail landed in the final window.
        assert_eq!(
            tl.tracks_of(KIND_HANDLER_OCC).next().unwrap().samples[MAX_WINDOWS - 1],
            2000
        );
    }

    #[test]
    fn interval_spanning_the_cap_keeps_exact_total() {
        let mut s = TimeSeries::new(SimDuration::from_ns(1));
        let start = SimTime::from_ps((MAX_WINDOWS as u64 - 2) * 1000);
        let end = SimTime::from_ps((MAX_WINDOWS as u64 + 5) * 1000);
        s.add_occupancy(KIND_LINK_UTIL, 0, start, end);
        let t = &s.timeline().tracks[0];
        assert_eq!(t.samples.iter().sum::<u64>(), end.since(start).as_ps());
        assert_eq!(t.samples[MAX_WINDOWS - 2], 1000);
        // Final window absorbed its own 1000 ps plus the 5-window tail.
        assert_eq!(t.samples[MAX_WINDOWS - 1], 6000);
    }

    #[test]
    fn timeline_digest_covers_every_sample() {
        let mut a = TimeSeries::new(SimDuration::from_us(1));
        a.add_occupancy(KIND_LINK_UTIL, 1, SimTime::ZERO, SimTime::from_ns(100));
        let base = a.timeline().digest(0);
        assert_eq!(base, a.timeline().digest(0), "digest is stable");
        let mut b = a.clone();
        b.add_occupancy(KIND_LINK_UTIL, 1, SimTime::ZERO, SimTime::from_ps(1));
        assert_ne!(base, b.timeline().digest(0), "sample value folds in");
        let mut c = a.clone();
        c.gauge_max(KIND_QUEUE_DEPTH, 0, SimTime::ZERO, 1);
        assert_ne!(base, c.timeline().digest(0), "new track folds in");
        assert_ne!(
            Timeline::default().digest(0),
            a.timeline().digest(0),
            "window width folds in"
        );
    }

    #[test]
    fn json_is_sparse_and_fixed_shape() {
        let mut s = TimeSeries::new(SimDuration::from_us(1));
        s.add_occupancy(
            KIND_LINK_UTIL,
            2,
            SimTime::from_us(3),
            SimTime::from_ns(3100),
        );
        let j = s.timeline().to_json();
        assert_eq!(
            j,
            "{\"window_ps\":1000000,\"tracks\":[{\"kind\":\"link_util\",\"key\":2,\
             \"windows\":4,\"samples\":[[3,100000]]}]}"
        );
        assert_eq!(
            Timeline::default().to_json(),
            "{\"window_ps\":0,\"tracks\":[]}"
        );
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let mut s = TimeSeries::new(SimDuration::from_us(2));
        s.add_occupancy(KIND_LINK_UTIL, 4, SimTime::ZERO, SimTime::from_us(5));
        s.gauge_max(KIND_QUEUE_DEPTH, 0, SimTime::from_us(1), 17);
        let mut w = SnapWriter::new();
        s.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes).unwrap();
        let back = TimeSeries::restore(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.timeline(), s.timeline());
        assert_eq!(back.window(), s.window());
    }

    #[test]
    fn set_window_only_before_samples() {
        let mut s = TimeSeries::default();
        s.set_window(SimDuration::from_us(50));
        assert_eq!(s.window(), SimDuration::from_us(50));
        s.gauge_max(KIND_QUEUE_DEPTH, 0, SimTime::ZERO, 1);
        let r = std::panic::catch_unwind(move || s.set_window(SimDuration::from_us(1)));
        assert!(r.is_err(), "resizing with samples must panic");
    }
}
