//! MPEG-filter (§5): video stream filtering + colour reduction.
//!
//! Two filtering tasks run over a 2 202 640-byte clip: *frame filtering*
//! (drop all P-type frames — cheap header checks, ideal for the switch)
//! and *colour reduction* of the surviving I-frames (decode/re-encode,
//! compute-heavy — stays on the host).
//!
//! * **normal**: the host does both stages per 64 KB block.
//! * **active**: the switch handler drops P-frames as data streams by
//!   and forwards only I-frame bytes; the host colour-reduces them —
//!   the cooperating pipeline the paper highlights ("the switch CPU is
//!   almost fully utilized, achieving a balanced computing pipeline
//!   with the host CPU").
//!
//! Shape (Figures 3–4): speedups ≈ 1.13 (`normal+pref`), 1.23
//! (`active`), 1.36 (`active+pref`) over `normal`; host traffic reduced
//! by 36.5 % in both active cases.

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::cluster::{ClusterConfig, Dest, HostCtx, HostMsg, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::{HandlerId, NodeId};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::blockio::{BlockPlan, BlockReader};
use crate::cost;
use crate::data::{self, FrameScanner, FrameType};
use crate::runner::{drive, standard_cluster, AppRun, Variant};

/// Handler ID of the frame filter.
pub const MPEG_HANDLER: HandlerId = HandlerId::new_const(6);

/// Flow tag of the final statistics message.
pub const DONE_HANDLER: HandlerId = HandlerId::new_const(63);

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Video size in bytes (2 202 640 in Table 1).
    pub video_bytes: u64,
    /// I/O request size (64 KB, §5).
    pub io_block: u64,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Params {
            video_bytes: 2_202_640,
            io_block: 64 * 1024,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        Params {
            video_bytes: 256 * 1024,
            ..Params::paper()
        }
    }
}

/// Pure-Rust reference: bytes belonging to I-frames.
pub fn reference_i_bytes(video: &[u8]) -> u64 {
    let mut sc = FrameScanner::new();
    sc.feed(video)
        .into_iter()
        .filter(|(ty, _)| *ty == FrameType::I)
        .map(|(_, n)| n as u64)
        .sum()
}

/// Normal-case host program: filter + colour-reduce per block.
struct NormalMpeg {
    video: Arc<Vec<u8>>, // asan-lint: allow(snapshot-completeness)
    reader: BlockReader,
    scanner: FrameScanner,
    i_bytes: u64,
    buf_base: u64, // asan-lint: allow(snapshot-completeness)
}

impl HostProgram for NormalMpeg {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        let Some((off, len)) = self.reader.on_complete(ctx, req) else {
            return;
        };
        let chunk = &self.video[off as usize..(off + len) as usize];
        let segs = self.scanner.feed(chunk);
        let mut pos = off;
        for (ty, n) in segs {
            let n = n as u64;
            // Frame filtering: header checks + copying survivors.
            ctx.cpu().compute(cost::MPEG_FRAME_PARSE_INSTR);
            ctx.cpu().scan(
                self.buf_base + pos,
                n,
                64,
                cost::MPEG_FILTER_INSTR_PER_BYTE * 64,
                false,
            );
            if ty == FrameType::I {
                self.i_bytes += n;
                // Colour reduction: heavy per-byte transform.
                ctx.cpu().scan(
                    self.buf_base + pos,
                    n,
                    64,
                    cost::MPEG_COLOR_INSTR_PER_BYTE * 64,
                    false,
                );
            }
            pos += n;
        }
        self.reader.refill(ctx);
        if self.reader.done() {
            ctx.finish();
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        self.scanner.snapshot(w);
        w.u64(self.i_bytes);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.scanner.restore(r)?;
        self.i_bytes = r.u64()?;
        Ok(())
    }
}

/// The switch handler: per-packet frame filtering.
pub struct MpegFilter {
    scanner: FrameScanner,
    host: NodeId, // asan-lint: allow(snapshot-completeness)
    seen: u64,
    expect: u64, // asan-lint: allow(snapshot-completeness)
    i_bytes: u64,
    out_addr: u32,
    /// Partial outgoing packet of I-frame bytes.
    batch: Vec<u8>,
    batch_buf: Option<asan_core::BufId>,
}

impl MpegFilter {
    fn new(host: NodeId, expect: u64) -> Self {
        MpegFilter {
            scanner: FrameScanner::new(),
            host,
            seen: 0,
            expect,
            i_bytes: 0,
            out_addr: 0,
            batch: Vec::new(),
            batch_buf: None,
        }
    }

    /// I-frame bytes forwarded.
    pub fn i_bytes(&self) -> u64 {
        self.i_bytes
    }

    fn flush(&mut self, ctx: &mut HandlerCtx<'_>) {
        if let Some(buf) = self.batch_buf.take() {
            if self.batch.is_empty() {
                ctx.free_buffer(buf);
            } else {
                ctx.send_buffer(buf, self.host, None, self.out_addr);
                self.out_addr = self.out_addr.wrapping_add(self.batch.len() as u32);
                self.batch.clear();
            }
        }
    }

    fn emit(&mut self, ctx: &mut HandlerCtx<'_>, bytes: &[u8]) {
        let mut rest = bytes;
        while !rest.is_empty() {
            if self.batch_buf.is_none() {
                self.batch_buf = Some(ctx.alloc_buffer());
            }
            let room = asan_core::BUFFER_BYTES - self.batch.len();
            let take = room.min(rest.len());
            let buf = self.batch_buf.expect("just set");
            ctx.buffer_write(buf, self.batch.len(), &rest[..take]);
            self.batch.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.batch.len() == asan_core::BUFFER_BYTES {
                self.flush(ctx);
            }
        }
    }
}

impl Handler for MpegFilter {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let payload = ctx.payload();
        // Header checks across the packet.
        ctx.charge_stream(payload.len(), cost::MPEG_FILTER_INSTR_PER_BYTE * 8);
        let segs = self.scanner.feed(&payload);
        let mut pos = 0usize;
        for (ty, n) in segs {
            let end = (pos + n).min(payload.len());
            if ty == FrameType::I {
                let bytes = &payload[pos.min(payload.len())..end];
                self.i_bytes += bytes.len() as u64;
                let bytes = bytes.to_vec();
                self.emit(ctx, &bytes);
            }
            pos = end;
        }
        self.seen += payload.len() as u64;
        if self.seen >= self.expect {
            self.flush(ctx);
            ctx.send(
                self.host,
                Some(DONE_HANDLER),
                0,
                &self.i_bytes.to_le_bytes(),
            );
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.scanner.snapshot(w);
        w.u64(self.seen);
        w.u64(self.i_bytes);
        w.u32(self.out_addr);
        w.bytes(&self.batch);
        w.opt_u64(self.batch_buf.map(|b| u64::from(b.0)));
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.scanner.restore(r)?;
        self.seen = r.u64()?;
        self.i_bytes = r.u64()?;
        self.out_addr = r.u32()?;
        self.batch = r.bytes()?;
        self.batch_buf = match r.opt_u64()? {
            Some(v) => {
                Some(asan_core::BufId(u8::try_from(v).map_err(|_| {
                    SnapError::Malformed("buffer id out of range")
                })?))
            }
            None => None,
        };
        Ok(())
    }
}

/// Active-case host program: colour-reduce arriving I-frame data.
struct ActiveMpeg {
    reader: BlockReader,
    i_bytes_in: u64,
    reported: Option<u64>,
}

impl HostProgram for ActiveMpeg {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        self.reader.on_complete(ctx, req);
        self.reader.refill(ctx);
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if msg.handler == Some(DONE_HANDLER) {
            self.reported = Some(u64::from_le_bytes(msg.data[..8].try_into().expect("count")));
            ctx.finish();
            return;
        }
        let n = msg.data.len() as u64;
        self.i_bytes_in += n;
        // Colour reduction on the arriving I-frame bytes.
        ctx.cpu().scan(
            0x2000_0000 + msg.addr as u64,
            n,
            64,
            cost::MPEG_COLOR_INSTR_PER_BYTE * 64,
            false,
        );
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.u64(self.i_bytes_in);
        w.opt_u64(self.reported);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.i_bytes_in = r.u64()?;
        self.reported = r.opt_u64()?;
        Ok(())
    }
}

/// Runs MPEG-filter in one configuration, validating the surviving
/// byte count against the pure-Rust reference.
///
/// # Panics
///
/// Panics if the filtered byte count disagrees with the reference.
pub fn run(variant: Variant, p: &Params) -> AppRun {
    let video = Arc::new(data::mpeg_stream(p.video_bytes as usize));
    let want = reference_i_bytes(&video);
    let build = || {
        let (mut cl, hs, ts, sw) = standard_cluster(1, 1, ClusterConfig::paper());
        let file = cl
            .add_file(ts[0], video.as_ref().clone())
            .expect("cluster setup");
        let host = hs[0];

        if variant.is_active() {
            cl.register_handler(
                sw,
                MPEG_HANDLER,
                Box::new(MpegFilter::new(host, p.video_bytes)),
            )
            .expect("cluster setup");
            cl.set_program(
                host,
                Box::new(ActiveMpeg {
                    reader: BlockReader::new(BlockPlan {
                        file,
                        total: p.video_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::Mapped {
                            node: sw,
                            handler: MPEG_HANDLER,
                            base_addr: 0,
                        },
                    }),
                    i_bytes_in: 0,
                    reported: None,
                }),
            )
            .expect("cluster setup");
        } else {
            cl.set_program(
                host,
                Box::new(NormalMpeg {
                    video: video.clone(),
                    reader: BlockReader::new(BlockPlan {
                        file,
                        total: p.video_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::HostBuf { addr: 0x1000_0000 },
                    }),
                    scanner: FrameScanner::new(),
                    i_bytes: 0,
                    buf_base: 0x1000_0000,
                }),
            )
            .expect("cluster setup");
        }
        (cl, host)
    };

    let (mut cl, host, report) = drive(&format!("mpeg-{}", variant.label()), build);
    let got = if variant.is_active() {
        let program = cl.take_program(host).expect("program");
        let prog = program
            .as_any()
            .and_then(|a| a.downcast_ref::<ActiveMpeg>())
            .expect("active mpeg");
        assert_eq!(
            prog.i_bytes_in,
            prog.reported.expect("done message"),
            "host received bytes vs handler report"
        );
        prog.i_bytes_in
    } else {
        cl.take_program(host)
            .expect("program")
            .as_any()
            .and_then(|a| a.downcast_ref::<NormalMpeg>())
            .map(|m| m.i_bytes)
            .expect("normal mpeg")
    };
    // The scanner may defer a few header bytes at chunk boundaries.
    assert!(
        got.abs_diff(want) <= 64,
        "I-byte count mismatch: {got} vs {want}"
    );
    AppRun::from_report(variant, &cl, &report, report.finish, got)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_keeps_about_63_5_percent() {
        let p = Params::small();
        let video = data::mpeg_stream(p.video_bytes as usize);
        let frac = reference_i_bytes(&video) as f64 / video.len() as f64;
        assert!((frac - 0.635).abs() < 0.02, "I share = {frac}");
    }

    #[test]
    fn variants_agree_on_filtered_bytes() {
        let p = Params::small();
        let runs: Vec<AppRun> = Variant::ALL.iter().map(|&v| run(v, &p)).collect();
        for r in &runs {
            assert!(
                r.artifact.abs_diff(runs[0].artifact) <= 128,
                "{:?}: {} vs {}",
                r.variant,
                r.artifact,
                runs[0].artifact
            );
        }
    }

    #[test]
    fn active_reduces_host_traffic() {
        let p = Params::small();
        let normal = run(Variant::NormalPref, &p);
        let active = run(Variant::ActivePref, &p);
        let ratio = active.host_traffic as f64 / normal.host_traffic as f64;
        // ~63.5 % of the data survives the filter.
        assert!((0.55..0.75).contains(&ratio), "traffic ratio {ratio}");
    }
}
