//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] names *what* can go wrong — packet corruption and
//! drop probabilities, disk soft-error and latency-spike rates, link
//! outage windows, credit starvation, handler traps, buffer seizure —
//! and a [`FaultInjector`] turns the plan into concrete, reproducible
//! fate decisions using independent [`SimRng`] streams per fault
//! category. Every layer of the simulator consults the injector at its
//! natural fault point; the injector also accumulates the per-fault
//! [`FaultStats`] (injected / detected / recovered / degraded) whose
//! digest must be bit-identical for identical `(seed, plan)` pairs.

use std::collections::BTreeMap;
use std::fmt;

use crate::rng::SimRng;
use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::{SimDuration, SimTime};

/// Traps one handler after a given number of invocations, modeling a
/// handler bug (illegal instruction, runaway loop caught by the
/// dispatch watchdog). The trap fires *before* the n-th invocation
/// executes, so the handler's state has no partial effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandlerTrap {
    /// Raw node id of the switch to trap on, or `None` for any switch.
    pub node: Option<u16>,
    /// Raw 6-bit handler id to trap.
    pub handler: u8,
    /// 1-based invocation count at which the trap fires.
    pub at_invocation: u64,
}

/// Seizes DBA buffers at simulation start, releasing them at a fixed
/// time — models firmware hogging staging memory and exercises the
/// dispatch unit's allocation-stall path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferSeize {
    /// Number of buffers to seize on every active engine.
    pub count: usize,
    /// When the seized buffers are released.
    pub release_at: SimTime,
}

/// A deterministic fault schedule for one simulation run.
///
/// All probabilities are per-decision (per storage data packet, per
/// disk request). A default plan injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for all fault-decision RNG streams.
    pub seed: u64,
    /// Probability a storage data packet is bit-corrupted in flight
    /// (detected by the receiver's ICRC check).
    pub packet_corrupt_prob: f64,
    /// Probability a storage data packet is dropped in flight.
    pub packet_drop_prob: f64,
    /// Probability a disk read/write request fails with a soft error
    /// (detected by the controller's sector CRC; retried).
    pub disk_error_prob: f64,
    /// Probability a disk request pays a full mechanical repositioning
    /// even when sequential (a latency spike: thermal recalibration,
    /// sector remap).
    pub disk_latency_spike_prob: f64,
    /// Transient link-down windows applied to every link.
    pub link_outages: Vec<(SimTime, SimTime)>,
    /// Credit limit forced onto every link (credit starvation), if any.
    pub credit_limit: Option<usize>,
    /// Handler traps to arm.
    pub handler_traps: Vec<HandlerTrap>,
    /// DBA buffer seizure, if any.
    pub buffer_seize: Option<BufferSeize>,
    /// Whether receivers NAK corrupt/missing packets immediately
    /// (per-packet retransmission). With `false`, recovery relies
    /// solely on the end-to-end request timeout.
    pub nak_retransmit: bool,
    /// Delay from fault detection to the retransmitted packet leaving
    /// the TCA again (NAK propagation + buffer-cache re-read).
    pub nak_delay: SimDuration,
    /// Initial end-to-end request timeout; doubles per retry attempt.
    pub request_timeout: SimDuration,
    /// Delay before a failed disk request is retried.
    pub disk_retry_delay: SimDuration,
    /// Bound on retry attempts (request timeouts and per-request disk
    /// retries) before the run aborts with a structured error.
    pub max_retries: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            packet_corrupt_prob: 0.0,
            packet_drop_prob: 0.0,
            disk_error_prob: 0.0,
            disk_latency_spike_prob: 0.0,
            link_outages: Vec::new(),
            credit_limit: None,
            handler_traps: Vec::new(),
            buffer_seize: None,
            nak_retransmit: true,
            nak_delay: SimDuration::from_us(5),
            request_timeout: SimDuration::from_ms(20),
            disk_retry_delay: SimDuration::from_ms(10),
            max_retries: 8,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing (but arms the recovery machinery).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The standard chaos preset: 1% packet corruption, 0.5% drop,
    /// 2% disk soft errors, 1% disk latency spikes.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan {
            seed,
            packet_corrupt_prob: 0.01,
            packet_drop_prob: 0.005,
            disk_error_prob: 0.02,
            disk_latency_spike_prob: 0.01,
            ..FaultPlan::default()
        }
    }
}

/// Fate of one storage data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Delivered intact.
    Deliver,
    /// Bit-corrupted in flight; carries the payload bit to flip.
    Corrupt(usize),
    /// Dropped in flight.
    Drop,
}

/// Fate of one disk request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFate {
    /// Completes normally.
    Ok,
    /// Soft error: detected by the controller, must be retried.
    Error,
    /// Latency spike: completes, but pays a full mechanical reposition.
    Spike,
}

/// Injected / detected / recovered / degraded counts for one fault
/// category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults the plan injected.
    pub injected: u64,
    /// Faults a checker (ICRC, controller CRC, watchdog) caught.
    pub detected: u64,
    /// Faults recovered transparently (retransmit, retry).
    pub recovered: u64,
    /// Faults survived by degrading service (host fallback, stalls).
    pub degraded: u64,
}

impl FaultCounters {
    /// Writes all four counters.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.injected);
        w.u64(self.detected);
        w.u64(self.recovered);
        w.u64(self.degraded);
    }

    /// Reads counters written by [`FaultCounters::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultCounters {
            injected: r.u64()?,
            detected: r.u64()?,
            recovered: r.u64()?,
            degraded: r.u64()?,
        })
    }

    fn fold(&self, h: u64) -> u64 {
        fnv1a_fold(
            fnv1a_fold(
                fnv1a_fold(fnv1a_fold(h, self.injected), self.detected),
                self.recovered,
            ),
            self.degraded,
        )
    }
}

/// All fault counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packet bit-corruption (detected via ICRC).
    pub packet_corrupt: FaultCounters,
    /// Packet drops.
    pub packet_drop: FaultCounters,
    /// Disk soft errors.
    pub disk_error: FaultCounters,
    /// Disk latency spikes.
    pub disk_latency: FaultCounters,
    /// Link outage windows.
    pub link_outage: FaultCounters,
    /// Handler traps.
    pub handler_trap: FaultCounters,
    /// DBA buffer seizures.
    pub buffer_seize: FaultCounters,
    /// Packets retransmitted (NAK or timeout driven).
    pub retransmits: u64,
    /// End-to-end request timeouts that fired on a live request.
    pub timeouts: u64,
    /// Packets processed on a host-side fallback engine after a trap.
    pub fallback_packets: u64,
}

impl FaultStats {
    /// FNV-1a digest over every counter, in a fixed field order. Two
    /// runs with the same seed and plan must produce equal digests.
    pub fn digest(&self) -> u64 {
        let mut h = self.packet_corrupt.fold(FNV_OFFSET);
        h = self.packet_drop.fold(h);
        h = self.disk_error.fold(h);
        h = self.disk_latency.fold(h);
        h = self.link_outage.fold(h);
        h = self.handler_trap.fold(h);
        h = self.buffer_seize.fold(h);
        h = fnv1a_fold(h, self.retransmits);
        h = fnv1a_fold(h, self.timeouts);
        fnv1a_fold(h, self.fallback_packets)
    }

    /// Writes every counter, in the same fixed order as
    /// [`FaultStats::digest`].
    pub fn snapshot(&self, w: &mut SnapWriter) {
        self.packet_corrupt.snapshot(w);
        self.packet_drop.snapshot(w);
        self.disk_error.snapshot(w);
        self.disk_latency.snapshot(w);
        self.link_outage.snapshot(w);
        self.handler_trap.snapshot(w);
        self.buffer_seize.snapshot(w);
        w.u64(self.retransmits);
        w.u64(self.timeouts);
        w.u64(self.fallback_packets);
    }

    /// Reads stats written by [`FaultStats::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(FaultStats {
            packet_corrupt: FaultCounters::restore(r)?,
            packet_drop: FaultCounters::restore(r)?,
            disk_error: FaultCounters::restore(r)?,
            disk_latency: FaultCounters::restore(r)?,
            link_outage: FaultCounters::restore(r)?,
            handler_trap: FaultCounters::restore(r)?,
            buffer_seize: FaultCounters::restore(r)?,
            retransmits: r.u64()?,
            timeouts: r.u64()?,
            fallback_packets: r.u64()?,
        })
    }
}

impl fmt::Display for FaultCounters {
    /// `injected/detected/recovered/degraded`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.injected, self.detected, self.recovered, self.degraded
        )
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "corrupt {} | drop {} | disk-err {} | disk-lat {} | outage {} | trap {} | seize {} \
             | {} retransmits, {} timeouts, {} fallback pkts",
            self.packet_corrupt,
            self.packet_drop,
            self.disk_error,
            self.disk_latency,
            self.link_outage,
            self.handler_trap,
            self.buffer_seize,
            self.retransmits,
            self.timeouts,
            self.fallback_packets,
        )
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one `u64` into an FNV-1a hash, byte by byte.
pub fn fnv1a_fold(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Turns a [`FaultPlan`] into concrete fate decisions, one independent
/// RNG stream per fault category so adding a fault type never perturbs
/// the others' streams.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// The armed plan. Static for the life of a run — restore rebuilds
    /// the injector from the same plan, so it is not serialized.
    plan: FaultPlan, // asan-lint: allow(snapshot-completeness)
    packet_rng: SimRng,
    disk_rng: SimRng,
    /// Per-`(node, handler)` invocation counts for trap matching.
    trap_counts: BTreeMap<(u16, u8), u64>,
    /// Accumulated fault statistics.
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Arms a plan.
    pub fn new(plan: FaultPlan) -> Self {
        let packet_rng = SimRng::from_seed(plan.seed ^ 0x7061_636b_6574_0001); // "packet"
        let disk_rng = SimRng::from_seed(plan.seed ^ 0x6469_736b_0000_0002); // "disk"
        FaultInjector {
            plan,
            packet_rng,
            disk_rng,
            trap_counts: BTreeMap::new(),
            stats: FaultStats::default(),
        }
    }

    /// The armed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of one storage data packet (called once per
    /// transmission attempt, including retransmissions).
    pub fn packet_fate(&mut self) -> PacketFate {
        if self.packet_rng.chance(self.plan.packet_corrupt_prob) {
            self.stats.packet_corrupt.injected += 1;
            let bit = self.packet_rng.next_u64() as usize;
            return PacketFate::Corrupt(bit);
        }
        if self.packet_rng.chance(self.plan.packet_drop_prob) {
            self.stats.packet_drop.injected += 1;
            return PacketFate::Drop;
        }
        PacketFate::Deliver
    }

    /// Decides the fate of one disk request attempt.
    pub fn disk_fate(&mut self) -> DiskFate {
        if self.disk_rng.chance(self.plan.disk_error_prob) {
            self.stats.disk_error.injected += 1;
            return DiskFate::Error;
        }
        if self.disk_rng.chance(self.plan.disk_latency_spike_prob) {
            self.stats.disk_latency.injected += 1;
            return DiskFate::Spike;
        }
        DiskFate::Ok
    }

    /// Counts an invocation of `handler` on `node` and reports whether
    /// an armed trap fires *before* this invocation executes.
    pub fn should_trap(&mut self, node: u16, handler: u8) -> bool {
        let n = self.trap_counts.entry((node, handler)).or_insert(0);
        *n += 1;
        let count = *n;
        let fired = self.plan.handler_traps.iter().any(|t| {
            t.handler == handler && t.node.is_none_or(|tn| tn == node) && t.at_invocation == count
        });
        if fired {
            self.stats.handler_trap.injected += 1;
            self.stats.handler_trap.detected += 1; // the watchdog caught it
        }
        fired
    }

    /// Writes the injector's dynamic state: both RNG cursors, the
    /// per-handler invocation counts, and the accumulated statistics.
    /// The plan itself is static configuration, re-armed by whoever
    /// rebuilds the simulation before calling
    /// [`FaultInjector::restore`].
    pub fn snapshot(&self, w: &mut SnapWriter) {
        self.packet_rng.snapshot(w);
        self.disk_rng.snapshot(w);
        w.usize(self.trap_counts.len());
        for (&(node, handler), &count) in &self.trap_counts {
            w.u16(node);
            w.u8(handler);
            w.u64(count);
        }
        self.stats.snapshot(w);
    }

    /// Overwrites this injector's dynamic state from a snapshot; the
    /// already-armed plan is kept. Every subsequent fate decision then
    /// continues the snapshotted RNG streams exactly.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.packet_rng = SimRng::restore(r)?;
        self.disk_rng = SimRng::restore(r)?;
        let n = r.usize()?;
        let mut trap_counts = BTreeMap::new();
        for _ in 0..n {
            let node = r.u16()?;
            let handler = r.u8()?;
            let count = r.u64()?;
            trap_counts.insert((node, handler), count);
        }
        self.trap_counts = trap_counts;
        self.stats = FaultStats::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::default());
        for _ in 0..10_000 {
            assert_eq!(inj.packet_fate(), PacketFate::Deliver);
            assert_eq!(inj.disk_fate(), DiskFate::Ok);
        }
        assert!(!inj.should_trap(0, 1));
        assert_eq!(inj.stats, FaultStats::default());
    }

    #[test]
    fn same_seed_same_fates() {
        let fates = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::chaos(seed));
            (0..1000).map(|_| inj.packet_fate()).collect::<Vec<_>>()
        };
        assert_eq!(fates(7), fates(7));
        assert_ne!(fates(7), fates(8));
    }

    #[test]
    fn chaos_rates_roughly_match() {
        let mut inj = FaultInjector::new(FaultPlan::chaos(42));
        let n = 100_000;
        for _ in 0..n {
            inj.packet_fate();
        }
        let corrupt = inj.stats.packet_corrupt.injected as f64 / n as f64;
        let drop = inj.stats.packet_drop.injected as f64 / n as f64;
        assert!((corrupt - 0.01).abs() < 0.003, "corrupt rate {corrupt}");
        assert!((drop - 0.005).abs() < 0.003, "drop rate {drop}");
    }

    #[test]
    fn trap_fires_exactly_once_at_nth_invocation() {
        let mut plan = FaultPlan::default();
        plan.handler_traps.push(HandlerTrap {
            node: Some(3),
            handler: 9,
            at_invocation: 5,
        });
        let mut inj = FaultInjector::new(plan);
        let fired: Vec<bool> = (0..10).map(|_| inj.should_trap(3, 9)).collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 1);
        assert!(fired[4], "trap must fire on the 5th invocation");
        // Other (node, handler) pairs are independent.
        assert!(!inj.should_trap(4, 9));
        assert_eq!(inj.stats.handler_trap.injected, 1);
    }

    #[test]
    fn injector_snapshot_resumes_fate_streams() {
        let mut plan = FaultPlan::chaos(99);
        plan.handler_traps.push(HandlerTrap {
            node: None,
            handler: 2,
            at_invocation: 10,
        });
        let mut orig = FaultInjector::new(plan.clone());
        for _ in 0..500 {
            orig.packet_fate();
            orig.disk_fate();
        }
        for _ in 0..7 {
            orig.should_trap(1, 2);
        }
        let mut w = SnapWriter::new();
        orig.snapshot(&mut w);
        let bytes = w.into_bytes();

        // Fresh injector from the same plan, as a rebuilt run would.
        let mut restored = FaultInjector::new(plan);
        let mut r = SnapReader::new(&bytes).unwrap();
        restored.restore(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(restored.stats, orig.stats);
        for _ in 0..500 {
            assert_eq!(orig.packet_fate(), restored.packet_fate());
            assert_eq!(orig.disk_fate(), restored.disk_fate());
        }
        // Trap counts resumed: the 10th invocation still fires once.
        for i in 0..5 {
            assert_eq!(orig.should_trap(1, 2), restored.should_trap(1, 2), "{i}");
        }
        assert_eq!(orig.stats.digest(), restored.stats.digest());
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let mut a = FaultStats::default();
        a.packet_corrupt.injected = 1;
        let mut b = FaultStats::default();
        b.packet_drop.injected = 1;
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.digest());
        assert_ne!(FaultStats::default().digest(), a.digest());
    }
}
