//! The typed event vocabulary and the shared bus the subsystem engines
//! communicate through.
//!
//! Every state change in the cluster simulation is an [`Event`] popped
//! from the scheduler and routed to exactly one engine
//! (see [`crate::engines`]). Engines never call each other: anything
//! that crosses a subsystem boundary goes back through the
//! [`EventBus`] as a freshly scheduled event, which keeps the causal
//! order explicit and the simulation deterministic (ties in time break
//! by push order).
//!
//! The bus itself is a per-event bundle of the *shared* services —
//! scheduler, fabric, fault injector, in-flight request table, file
//! store, configuration — while each engine owns its subsystem-private
//! state (host CPUs, switch engines, disk arrays, …).

use std::collections::{BTreeMap, BTreeSet};

use asan_net::topo::NodeKind;
use asan_net::{Bytes, Fabric, HandlerId, NodeId};
use asan_sim::faults::FaultInjector;
use asan_sim::sched::{Scheduler, Traceable};
use asan_sim::trace::TraceCtx;
use asan_sim::{SimDuration, SimTime};

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::cluster::ClusterConfig;
use crate::handler::SwitchIoReq;
use crate::metrics::Probe;

/// Writes a [`NodeId`].
fn snap_node(w: &mut SnapWriter, n: NodeId) {
    w.u16(n.0);
}

/// Reads a [`NodeId`].
fn read_node(r: &mut SnapReader<'_>) -> Result<NodeId, SnapError> {
    Ok(NodeId(r.u16()?))
}

/// Writes an optional [`HandlerId`] as presence byte + raw value.
fn snap_opt_handler(w: &mut SnapWriter, h: Option<HandlerId>) {
    match h {
        Some(h) => {
            w.bool(true);
            w.u8(h.as_u8());
        }
        None => w.bool(false),
    }
}

/// Reads a raw handler ID, validating the 6-bit range (so a malformed
/// snapshot errors instead of panicking in [`HandlerId::new`]).
fn read_handler(r: &mut SnapReader<'_>) -> Result<HandlerId, SnapError> {
    let v = r.u8()?;
    if v >= 64 {
        return Err(SnapError::Malformed("handler id out of range"));
    }
    Ok(HandlerId::new(v))
}

/// Reads an optional [`HandlerId`].
fn read_opt_handler(r: &mut SnapReader<'_>) -> Result<Option<HandlerId>, SnapError> {
    if r.bool()? {
        Ok(Some(read_handler(r)?))
    } else {
        Ok(None)
    }
}

/// Writes an optional [`ReqId`].
fn snap_opt_req(w: &mut SnapWriter, req: Option<ReqId>) {
    w.opt_u64(req.map(|r| r.0));
}

/// Reads an optional [`ReqId`].
fn read_opt_req(r: &mut SnapReader<'_>) -> Result<Option<ReqId>, SnapError> {
    Ok(r.opt_u64()?.map(ReqId))
}

/// Writes a whole [`asan_net::Packet`]: encoded header, payload bytes,
/// and the ICRC *as stamped* (so simulated corruption survives a
/// snapshot/restore round trip).
pub(crate) fn snap_packet(w: &mut SnapWriter, pkt: &asan_net::Packet) {
    w.bytes(&pkt.header.encode());
    w.bytes(&pkt.payload);
    w.u32(pkt.icrc());
}

/// Reads a [`asan_net::Packet`] written by [`snap_packet`].
pub(crate) fn read_packet(r: &mut SnapReader<'_>) -> Result<asan_net::Packet, SnapError> {
    let hb = r.bytes()?;
    let hb: [u8; asan_net::HEADER_BYTES] = hb
        .as_slice()
        .try_into()
        .map_err(|_| SnapError::Malformed("packet header size"))?;
    let header =
        asan_net::Header::decode(&hb).map_err(|_| SnapError::Malformed("packet header"))?;
    let payload = r.bytes()?;
    if payload.len() != header.len as usize {
        return Err(SnapError::Malformed("packet payload length"));
    }
    let icrc = r.u32()?;
    Ok(asan_net::Packet::from_parts(header, payload, icrc))
}

impl Dest {
    /// Writes this destination (tag byte + fields).
    fn snapshot(&self, w: &mut SnapWriter) {
        match self {
            Dest::HostBuf { addr } => {
                w.u8(0);
                w.u64(*addr);
            }
            Dest::Mapped {
                node,
                handler,
                base_addr,
            } => {
                w.u8(1);
                snap_node(w, *node);
                w.u8(handler.as_u8());
                w.u32(*base_addr);
            }
        }
    }

    /// Reads a destination written by [`Dest::snapshot`].
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Dest::HostBuf { addr: r.u64()? }),
            1 => Ok(Dest::Mapped {
                node: read_node(r)?,
                handler: read_handler(r)?,
                base_addr: r.u32()?,
            }),
            _ => Err(SnapError::Malformed("dest tag")),
        }
    }
}

impl HostMsg {
    /// Writes this message (payload as an owned byte copy).
    fn snapshot(&self, w: &mut SnapWriter) {
        snap_node(w, self.src);
        snap_opt_handler(w, self.handler);
        w.u32(self.addr);
        w.bytes(&self.data);
        w.u32(self.seq);
    }

    /// Reads a message written by [`HostMsg::snapshot`].
    fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(HostMsg {
            src: read_node(r)?,
            handler: read_opt_handler(r)?,
            addr: r.u32()?,
            data: Bytes::from(r.bytes()?),
            seq: r.u32()?,
        })
    }
}

/// Identifies an I/O request issued by a host program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReqId(pub u64);

/// Identifies a stored file (placed on one TCA's disk array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub usize);

/// Where a read's data should be delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dest {
    /// DMA into the issuing host's memory at `addr` (the normal path).
    HostBuf {
        /// Physical base address of the host buffer.
        addr: u64,
    },
    /// Stream to `node` as active messages mapped at `base_addr`,
    /// invoking `handler` per packet (the active path: the host "maps
    /// the file into memory" on the switch, §2.2).
    Mapped {
        /// Destination node (an active switch, usually).
        node: NodeId,
        /// Handler invoked per arriving packet.
        handler: HandlerId,
        /// Base of the mapped address window.
        base_addr: u32,
    },
}

/// A message as seen by a host program.
#[derive(Debug, Clone)]
pub struct HostMsg {
    /// Sending node.
    pub src: NodeId,
    /// Active-handler field, if the sender set one (lets programs
    /// demultiplex flows).
    pub handler: Option<HandlerId>,
    /// Address field of the header.
    pub addr: u32,
    /// Real payload bytes (a cheap shared view — call
    /// [`asan_net::Bytes::to_vec`] for an owned copy).
    pub data: Bytes,
    /// Flow sequence number.
    pub seq: u32,
}

/// Metadata of a stored file.
#[derive(Debug, Clone, Copy)]
pub struct FileMeta {
    /// The TCA whose disks hold the file.
    pub tca: NodeId,
    /// File length in bytes.
    pub len: u64,
    /// Byte offset of the file on the array.
    pub disk_offset: u64,
}

/// The cluster's stored files: metadata plus the real bytes.
#[derive(Debug, Default)]
pub struct FileStore {
    pub(crate) meta: Vec<FileMeta>,
    /// Interned file contents: per-packet payloads are O(1) views.
    pub(crate) data: Vec<Bytes>,
}

impl FileStore {
    /// File metadata, indexed by [`FileId`].
    pub fn meta(&self) -> &[FileMeta] {
        &self.meta
    }

    /// The stored bytes of `file`.
    pub fn data(&self, file: FileId) -> &[u8] {
        &self.data[file.0]
    }

    /// Appends a file, returning its ID.
    pub(crate) fn push(&mut self, meta: FileMeta, data: Vec<u8>) -> FileId {
        let id = FileId(self.meta.len());
        self.meta.push(meta);
        self.data.push(Bytes::from(data));
        id
    }
}

/// Shared in-flight state of one host-issued I/O request.
#[derive(Debug)]
pub(crate) struct IoState {
    pub(crate) host: NodeId,
    pub(crate) dest: Dest,
    pub(crate) remaining: usize,
    pub(crate) bytes: u64,
    /// The TCA serving this request.
    pub(crate) tca: NodeId,
    /// The file being read.
    pub(crate) file: FileId,
    /// File-relative byte offset of the read.
    pub(crate) offset: u64,
    /// Per-sequence-number delivery flags (populated when the storage
    /// read schedule is known; only under an armed fault plan).
    pub(crate) got: Vec<bool>,
    /// Per-sequence-number payload lengths, for buffer-cache re-reads
    /// on retransmission.
    pub(crate) lens: Vec<u32>,
    /// First fault category seen per sequence number (0 = none,
    /// 1 = corrupt, 2 = drop) — attributes eventual recovery.
    pub(crate) faulted: Vec<u8>,
    /// End-to-end timeout attempts so far.
    pub(crate) attempt: u32,
    /// Current (exponentially backed-off) timeout.
    pub(crate) timeout: SimDuration,
}

/// Per-request reorder buffer for mapped flows under fault injection:
/// a stream handler must see its packets in sequence order, so late
/// retransmits park arrivals here until the gap fills.
#[derive(Debug, Default)]
pub(crate) struct FlowState {
    pub(crate) next_seq: u32,
    pub(crate) buffered: BTreeMap<u32, asan_net::Packet>,
}

/// One scheduled occurrence in the cluster simulation.
///
/// Each variant is owned by exactly one subsystem engine — see
/// [`crate::engines::route`] for the mapping.
#[derive(Debug)]
pub enum Event {
    /// A host program's `on_start` hook fires.
    Start(NodeId),
    /// A whole packet finished arriving at a host.
    PacketToHost {
        /// Receiving host.
        host: NodeId,
        /// The arrived message.
        msg: HostMsg,
        /// The I/O request this packet belongs to, if it is request
        /// data (DMA'd without a per-packet CPU cost).
        io_req: Option<ReqId>,
    },
    /// An active packet's header reached a switch (payload window given).
    /// `io_req` is set for mapped storage data under a fault plan, which
    /// is tracked per sequence number and delivered in order.
    PacketToSwitch {
        /// The switch (or active TCA) engine dispatching the packet.
        sw: NodeId,
        /// The packet itself.
        pkt: asan_net::Packet,
        /// When the payload starts streaming into the data buffer.
        payload_start: SimTime,
        /// When the payload has fully arrived.
        payload_end: SimTime,
        /// Set for per-sequence tracked storage data under faults.
        io_req: Option<ReqId>,
        /// Causal trace id of the packet's lifecycle (0 = untraced);
        /// the dispatch spans it triggers inherit it.
        trace: u64,
    },
    /// A packet for a trapped handler reached the fallback host and is
    /// dispatched on its software engine.
    FallbackDispatch {
        /// The switch the handler originally lived on.
        sw: NodeId,
        /// The forwarded packet.
        pkt: asan_net::Packet,
        /// Causal trace id carried over from the original packet.
        trace: u64,
    },
    /// Raw data arrived at a TCA (archive-write stream).
    PacketToTca {
        /// The receiving TCA.
        tca: NodeId,
        /// Payload bytes arrived.
        bytes: u64,
    },
    /// A host-issued I/O request's control packet reached its TCA (or a
    /// soft-errored disk attempt is being retried).
    IoRequestAtTca {
        /// The serving TCA.
        tca: NodeId,
        /// The request.
        req: ReqId,
        /// File to read.
        file: FileId,
        /// File-relative offset.
        offset: u64,
        /// Bytes to read.
        len: u64,
        /// Delivery destination.
        dest: Dest,
        /// Disk retry attempt (0 = first try).
        attempt: u32,
    },
    /// A switch-initiated I/O request reached its TCA.
    SwitchIoAtTca {
        /// The request a handler posted.
        r: SwitchIoReq,
        /// Disk retry attempt (0 = first try).
        attempt: u32,
    },
    /// All data of `req` delivered; notify the issuing host.
    IoComplete {
        /// The issuing host.
        host: NodeId,
        /// The completed request.
        req: ReqId,
    },
    /// The TCA finished injecting a mapped read's data: send the small
    /// completion notification to the issuing host *now* (deferred so
    /// the fabric only ever sees causally-ordered sends per link).
    CompletionNotice {
        /// The serving TCA.
        tca: NodeId,
        /// The issuing host.
        host: NodeId,
        /// The completed request.
        req: ReqId,
    },
    /// One MTU packet of a storage read becomes ready at its TCA: inject
    /// it into the fabric *now*. Deferring each injection to its ready
    /// time keeps every link's sends causally ordered, so small control
    /// messages interleave with bulk data instead of queueing behind
    /// pre-booked future transfers.
    InjectIoPacket {
        /// Injecting node (the TCA).
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Active handler to invoke, if any.
        handler: Option<HandlerId>,
        /// Address field of the header.
        addr: u32,
        /// Payload bytes (shared view into the file store).
        payload: Bytes,
        /// Flow sequence number.
        seq: u32,
        /// The request this packet belongs to, when tracked.
        io_req: Option<ReqId>,
        /// Causal trace id of the owning request's lifecycle (set even
        /// when `io_req` is not tracked; 0 = untraced).
        trace: u64,
    },
    /// Retransmit packet `seq` of `req` from the TCA's buffer cache
    /// (NAK- or timeout-driven).
    Retransmit {
        /// The request.
        req: ReqId,
        /// The missing sequence number.
        seq: u32,
    },
    /// End-to-end watchdog for `req`; stale timers carry an old
    /// `attempt` and are ignored.
    RequestTimeout {
        /// The guarded request.
        req: ReqId,
        /// The attempt this timer was armed for.
        attempt: u32,
    },
}

impl IoState {
    /// Writes every field of this in-flight request's shared state.
    pub(crate) fn snapshot(&self, w: &mut SnapWriter) {
        snap_node(w, self.host);
        self.dest.snapshot(w);
        w.usize(self.remaining);
        w.u64(self.bytes);
        snap_node(w, self.tca);
        w.usize(self.file.0);
        w.u64(self.offset);
        w.usize(self.got.len());
        for g in &self.got {
            w.bool(*g);
        }
        w.usize(self.lens.len());
        for l in &self.lens {
            w.u32(*l);
        }
        w.bytes(&self.faulted);
        w.u32(self.attempt);
        w.dur(self.timeout);
    }

    /// Reads a request state written by [`IoState::snapshot`].
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let host = read_node(r)?;
        let dest = Dest::restore(r)?;
        let remaining = r.usize()?;
        let bytes = r.u64()?;
        let tca = read_node(r)?;
        let file = FileId(r.usize()?);
        let offset = r.u64()?;
        let n = r.usize()?;
        let mut got = Vec::with_capacity(n);
        for _ in 0..n {
            got.push(r.bool()?);
        }
        let n = r.usize()?;
        let mut lens = Vec::with_capacity(n);
        for _ in 0..n {
            lens.push(r.u32()?);
        }
        let faulted = r.bytes()?;
        let attempt = r.u32()?;
        let timeout = r.dur()?;
        Ok(IoState {
            host,
            dest,
            remaining,
            bytes,
            tca,
            file,
            offset,
            got,
            lens,
            faulted,
            attempt,
            timeout,
        })
    }
}

impl FlowState {
    /// Writes this flow's reorder cursor and parked packets.
    pub(crate) fn snapshot(&self, w: &mut SnapWriter) {
        w.u32(self.next_seq);
        w.usize(self.buffered.len());
        for (seq, pkt) in &self.buffered {
            w.u32(*seq);
            snap_packet(w, pkt);
        }
    }

    /// Reads a flow state written by [`FlowState::snapshot`].
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let next_seq = r.u32()?;
        let n = r.usize()?;
        let mut buffered = BTreeMap::new();
        for _ in 0..n {
            let seq = r.u32()?;
            buffered.insert(seq, read_packet(r)?);
        }
        Ok(FlowState { next_seq, buffered })
    }
}

impl Event {
    /// Writes this event (variant tag byte + fields, declaration order).
    pub(crate) fn snapshot(&self, w: &mut SnapWriter) {
        match self {
            Event::Start(n) => {
                w.u8(0);
                snap_node(w, *n);
            }
            Event::PacketToHost { host, msg, io_req } => {
                w.u8(1);
                snap_node(w, *host);
                msg.snapshot(w);
                snap_opt_req(w, *io_req);
            }
            Event::PacketToSwitch {
                sw,
                pkt,
                payload_start,
                payload_end,
                io_req,
                trace,
            } => {
                w.u8(2);
                snap_node(w, *sw);
                snap_packet(w, pkt);
                w.time(*payload_start);
                w.time(*payload_end);
                snap_opt_req(w, *io_req);
                w.u64(*trace);
            }
            Event::FallbackDispatch { sw, pkt, trace } => {
                w.u8(3);
                snap_node(w, *sw);
                snap_packet(w, pkt);
                w.u64(*trace);
            }
            Event::PacketToTca { tca, bytes } => {
                w.u8(4);
                snap_node(w, *tca);
                w.u64(*bytes);
            }
            Event::IoRequestAtTca {
                tca,
                req,
                file,
                offset,
                len,
                dest,
                attempt,
            } => {
                w.u8(5);
                snap_node(w, *tca);
                w.u64(req.0);
                w.usize(file.0);
                w.u64(*offset);
                w.u64(*len);
                dest.snapshot(w);
                w.u32(*attempt);
            }
            Event::SwitchIoAtTca { r, attempt } => {
                w.u8(6);
                snap_node(w, r.tca);
                w.usize(r.file);
                w.u64(r.offset);
                w.u64(r.len);
                snap_node(w, r.deliver_to);
                snap_opt_handler(w, r.deliver_handler);
                w.u32(r.deliver_addr);
                w.time(r.ready);
                w.u32(*attempt);
            }
            Event::IoComplete { host, req } => {
                w.u8(7);
                snap_node(w, *host);
                w.u64(req.0);
            }
            Event::CompletionNotice { tca, host, req } => {
                w.u8(8);
                snap_node(w, *tca);
                snap_node(w, *host);
                w.u64(req.0);
            }
            Event::InjectIoPacket {
                src,
                dst,
                handler,
                addr,
                payload,
                seq,
                io_req,
                trace,
            } => {
                w.u8(9);
                snap_node(w, *src);
                snap_node(w, *dst);
                snap_opt_handler(w, *handler);
                w.u32(*addr);
                w.bytes(payload);
                w.u32(*seq);
                snap_opt_req(w, *io_req);
                w.u64(*trace);
            }
            Event::Retransmit { req, seq } => {
                w.u8(10);
                w.u64(req.0);
                w.u32(*seq);
            }
            Event::RequestTimeout { req, attempt } => {
                w.u8(11);
                w.u64(req.0);
                w.u32(*attempt);
            }
        }
    }

    /// Reads an event written by [`Event::snapshot`].
    pub(crate) fn restore(r: &mut SnapReader<'_>) -> Result<Event, SnapError> {
        Ok(match r.u8()? {
            0 => Event::Start(read_node(r)?),
            1 => Event::PacketToHost {
                host: read_node(r)?,
                msg: HostMsg::restore(r)?,
                io_req: read_opt_req(r)?,
            },
            2 => Event::PacketToSwitch {
                sw: read_node(r)?,
                pkt: read_packet(r)?,
                payload_start: r.time()?,
                payload_end: r.time()?,
                io_req: read_opt_req(r)?,
                trace: r.u64()?,
            },
            3 => Event::FallbackDispatch {
                sw: read_node(r)?,
                pkt: read_packet(r)?,
                trace: r.u64()?,
            },
            4 => Event::PacketToTca {
                tca: read_node(r)?,
                bytes: r.u64()?,
            },
            5 => Event::IoRequestAtTca {
                tca: read_node(r)?,
                req: ReqId(r.u64()?),
                file: FileId(r.usize()?),
                offset: r.u64()?,
                len: r.u64()?,
                dest: Dest::restore(r)?,
                attempt: r.u32()?,
            },
            6 => Event::SwitchIoAtTca {
                r: SwitchIoReq {
                    tca: read_node(r)?,
                    file: r.usize()?,
                    offset: r.u64()?,
                    len: r.u64()?,
                    deliver_to: read_node(r)?,
                    deliver_handler: read_opt_handler(r)?,
                    deliver_addr: r.u32()?,
                    ready: r.time()?,
                },
                attempt: r.u32()?,
            },
            7 => Event::IoComplete {
                host: read_node(r)?,
                req: ReqId(r.u64()?),
            },
            8 => Event::CompletionNotice {
                tca: read_node(r)?,
                host: read_node(r)?,
                req: ReqId(r.u64()?),
            },
            9 => Event::InjectIoPacket {
                src: read_node(r)?,
                dst: read_node(r)?,
                handler: read_opt_handler(r)?,
                addr: r.u32()?,
                payload: Bytes::from(r.bytes()?),
                seq: r.u32()?,
                io_req: read_opt_req(r)?,
                trace: r.u64()?,
            },
            10 => Event::Retransmit {
                req: ReqId(r.u64()?),
                seq: r.u32()?,
            },
            11 => Event::RequestTimeout {
                req: ReqId(r.u64()?),
                attempt: r.u32()?,
            },
            _ => return Err(SnapError::Malformed("event tag")),
        })
    }
}

impl Traceable for Event {
    fn trace_label(&self) -> &'static str {
        match self {
            Event::Start(_) => "Start",
            Event::PacketToHost { .. } => "PacketToHost",
            Event::PacketToSwitch { .. } => "PacketToSwitch",
            Event::FallbackDispatch { .. } => "FallbackDispatch",
            Event::PacketToTca { .. } => "PacketToTca",
            Event::IoRequestAtTca { .. } => "IoRequestAtTca",
            Event::SwitchIoAtTca { .. } => "SwitchIoAtTca",
            Event::IoComplete { .. } => "IoComplete",
            Event::CompletionNotice { .. } => "CompletionNotice",
            Event::InjectIoPacket { .. } => "InjectIoPacket",
            Event::Retransmit { .. } => "Retransmit",
            Event::RequestTimeout { .. } => "RequestTimeout",
        }
    }
}

/// The services shared by every engine, lent out for the duration of
/// one event.
///
/// [`crate::cluster::Cluster`] assembles a fresh bus from its own
/// fields for each popped event and hands it to the owning engine's
/// [`crate::engines::Engine::on_event`]. Engines mutate shared state
/// through the bus and schedule follow-up events with [`EventBus::push`];
/// subsystem-private state stays inside the engines themselves.
#[derive(Debug)]
pub struct EventBus<'a> {
    /// The scheduler (push side of the event loop).
    pub sched: &'a mut Scheduler<Event>,
    /// The switching fabric (wire timing, link accounting, routing).
    pub fabric: &'a mut Fabric,
    /// The armed fault injector, if the run has a fault plan.
    pub injector: &'a mut Option<FaultInjector>,
    /// In-flight host-issued I/O requests, shared across engines
    /// (ordered so any future iteration is deterministic).
    pub(crate) reqs: &'a mut BTreeMap<ReqId, IoState>,
    /// The stored files (metadata + bytes).
    pub files: &'a mut FileStore,
    /// The cluster configuration.
    pub cfg: &'a ClusterConfig,
    /// Nodes whose TCA has an active engine: handler-addressed packets
    /// for these nodes route to the dispatch subsystem instead of the
    /// raw archive-write path.
    pub active_tca_nodes: &'a BTreeSet<NodeId>,
    /// The observability probe: engines report timed spans (packet,
    /// handler, disk, buffer) here.
    pub probe: &'a mut Probe,
}

impl EventBus<'_> {
    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: Event) {
        self.sched.push(time, event);
    }

    /// Injects `wire_bytes` into the fabric from `src` toward `dst` and
    /// records the packet's end-to-end span (injection → last byte at
    /// the destination) with the probe, tagged with `ctx`'s causal
    /// trace, plus one per-hop link span (and stall span when the hop
    /// waited). Engines use this for every *delivered* packet; sends
    /// that a fault swallows (drops, corrupt payloads discarded by
    /// ICRC) call [`Fabric::transmit`] directly so the latency
    /// distribution — and the timeline — only contain real deliveries.
    pub(crate) fn transmit(
        &mut self,
        wire_bytes: u64,
        src: NodeId,
        dst: NodeId,
        ready: SimTime,
        ctx: TraceCtx,
    ) -> asan_net::Delivery {
        let mut hops = self.probe.take_hop_buf();
        let d = self
            .fabric
            .transmit_recorded(wire_bytes, src, dst, ready, Some(&mut hops));
        self.probe
            .packet(dst, ready, d.arrival, wire_bytes, &hops, ctx);
        self.probe.put_hop_buf(hops);
        d
    }

    /// Notes a transparently recovered fault of category `cat`
    /// (1 = corrupt, 2 = drop): the faulted packet's data has now
    /// arrived via retransmission.
    pub(crate) fn note_recovered(&mut self, cat: u8) {
        if let Some(inj) = self.injector.as_mut() {
            match cat {
                1 => inj.stats.packet_corrupt.recovered += 1,
                2 => inj.stats.packet_drop.recovered += 1,
                _ => {}
            }
        }
    }

    /// Records the first fault category seen for `seq` of `req`, for
    /// recovery attribution.
    pub(crate) fn mark_faulted(&mut self, req: ReqId, seq: u32, cat: u8) {
        if let Some(st) = self.reqs.get_mut(&req) {
            if let Some(f) = st.faulted.get_mut(seq as usize) {
                if *f == 0 {
                    *f = cat;
                }
            }
        }
    }

    /// Schedules the delivery events for one packet already injected
    /// into the fabric: the receiving node's kind decides which
    /// subsystem sees it next. `trace` is the causal trace id stamped
    /// on switch-bound follow-up events (0 = untraced).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn deliver(
        &mut self,
        src: NodeId,
        dst: NodeId,
        handler: Option<HandlerId>,
        addr: u32,
        data: Bytes,
        seq: u32,
        d: asan_net::Delivery,
        io_req: Option<ReqId>,
        trace: u64,
    ) {
        match self.fabric.kind(dst) {
            NodeKind::Host => {
                self.push(
                    d.arrival,
                    Event::PacketToHost {
                        host: dst,
                        msg: HostMsg {
                            src,
                            handler,
                            addr,
                            data,
                            seq,
                        },
                        io_req,
                    },
                );
            }
            NodeKind::Switch => {
                let h = handler.expect("messages to a switch must be active");
                self.push_switch_packet(src, dst, h, addr, data, seq, d, io_req, trace);
            }
            NodeKind::Tca => {
                if let Some(h) = handler.filter(|_| self.active_tca_nodes.contains(&dst)) {
                    self.push_switch_packet(src, dst, h, addr, data, seq, d, io_req, trace);
                } else {
                    self.push(
                        d.arrival,
                        Event::PacketToTca {
                            tca: dst,
                            bytes: data.len() as u64,
                        },
                    );
                }
            }
        }
    }

    /// Schedules the [`Event::PacketToSwitch`] for one active packet.
    #[allow(clippy::too_many_arguments)]
    fn push_switch_packet(
        &mut self,
        src: NodeId,
        dst: NodeId,
        h: HandlerId,
        addr: u32,
        data: Bytes,
        seq: u32,
        d: asan_net::Delivery,
        io_req: Option<ReqId>,
        trace: u64,
    ) {
        let len = data.len();
        let pkt = asan_net::Packet::new(
            asan_net::Header {
                src,
                dst,
                len: u16::try_from(len).expect("payload bounded by MTU"),
                handler: Some(h),
                addr,
                seq,
            },
            data,
        );
        if io_req.is_some() {
            // Faultable storage data: the engine store-and-forwards
            // (full payload verified by ICRC before dispatch), so
            // everything happens at arrival.
            self.push(
                d.arrival,
                Event::PacketToSwitch {
                    sw: dst,
                    pkt,
                    payload_start: d.arrival,
                    payload_end: d.arrival,
                    io_req,
                    trace,
                },
            );
        } else {
            self.push(
                d.header_at,
                Event::PacketToSwitch {
                    sw: dst,
                    pkt,
                    payload_start: d.payload_start,
                    payload_end: d.arrival,
                    io_req: None,
                    trace,
                },
            );
        }
    }
}
