//! The multiprogrammed-server experiment (§7's closing claim).
//!
//! "Even where there is little or no speedup, reductions in host
//! utilization and system bandwidth requirements allow for other tasks
//! to be performed concurrently. Thus, active switches can play a key
//! role in improving overall throughput in modern multi-programmed
//! servers."
//!
//! We make that quantitative: run Grep (normal+pref vs active+pref)
//! while a CPU-bound background job is co-scheduled on the same host.
//! The job soaks up whatever CPU time Grep leaves idle; the *makespan*
//! (both jobs done) shows the throughput effect that execution time
//! alone hides.

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::cluster::ClusterConfig;
use asan_sim::{SimDuration, SimTime};

use crate::grep;
use crate::Variant;

/// Result of one co-scheduled run.
#[derive(Debug, Clone)]
pub struct MultiprogRun {
    /// Which Grep configuration ran in the foreground.
    pub variant: Variant,
    /// When Grep finished.
    pub grep_done: SimTime,
    /// When the background job finished (it runs on after Grep if
    /// needed: `grep_done + leftover`).
    pub background_done: SimTime,
    /// Makespan: both jobs complete.
    pub makespan: SimTime,
}

/// Runs Grep with `background` CPU time co-scheduled on the host.
///
/// # Panics
///
/// Panics if the Grep result fails its reference validation.
pub fn run(variant: Variant, p: &grep::Params, background: SimDuration) -> MultiprogRun {
    // Reuses the Grep wiring but keeps hold of the cluster so the
    // background job can be attached.
    let corpus = Arc::new(crate::data::grep_corpus(
        p.file_bytes as usize,
        p.pattern,
        p.matches,
    ));
    let _ = corpus; // the grep module regenerates it deterministically

    let (report, bg_done, bg_left) =
        grep::run_with_background(variant, p, ClusterConfig::paper(), background);
    let grep_done = report;
    let background_done = match bg_done {
        Some(t) => t,
        None => grep_done + bg_left,
    };
    MultiprogRun {
        variant,
        grep_done,
        background_done,
        makespan: grep_done.max(background_done),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_improves_makespan_with_background_work() {
        let p = grep::Params::small();
        // Background work comparable to the run length.
        let bg = SimDuration::from_ms(8);
        let normal = run(Variant::NormalPref, &p, bg);
        let active = run(Variant::ActivePref, &p, bg);
        // Active frees more host cycles, so the pair finishes sooner.
        assert!(
            active.makespan < normal.makespan,
            "active {} vs normal {}",
            active.makespan,
            normal.makespan
        );
    }

    #[test]
    fn background_completes_during_idle_when_small() {
        let p = grep::Params::small();
        let bg = SimDuration::from_us(500);
        let r = run(Variant::ActivePref, &p, bg);
        // A small job fits entirely inside Grep's idle time.
        assert!(r.background_done <= r.grep_done);
        assert_eq!(r.makespan, r.grep_done);
    }

    #[test]
    fn zero_background_is_plain_grep() {
        let p = grep::Params::small();
        let r = run(Variant::NormalPref, &p, SimDuration::ZERO);
        assert_eq!(r.makespan, r.grep_done);
    }
}
