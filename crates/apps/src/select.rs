//! Database Select (§5): "a sequential range selection that checks if
//! one integer field of a record falls within a specific range".
//!
//! * **normal**: the host streams the 128 MB table from disk and
//!   evaluates the predicate on every 128 B record.
//! * **active**: the selection runs in the switch's data buffers; only
//!   matching records travel to the host, which merely counts them.
//!
//! The paper's observations to reproduce (Figures 7–8): the `normal`
//! case loses to everything because of synchronous I/O stalls; the
//! other three are I/O-bound and tie; the *average host utilization of
//! the normal cases is ~21× that of the active cases*; active host I/O
//! traffic is ~25 % of normal.

use std::sync::Arc; // asan-lint: allow(domain-isolation) — immutable payload handoff, no locks or threads

use asan_core::cluster::{ClusterConfig, Dest, HostCtx, HostMsg, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::{HandlerId, NodeId};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};

use crate::blockio::{BlockPlan, BlockReader};
use crate::cost;
use crate::data;
use crate::runner::{drive, standard_cluster, AppRun, Variant};

/// Handler ID used by the select filter.
pub const SELECT_HANDLER: HandlerId = HandlerId::new_const(1);

/// Flow tag of the final count message.
pub const DONE_HANDLER: HandlerId = HandlerId::new_const(60);

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct Params {
    /// Table size in bytes (128 MB in Table 1).
    pub table_bytes: u64,
    /// Record size (128 B, as in HashJoin).
    pub record_bytes: u64,
    /// I/O request size.
    pub io_block: u64,
    /// Predicate: `key < hi` with keys uniform in `[0, 2^32)`.
    pub key_hi: u64,
}

impl Params {
    /// The paper's configuration: 128 MB table, 25 % selectivity.
    pub fn paper() -> Self {
        Params {
            table_bytes: 128 << 20,
            record_bytes: 128,
            io_block: 64 * 1024,
            key_hi: 1 << 30, // 25 % of the 32-bit key space
        }
    }

    /// A scaled-down configuration for tests.
    pub fn small() -> Self {
        Params {
            table_bytes: 2 << 20,
            ..Params::paper()
        }
    }
}

/// Reference result computed in plain Rust (no simulation).
pub fn reference_count(table: &[u8], p: &Params) -> u64 {
    let n = table.len() / p.record_bytes as usize;
    (0..n)
        .filter(|&i| data::record_key(table, p.record_bytes as usize, i) < p.key_hi)
        .count() as u64
}

/// Normal-case host program: scan every record of every block.
struct NormalSelect {
    table: Arc<Vec<u8>>, // asan-lint: allow(snapshot-completeness)
    p: Params,           // asan-lint: allow(snapshot-completeness)
    reader: BlockReader,
    matches: u64,
    buf_base: u64, // asan-lint: allow(snapshot-completeness)
}

impl HostProgram for NormalSelect {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        let Some((off, len)) = self.reader.on_complete(ctx, req) else {
            return;
        };
        // Evaluate the predicate on the real records just DMA'd in.
        let rb = self.p.record_bytes;
        let n = len / rb;
        for i in 0..n {
            let rec = (off + i * rb) as usize;
            ctx.cpu().compute(cost::SELECT_PREDICATE_INSTR);
            ctx.cpu().load(self.buf_base + off + i * rb);
            let key = data::record_key(&self.table, rb as usize, rec / rb as usize);
            if key < self.p.key_hi {
                self.matches += 1;
                ctx.cpu().compute(cost::SELECT_COUNT_INSTR);
            }
        }
        self.reader.refill(ctx);
        if self.reader.done() {
            ctx.finish();
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.u64(self.matches);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.matches = r.u64()?;
        Ok(())
    }
}

/// The switch handler: evaluates the predicate inside the data buffers
/// and forwards only matching records, batched into full packets.
pub struct SelectHandler {
    p: Params,    // asan-lint: allow(snapshot-completeness)
    host: NodeId, // asan-lint: allow(snapshot-completeness)
    /// Handler tag put on outgoing record batches (None for plain data
    /// to a host; a switch handler ID in the two-level pipeline).
    out_handler: Option<HandlerId>, // asan-lint: allow(snapshot-completeness)
    expect_bytes: u64, // asan-lint: allow(snapshot-completeness)
    seen_bytes: u64,
    matches: u64,
    /// Matching-record batch being assembled (mirrors a held buffer).
    batch: Vec<u8>,
    batch_buf: Option<asan_core::BufId>,
    out_addr: u32,
}

impl SelectHandler {
    /// Creates the filter stage, forwarding matches to `host`.
    pub fn new(p: Params, host: NodeId, expect_bytes: u64) -> Self {
        SelectHandler {
            p,
            host,
            out_handler: None,
            expect_bytes,
            seen_bytes: 0,
            matches: 0,
            batch: Vec::new(),
            batch_buf: None,
            out_addr: 0,
        }
    }

    /// Tags outgoing record batches with `h` (for a downstream switch
    /// stage in the two-level pipeline).
    pub fn with_out_handler(mut self, h: HandlerId) -> Self {
        self.out_handler = Some(h);
        self
    }

    /// Matches found (read back after the run).
    pub fn matches(&self) -> u64 {
        self.matches
    }

    fn flush(&mut self, ctx: &mut HandlerCtx<'_>) {
        if let Some(buf) = self.batch_buf.take() {
            if self.batch.is_empty() {
                ctx.free_buffer(buf);
            } else {
                ctx.send_buffer(buf, self.host, self.out_handler, self.out_addr);
                self.out_addr = self.out_addr.wrapping_add(self.batch.len() as u32);
                self.batch.clear();
            }
        }
    }
}

impl Handler for SelectHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let payload = ctx.payload();
        let rb = self.p.record_bytes as usize;
        debug_assert_eq!(payload.len() % rb, 0, "packets are record-aligned");
        for rec in payload.chunks_exact(rb) {
            ctx.compute(cost::SELECT_PREDICATE_INSTR);
            let key = u64::from_le_bytes(rec[..8].try_into().expect("key"));
            if key < self.p.key_hi {
                self.matches += 1;
                if self.batch_buf.is_none() {
                    self.batch_buf = Some(ctx.alloc_buffer());
                }
                let buf = self.batch_buf.expect("just set");
                ctx.buffer_write(buf, self.batch.len(), rec);
                self.batch.extend_from_slice(rec);
                if self.batch.len() + rb > asan_core::BUFFER_BYTES {
                    self.flush(ctx);
                }
            }
        }
        self.seen_bytes += payload.len() as u64;
        if self.seen_bytes >= self.expect_bytes {
            self.flush(ctx);
            // Tell the host the final count.
            ctx.send(
                self.host,
                Some(DONE_HANDLER),
                0,
                &self.matches.to_le_bytes(),
            );
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.u64(self.seen_bytes);
        w.u64(self.matches);
        w.bytes(&self.batch);
        w.opt_u64(self.batch_buf.map(|b| u64::from(b.0)));
        w.u32(self.out_addr);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.seen_bytes = r.u64()?;
        self.matches = r.u64()?;
        self.batch = r.bytes()?;
        self.batch_buf = match r.opt_u64()? {
            Some(v) => {
                Some(asan_core::BufId(u8::try_from(v).map_err(|_| {
                    SnapError::Malformed("buffer id out of range")
                })?))
            }
            None => None,
        };
        self.out_addr = r.u32()?;
        Ok(())
    }
}

/// Active-case host program: issue mapped reads, count arrivals.
struct ActiveSelect {
    p: Params, // asan-lint: allow(snapshot-completeness)
    reader: BlockReader,
    records_in: u64,
    final_count: Option<u64>,
}

impl HostProgram for ActiveSelect {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        self.reader.start(ctx);
    }

    fn on_io_complete(&mut self, ctx: &mut HostCtx<'_>, req: ReqId) {
        self.reader.on_complete(ctx, req);
        self.reader.refill(ctx);
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if msg.handler == Some(DONE_HANDLER) {
            self.final_count = Some(u64::from_le_bytes(msg.data[..8].try_into().expect("count")));
            ctx.finish();
            return;
        }
        // A batch of matching records: the count comes from the
        // message descriptor's length — the host never touches the
        // record bytes ("the host CPU just counts the number of
        // matching records", §5).
        let n = msg.data.len() as u64 / self.p.record_bytes;
        self.records_in += n;
        ctx.cpu().compute(cost::SELECT_COUNT_INSTR);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        self.reader.snapshot(w);
        w.u64(self.records_in);
        w.opt_u64(self.final_count);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.reader.restore(r)?;
        self.records_in = r.u64()?;
        self.final_count = r.opt_u64()?;
        Ok(())
    }
}

/// Runs Select in one configuration, returning metrics and validating
/// the match count against the pure-Rust reference.
///
/// # Panics
///
/// Panics if the simulated result disagrees with the reference.
pub fn run(variant: Variant, p: &Params) -> AppRun {
    run_with_config(variant, p, ClusterConfig::paper_db())
}

/// [`run`] with an explicit cluster configuration (used by the fault
/// injection experiments to attach a [`asan_sim::faults::FaultPlan`]).
pub fn run_with_config(variant: Variant, p: &Params, cfg: ClusterConfig) -> AppRun {
    let table = Arc::new(data::db_table(
        p.table_bytes as usize,
        p.record_bytes as usize,
        "select-table",
    ));
    let want = reference_count(&table, p);
    let build = || {
        let (mut cl, hs, ts, sw) = standard_cluster(1, 1, cfg.clone());
        let file = cl
            .add_file(ts[0], table.as_ref().clone())
            .expect("cluster setup");
        let host = hs[0];

        if variant.is_active() {
            cl.register_handler(
                sw,
                SELECT_HANDLER,
                Box::new(SelectHandler::new(p.clone(), host, p.table_bytes)),
            )
            .expect("cluster setup");
            cl.set_program(
                host,
                Box::new(ActiveSelect {
                    p: p.clone(),
                    reader: BlockReader::new(BlockPlan {
                        file,
                        total: p.table_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::Mapped {
                            node: sw,
                            handler: SELECT_HANDLER,
                            base_addr: 0,
                        },
                    }),
                    records_in: 0,
                    final_count: None,
                }),
            )
            .expect("cluster setup");
        } else {
            cl.set_program(
                host,
                Box::new(NormalSelect {
                    table: table.clone(),
                    p: p.clone(),
                    reader: BlockReader::new(BlockPlan {
                        file,
                        total: p.table_bytes,
                        block: p.io_block,
                        outstanding: variant.outstanding(),
                        dest: Dest::HostBuf { addr: 0x1000_0000 },
                    }),
                    matches: 0,
                    buf_base: 0x1000_0000,
                }),
            )
            .expect("cluster setup");
        }
        (cl, (host, sw))
    };

    let (mut cl, (host, sw), report) = drive(&format!("select-{}", variant.label()), build);
    // Validate the computed answer against the pure-Rust reference.
    let got = if variant.is_active() {
        let program = cl.take_program(host).expect("program installed");
        let prog = program
            .as_any()
            .and_then(|a| a.downcast_ref::<ActiveSelect>())
            .expect("active select program");
        let handler = cl.take_handler(sw, SELECT_HANDLER).expect("handler");
        let h = handler
            .as_any()
            .and_then(|a| a.downcast_ref::<SelectHandler>())
            .expect("select handler");
        assert_eq!(h.matches(), want, "handler count mismatch");
        assert_eq!(prog.records_in, want, "host received wrong record count");
        prog.final_count.expect("done message arrived")
    } else {
        let program = cl.take_program(host).expect("program installed");
        program
            .as_any()
            .and_then(|a| a.downcast_ref::<NormalSelect>())
            .expect("normal select program")
            .matches
    };
    assert_eq!(got, want, "select match count mismatch");
    AppRun::from_report(variant, &cl, &report, report.finish, got)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_selectivity_near_25pct() {
        let p = Params::small();
        let table = data::db_table(p.table_bytes as usize, 128, "select-table");
        let frac = reference_count(&table, &p) as f64 / (table.len() / 128) as f64;
        assert!((frac - 0.25).abs() < 0.02, "selectivity {frac}");
    }

    #[test]
    fn all_variants_agree_on_count() {
        let p = Params::small();
        let runs: Vec<AppRun> = Variant::ALL.iter().map(|&v| run(v, &p)).collect();
        let c0 = runs[0].artifact;
        for r in &runs {
            assert_eq!(r.artifact, c0, "{:?}", r.variant);
        }
    }

    #[test]
    fn active_reduces_host_traffic_to_a_quarter() {
        let p = Params::small();
        let normal = run(Variant::NormalPref, &p);
        let active = run(Variant::ActivePref, &p);
        let ratio = active.host_traffic as f64 / normal.host_traffic as f64;
        assert!((0.18..0.35).contains(&ratio), "traffic ratio {ratio}");
    }

    #[test]
    fn normal_is_slowest() {
        let p = Params::small();
        let n = run(Variant::Normal, &p);
        let np = run(Variant::NormalPref, &p);
        assert!(n.exec >= np.exec, "prefetch should not hurt");
    }
}
