//! Corrected twin: every field is either round-tripped by the
//! snapshot/restore pair (a field may legitimately appear only on the
//! restore side, e.g. a reader rebuilt over a rediscovered plan) or
//! explicitly annotated as static configuration.

pub struct ProgState {
    pub config: Config, // asan-lint: allow(snapshot-completeness)
    pub cursor: u64,
    pub pending: Vec<u64>,
    pub phase: u8,
}

impl Snapshottable for ProgState {
    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.u64(self.cursor);
        w.usize(self.pending.len());
        for p in &self.pending {
            w.u64(*p);
        }
        w.u8(self.phase);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.cursor = r.u64()?;
        let n = r.usize()?;
        self.pending = (0..n).map(|_| r.u64()).collect::<Result<_, _>>()?;
        self.phase = r.u8()?;
        Ok(())
    }
}

pub struct ChainState {
    pub sum: u64,
    pub carry: u64,
}

impl ChainState {
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.sum);
        w.u64(self.carry);
    }
}

/// The static-configuration pattern (`Fabric` in `asan-net` is the
/// canonical case): topology-shaped fields are fixed by the builder
/// that produced the value and never change during a run, so the
/// snapshot intentionally skips them — a restoring process rebuilds
/// the identical shape from the same spec before restoring, and the
/// restore side verifies the counts match. Each skipped field carries
/// the allow annotation *at its declaration*, next to a comment naming
/// the invariant, so the escape hatch is auditable field by field.
pub struct StaticShapeState {
    /// Dense route table: pure function of the topology spec.
    pub next_hop: Vec<(u32, u32)>, // asan-lint: allow(snapshot-completeness)
    /// Credit-drain model flag: fixed at build time.
    pub hop_backpressure: bool, // asan-lint: allow(snapshot-completeness)
    pub occupancy: Vec<u64>,
}

impl Snapshottable for StaticShapeState {
    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.usize(self.occupancy.len());
        for o in &self.occupancy {
            w.u64(*o);
        }
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let n = r.usize()?;
        if n != self.occupancy.len() {
            return Err(SnapError::Malformed("occupancy count mismatch"));
        }
        for o in &mut self.occupancy {
            *o = r.u64()?;
        }
        Ok(())
    }
}
