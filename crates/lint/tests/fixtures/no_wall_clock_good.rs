//! Corrected twin: cost comes from the simulated clock the scheduler
//! advances, never the host's.

pub fn handler_cost_ns(start: asan_sim::SimTime, end: asan_sim::SimTime) -> u64 {
    end.since(start).as_ns()
}
