//! Known-bad: every field is mentioned on both sides, so
//! `snapshot-completeness` is satisfied — but the restore side reads
//! `credits` back as a `u32` where the snapshot side wrote a `u64`.
//! The byte tape is positional; every field after the divergence is
//! garbage, and the checkpoint only fails (at best) at `finish()`.

pub struct LinkState {
    pub seq: u32,
    pub credits: u64,
}

impl LinkState {
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.section("link");
        w.u32(self.seq);
        w.u64(self.credits);
    }

    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        r.section("link")?;
        self.seq = r.u32()?;
        self.credits = u64::from(r.u32()?);
        Ok(())
    }
}
