//! Corrected twin: the decision flows from a seeded SimRng stream, so
//! an identical (seed, plan) pair replays bit-identically.

use asan_sim::rng::SimRng;

pub fn should_drop_packet(rng: &mut SimRng, prob: f64) -> bool {
    rng.chance(prob)
}
