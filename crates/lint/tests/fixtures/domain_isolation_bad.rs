//! Known-bad three ways for the parallel-core audit: an ad-hoc
//! `std::thread` import, a `static mut` counter, and — the subtle
//! one — a `Rc<RefCell<..>>` table reachable from *two* engine
//! structs, which is aliased mutation across the future engine/thread
//! boundary.

use std::thread;

static mut PACKETS_SEEN: u64 = 0;

pub struct SharedTable {
    pub entries: Rc<RefCell<Vec<u64>>>,
}

pub struct IngressEngine {
    pub table: SharedTable,
}

pub struct EgressEngine {
    pub table: SharedTable,
}
