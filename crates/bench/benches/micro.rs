//! Micro-benchmarks of the simulator's hot paths: these bound how fast
//! whole-cluster simulations can run (the 128 MB Select pushes ~17 M
//! events and ~6 M cache accesses through these structures).

use criterion::{criterion_group, criterion_main, Criterion};

use asan_apps::dfa::LiteralDfa;
use asan_apps::md5::md5;
use asan_mem::cache::{AccessKind, Cache, CacheConfig};
use asan_mem::hierarchy::{HierarchyConfig, MemoryHierarchy};
use asan_sim::{EventQueue, SimRng, SimTime};

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");

    g.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_ns(i * 7 % 503), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });

    g.bench_function("l1_cache_hits_4k", |b| {
        let mut cache = Cache::new(CacheConfig::host_l1d());
        b.iter(|| {
            let mut hits = 0u32;
            for i in 0..4096u64 {
                if cache.access((i % 64) * 64, AccessKind::Read).hit {
                    hits += 1;
                }
            }
            hits
        })
    });

    g.bench_function("hierarchy_streaming_loads_4k", |b| {
        let mut m = MemoryHierarchy::new(HierarchyConfig::host());
        let mut t = SimTime::ZERO;
        let mut addr = 0u64;
        b.iter(|| {
            let mut stall = 0u64;
            for _ in 0..4096 {
                let out = m.load(addr, t);
                stall += out.stall.as_ps();
                addr += 64;
                t = t + out.stall + asan_sim::SimDuration::from_ns(1);
            }
            stall
        })
    });

    g.bench_function("rng_throughput_64k", |b| {
        let mut rng = SimRng::from_seed(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..65536 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        })
    });

    g.bench_function("md5_64kb", |b| {
        let data = vec![0xABu8; 64 * 1024];
        b.iter(|| md5(&data))
    });

    g.bench_function("dfa_search_64kb", |b| {
        let dfa = LiteralDfa::new(b"Big Red Bear");
        let mut rng = SimRng::from_seed(3);
        let mut text = vec![0u8; 64 * 1024];
        rng.fill_bytes(&mut text);
        b.iter(|| dfa.count(&text))
    });

    g.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
