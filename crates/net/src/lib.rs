//! System-area network substrate for the Active SAN simulator.
//!
//! Models the switched SAN of §4 of *Active I/O Switches in System Area
//! Networks* (HPCA 2003):
//!
//! * [`bytes`] — cheaply cloneable, sliceable payload buffers
//!   ([`Bytes`]) so packets share file data instead of deep-copying it;
//! * [`packet`] — the InfiniBand-style Raw packet with its 128-bit
//!   header (6-bit handler ID, 32-bit mapped address), 512 B MTU,
//!   packetization and reassembly;
//! * [`link`] — 1 GB/s full-duplex links with credit-based flow control
//!   and cut-through header timing;
//! * [`topo`] — topology construction and the fabric timing model
//!   (virtual cut-through, 100 ns routing latency per switch, output
//!   port contention, per-node traffic accounting);
//! * [`hca`] — host channel adapter send/receive costs (the paper's
//!   fixed message overhead `α`).
//!
//! # Example
//!
//! ```
//! use asan_net::topo::single_switch_cluster;
//! use asan_sim::SimTime;
//!
//! let (mut fabric, hosts, _tcas, _sw) = single_switch_cluster(2, 1);
//! let d = fabric.transmit(528, hosts[0], hosts[1], SimTime::ZERO);
//! assert_eq!(d.hops, 2);
//! ```

pub mod bytes;
pub mod hca;
pub mod link;
pub mod packet;
pub mod topo;

pub use bytes::Bytes;
pub use hca::{Hca, HcaConfig};
pub use link::{Link, LinkConfig, LinkTiming};
pub use packet::{
    crc32, packetize, reassemble, HandlerId, Header, NodeId, Packet, ReassembleError, HEADER_BYTES,
    MTU,
};
pub use topo::{
    single_switch_cluster, Delivery, Fabric, Hop, NodeKind, SwitchSpec, TopoError, TopoMap,
    TopoSpec, TopologyBuilder,
};
