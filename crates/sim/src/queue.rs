//! Deterministic pending-event set.
//!
//! A two-level bucketed calendar queue ordered by `(time, sequence)`.
//! The monotonically increasing sequence number guarantees FIFO ordering
//! among events scheduled for the same instant, which makes whole-system
//! simulations reproducible regardless of queue internals.
//!
//! # Design
//!
//! The queue keeps a *ring* of `RING_BUCKETS` time buckets, each
//! `BUCKET_WIDTH_PS` picoseconds wide, covering a sliding near-future
//! horizon of about 67 µs ahead of the drain cursor. An event whose time
//! falls inside the horizon lands in its bucket; everything farther out
//! goes to a sorted *overflow* map keyed by `(time, seq)`. Within a
//! bucket, entries are kept ascending by `(time, seq)`, so the common
//! case — engines scheduling monotonically increasing times — is an O(1)
//! `push_back`, and a same-instant burst stays FIFO by construction.
//!
//! `pop` scans the ring forward from the cursor to the first non-empty
//! bucket and compares that bucket's head against the overflow's first
//! entry, taking whichever `(time, seq)` is smaller. Comparing both
//! sides on every pop (rather than assuming the ring always wins) keeps
//! the order exact even when an overflow entry predates ring entries
//! inserted after the horizon moved. When the ring drains empty, the
//! cursor re-anchors at the next pending time and the overflow's
//! now-in-horizon prefix migrates into the ring in one `split_off`.
//!
//! Events pushed *earlier* than the cursor (allowed by the API, unused
//! by the simulator's causal engines) are clamped into the cursor's
//! bucket at their sorted position; since the cursor bucket is always
//! scanned first and buckets order entries by exact `(time, seq)`, the
//! global pop order is still exact.

use std::collections::{BTreeMap, VecDeque};

use crate::snap::{SnapError, SnapReader, SnapWriter};
use crate::time::SimTime;

/// Width of one ring bucket in picoseconds (65 536 ps ≈ 65.5 ns — a few
/// switch cycles).
const BUCKET_WIDTH_PS: u64 = 1 << BUCKET_WIDTH_BITS;
const BUCKET_WIDTH_BITS: u32 = 16;
/// Number of buckets in the near-future ring (horizon ≈ 67 µs).
const RING_BUCKETS: u64 = 1024;

/// A time-ordered queue of events of type `E`.
///
/// # Example
///
/// ```
/// use asan_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(10), 'b');
/// q.push(SimTime::from_ns(10), 'c'); // same time: FIFO after 'b'
/// q.push(SimTime::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Ring of near-future buckets; bucket for absolute bucket index
    /// `b` is `ring[b % RING_BUCKETS]`.
    ring: Vec<VecDeque<Entry<E>>>,
    /// Absolute bucket index (`time_ps >> BUCKET_WIDTH_BITS`) the drain
    /// cursor is at. Every live ring entry sits in a bucket whose
    /// absolute index is in `[cursor, cursor + RING_BUCKETS)`.
    /// Rebuilt on restore by re-placing entries, so its exact value is
    /// not part of the snapshot (pop order is cursor-independent).
    cursor: u64, // asan-lint: allow(snapshot-completeness)
    /// Events currently in the ring.
    ring_len: usize, // asan-lint: allow(snapshot-completeness)
    /// Far-future events, sorted by `(time, seq)`.
    overflow: BTreeMap<(SimTime, u64), E>,
    /// Occupancy bitmap over ring slots: bit `s` of word `s / 64` is
    /// set iff `ring[s]` is non-empty. Makes find-next-non-empty a few
    /// `trailing_zeros` instead of a bucket walk. Derived state,
    /// rebuilt on restore.
    occupied: [u64; (RING_BUCKETS / 64) as usize], // asan-lint: allow(snapshot-completeness)
    next_seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            ring: (0..RING_BUCKETS).map(|_| VecDeque::new()).collect(),
            cursor: 0,
            ring_len: 0,
            overflow: BTreeMap::new(),
            occupied: [0; (RING_BUCKETS / 64) as usize],
            next_seq: 0,
        }
    }

    /// The first occupied ring slot at ring distance ≥ `from mod RING`
    /// from `from`, as an *absolute* bucket index ≥ `from`. Must only
    /// be called while the ring holds at least one event.
    fn next_occupied_abs(&self, from: u64) -> u64 {
        debug_assert!(self.ring_len > 0);
        let start = (from % RING_BUCKETS) as usize;
        let words = self.occupied.len();
        // First word: mask off slots before `start`.
        let mut w = start / 64;
        let mut word = self.occupied[w] & (!0u64 << (start % 64));
        let mut dist_base = 0u64; // ring distance of word w's bit 0 from `start`'s word
        loop {
            if word != 0 {
                let slot = w * 64 + word.trailing_zeros() as usize;
                // Ring distance from `start`, wrapping once at most.
                let dist = (slot + RING_BUCKETS as usize - start) as u64 % RING_BUCKETS;
                return from + dist;
            }
            dist_base += 64;
            debug_assert!(dist_base <= RING_BUCKETS + 64, "ring occupancy desynced");
            w = (w + 1) % words;
            word = self.occupied[w];
            if w == start / 64 {
                // Wrapped to the starting word: only slots before
                // `start` remain.
                word &= !(!0u64 << (start % 64));
            }
        }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.place(Entry { time, seq, event });
    }

    fn place(&mut self, e: Entry<E>) {
        let abs = e.time.as_ps() >> BUCKET_WIDTH_BITS;
        if self.ring_len == 0 {
            // Nothing constrains the ring: re-anchor the horizon at the
            // new event (overflow entries are compared at pop time, so
            // an earlier overflow minimum stays correct).
            self.cursor = abs;
        }
        if abs >= self.cursor + RING_BUCKETS {
            self.overflow.insert((e.time, e.seq), e.event);
            return;
        }
        // Clamp past-of-cursor times into the cursor's bucket: it is
        // always the first bucket scanned, and in-bucket order is by
        // exact (time, seq), so ordering is preserved.
        let slot = abs.max(self.cursor);
        let ring_idx = (slot % RING_BUCKETS) as usize;
        self.occupied[ring_idx / 64] |= 1u64 << (ring_idx % 64);
        let bucket = &mut self.ring[ring_idx];
        let key = (e.time, e.seq);
        // Common case: monotonically nondecreasing keys append in O(1).
        match bucket.back() {
            Some(last) if (last.time, last.seq) > key => {
                let at = bucket.partition_point(|x| (x.time, x.seq) < key);
                bucket.insert(at, e);
            }
            _ => bucket.push_back(e),
        }
        self.ring_len += 1;
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.ring_len == 0 && !self.overflow.is_empty() {
            self.refill_from_overflow();
        }
        // First non-empty ring bucket at or after the cursor.
        let ring_head = (self.ring_len > 0).then(|| {
            let b = self.next_occupied_abs(self.cursor);
            let front = self.ring[(b % RING_BUCKETS) as usize]
                .front()
                .expect("occupied slot non-empty");
            (front.time, front.seq, b)
        });
        // The overflow's first entry can predate the ring head when the
        // horizon has moved since it was inserted; compare every pop.
        let overflow_head = self.overflow.first_key_value().map(|(&k, _)| k);
        let ring_wins = match (ring_head, overflow_head) {
            (Some((t, seq, _)), Some(o)) => (t, seq) < o,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        if ring_wins {
            let (_, _, bucket_abs) = ring_head.expect("ring wins");
            self.cursor = bucket_abs;
            let ring_idx = (bucket_abs % RING_BUCKETS) as usize;
            let e = self.ring[ring_idx]
                .pop_front()
                .expect("selected bucket non-empty");
            if self.ring[ring_idx].is_empty() {
                self.occupied[ring_idx / 64] &= !(1u64 << (ring_idx % 64));
            }
            self.ring_len -= 1;
            Some((e.time, e.event))
        } else {
            let ((t, _), event) = self.overflow.pop_first().expect("overflow wins");
            Some((t, event))
        }
    }

    /// Re-anchors the cursor at the overflow's first entry and migrates
    /// the now-in-horizon prefix into the (empty) ring.
    fn refill_from_overflow(&mut self) {
        let (&(first, _), _) = self.overflow.first_key_value().expect("non-empty");
        self.cursor = first.as_ps() >> BUCKET_WIDTH_BITS;
        let horizon_ps = (self.cursor + RING_BUCKETS).saturating_mul(BUCKET_WIDTH_PS);
        let far = self
            .overflow
            .split_off(&(SimTime::from_ps(horizon_ps), u64::MIN));
        let near = std::mem::replace(&mut self.overflow, far);
        for ((time, seq), event) in near {
            // Ascending order: every insert is an O(1) append.
            self.place(Entry { time, seq, event });
        }
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let ring_head = (self.ring_len > 0).then(|| {
            let b = self.next_occupied_abs(self.cursor);
            let front = self.ring[(b % RING_BUCKETS) as usize]
                .front()
                .expect("occupied slot non-empty");
            (front.time, front.seq)
        });
        let overflow_head = self.overflow.first_key_value().map(|(&k, _)| k);
        match (ring_head, overflow_head) {
            (Some(r), Some(o)) => Some(r.min(o).0),
            (Some(r), None) => Some(r.0),
            (None, Some(o)) => Some(o.0),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes every pending entry in exact `(time, seq)` order using
    /// `enc` to encode each event, followed by the sequence cursor.
    ///
    /// The ring geometry (cursor position, bucket occupancy) is *not*
    /// serialized: pop order depends only on `(time, seq)` keys, so
    /// [`EventQueue::restore_with`] rebuilds an equivalent queue by
    /// re-placing the entries with their original sequence numbers.
    pub fn snapshot_with(&self, w: &mut SnapWriter, mut enc: impl FnMut(&mut SnapWriter, &E)) {
        w.usize(self.len());
        let mut ring_entries: Vec<&Entry<E>> = self.ring.iter().flatten().collect();
        ring_entries.sort_by_key(|e| (e.time, e.seq));
        let mut ring_iter = ring_entries.into_iter().peekable();
        let mut over_iter = self.overflow.iter().peekable();
        loop {
            let take_ring = match (ring_iter.peek(), over_iter.peek()) {
                (Some(e), Some((&(t, s), _))) => (e.time, e.seq) < (t, s),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let (time, seq, event) = if take_ring {
                let e = ring_iter.next().expect("ring head present");
                (e.time, e.seq, &e.event)
            } else {
                let (&(t, s), ev) = over_iter.next().expect("overflow head present");
                (t, s, ev)
            };
            w.time(time);
            w.u64(seq);
            enc(w, event);
        }
        w.u64(self.next_seq);
    }

    /// Rebuilds a queue from a snapshot written by
    /// [`EventQueue::snapshot_with`], decoding each event with `dec`.
    /// The restored queue pops the exact same `(time, event)` sequence
    /// the snapshotted queue would have, and new pushes continue the
    /// original sequence-number stream.
    pub fn restore_with(
        r: &mut SnapReader<'_>,
        mut dec: impl FnMut(&mut SnapReader<'_>) -> Result<E, SnapError>,
    ) -> Result<Self, SnapError> {
        let n = r.usize()?;
        let mut q = EventQueue::new();
        let mut last: Option<(SimTime, u64)> = None;
        for _ in 0..n {
            let time = r.time()?;
            let seq = r.u64()?;
            if last.is_some_and(|k| k >= (time, seq)) {
                return Err(SnapError::Malformed("queue entries out of order"));
            }
            last = Some((time, seq));
            let event = dec(r)?;
            // Ascending (time, seq): every place is an append, and the
            // first entry re-anchors the cursor.
            q.place(Entry { time, seq, event });
        }
        q.next_seq = r.u64()?;
        if let Some((_, s)) = last {
            if q.next_seq <= s {
                return Err(SnapError::Malformed("queue seq cursor behind live entry"));
            }
        }
        Ok(q)
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        for b in &mut self.ring {
            b.clear();
        }
        self.ring_len = 0;
        self.occupied = [0; (RING_BUCKETS / 64) as usize];
        self.overflow.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(3), 3u32);
        q.push(SimTime::from_ns(1), 1);
        q.push(SimTime::from_ns(2), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn fifo_within_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_ns(5), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_ns(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(10), "late");
        q.push(SimTime::from_ns(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_ns(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn far_future_spill_round_trips_through_overflow() {
        let mut q = EventQueue::new();
        // Far beyond the ~67 µs horizon: milliseconds out.
        q.push(SimTime::from_ms(5), "far");
        q.push(SimTime::from_ns(1), "near");
        q.push(SimTime::from_ms(5), "far2"); // same instant: FIFO
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(5)));
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert!(q.pop().is_none());
    }

    #[test]
    fn overflow_entry_beats_later_ring_entry() {
        let mut q = EventQueue::new();
        // Anchor the horizon at ~0, spill an entry just past it…
        q.push(SimTime::ZERO, "t0");
        q.push(SimTime::from_us(100), "t100us");
        assert_eq!(q.pop().unwrap().1, "t0");
        // …then re-anchor far ahead so the old overflow entry is now
        // before the ring entry pushed after it.
        q.push(SimTime::from_us(200), "t200us");
        assert_eq!(q.pop().unwrap().1, "t100us");
        assert_eq!(q.pop().unwrap().1, "t200us");
    }

    /// Exact-order reference model: a binary heap over `(time, seq, id)`
    /// with an explicit FIFO sequence — the specification the calendar
    /// queue must match pop for pop.
    struct RefQueue {
        heap: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, u32)>>,
        next_seq: u64,
    }

    impl RefQueue {
        fn new() -> RefQueue {
            RefQueue {
                heap: std::collections::BinaryHeap::new(),
                next_seq: 0,
            }
        }
        fn push(&mut self, t: SimTime, id: u32) {
            self.heap.push(std::cmp::Reverse((t, self.next_seq, id)));
            self.next_seq += 1;
        }
        fn pop(&mut self) -> Option<(SimTime, u32)> {
            self.heap.pop().map(|std::cmp::Reverse((t, _, id))| (t, id))
        }
        fn peek_time(&self) -> Option<SimTime> {
            self.heap.peek().map(|std::cmp::Reverse((t, _, _))| *t)
        }
    }

    /// Fixed-seed xorshift64* — deterministic on every run and machine.
    fn xorshift(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Randomized-but-deterministic equivalence with the heap reference
    /// under an adversarial operation mix: same-instant bursts (FIFO),
    /// far-future spills through the overflow, pushes into the cursor's
    /// past, and interleaved pops that drag the horizon forward.
    #[test]
    fn property_matches_binary_heap_reference() {
        for seed in [1u64, 0x9E37_79B9_7F4A_7C15, 0xDEAD_BEEF_CAFE_F00D] {
            let mut rng = seed;
            let mut q = EventQueue::new();
            let mut model = RefQueue::new();
            let mut id = 0u32;
            let mut now = SimTime::ZERO;
            let mut last_push = SimTime::ZERO;
            for _ in 0..5_000 {
                let r = xorshift(&mut rng);
                if r % 100 < 40 {
                    let got = q.pop();
                    assert_eq!(got, model.pop(), "seed {seed:#x}, pop #{id}");
                    if let Some((t, _)) = got {
                        now = t;
                    }
                } else {
                    let t = match (r >> 8) % 5 {
                        // Same-instant burst: exercises in-bucket FIFO.
                        0 => last_push,
                        // Near future, inside the ring horizon.
                        1 => SimTime::from_ps(now.as_ps() + (r >> 16) % 1_000_000),
                        // Far future: spills into the overflow map.
                        2 => {
                            SimTime::from_ps(now.as_ps() + 100_000_000 + (r >> 16) % 1_000_000_000)
                        }
                        // The cursor's past (allowed by the API).
                        3 => SimTime::from_ps(now.as_ps().saturating_sub((r >> 16) % 1_000_000)),
                        // Right at the horizon boundary.
                        _ => SimTime::from_ps(
                            now.as_ps() + RING_BUCKETS * BUCKET_WIDTH_PS - 2 * BUCKET_WIDTH_PS
                                + (r >> 16) % (4 * BUCKET_WIDTH_PS),
                        ),
                    };
                    q.push(t, id);
                    model.push(t, id);
                    last_push = t;
                    id += 1;
                }
                assert_eq!(q.len(), model.heap.len(), "seed {seed:#x}");
                assert_eq!(q.peek_time(), model.peek_time(), "seed {seed:#x}");
            }
            // Drain: every remaining event must come out in exact order.
            loop {
                let got = q.pop();
                assert_eq!(got, model.pop(), "seed {seed:#x}, drain");
                if got.is_none() {
                    break;
                }
            }
        }
    }

    /// Snapshot → restore must preserve pop order exactly, including
    /// entries split across the ring and the overflow map, and new
    /// pushes after restore must continue the original FIFO stream.
    #[test]
    fn snapshot_restore_preserves_pop_order() {
        let mut rng = 0xA5A5_5A5A_1234_5678u64;
        let mut q = EventQueue::new();
        let mut now = SimTime::ZERO;
        for id in 0..2_000u32 {
            let r = xorshift(&mut rng);
            if r % 100 < 30 {
                if let Some((t, _)) = q.pop() {
                    now = t;
                }
            } else {
                let t = match (r >> 8) % 4 {
                    0 => now,
                    1 => SimTime::from_ps(now.as_ps() + (r >> 16) % 1_000_000),
                    2 => SimTime::from_ps(now.as_ps() + 100_000_000 + (r >> 16) % 1_000_000_000),
                    _ => SimTime::from_ps(now.as_ps().saturating_sub((r >> 16) % 1_000_000)),
                };
                q.push(t, id);
            }
        }
        let mut w = SnapWriter::new();
        q.snapshot_with(&mut w, |w, e| w.u32(*e));
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes).unwrap();
        // A closure (not `SnapReader::u32`) because the decoder must be
        // higher-ranked over the reader's lifetime.
        #[allow(clippy::redundant_closure_for_method_calls)]
        let mut q2: EventQueue<u32> = EventQueue::restore_with(&mut r, |r| r.u32()).unwrap();
        r.finish().unwrap();

        assert_eq!(q.len(), q2.len());
        // Interleave further pushes so new seq numbers are exercised.
        for id in 9_000..9_050u32 {
            let t = SimTime::from_ps(now.as_ps() + (id as u64) * 17);
            q.push(t, id);
            q2.push(t, id);
        }
        loop {
            let a = q.pop();
            let b = q2.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn restore_rejects_corrupt_order() {
        let mut w = SnapWriter::new();
        // Two entries with non-ascending (time, seq).
        w.usize(2);
        w.time(SimTime::from_ns(5));
        w.u64(1);
        w.u32(0);
        w.time(SimTime::from_ns(5));
        w.u64(1);
        w.u32(1);
        w.u64(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes).unwrap();
        #[allow(clippy::redundant_closure_for_method_calls)]
        let got: Result<EventQueue<u32>, _> = EventQueue::restore_with(&mut r, |r| r.u32());
        assert!(matches!(got, Err(SnapError::Malformed(_))));
    }

    #[test]
    fn push_earlier_than_cursor_still_pops_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(50), "anchor");
        assert_eq!(q.pop().unwrap().1, "anchor");
        // The cursor now sits at 50 µs; a push in its past must still
        // pop before anything later.
        q.push(SimTime::from_us(60), "later");
        q.push(SimTime::from_ns(1), "past");
        assert_eq!(q.pop().unwrap().1, "past");
        assert_eq!(q.pop().unwrap().1, "later");
    }
}
