//! Quickstart: build a one-host cluster with an active switch, install
//! a tiny filtering handler, stream a file through it, and print the
//! paper's three metrics.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use asan_core::cluster::{Cluster, ClusterConfig, Dest, HostCtx, HostMsg, HostProgram, ReqId};
use asan_core::handler::{Handler, HandlerCtx};
use asan_net::topo::{SwitchSpec, TopologyBuilder};
use asan_net::{HandlerId, LinkConfig, NodeId};

/// A handler that forwards only bytes greater than a threshold — a
/// minimal "selection" offloaded into the network.
struct ThresholdFilter {
    threshold: u8,
    host: NodeId,
    kept: u64,
    seen: u64,
    expect: u64,
}

impl Handler for ThresholdFilter {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        let payload = ctx.payload();
        let survivors: Vec<u8> = payload
            .iter()
            .copied()
            .filter(|&b| b > self.threshold)
            .collect();
        ctx.charge_stream(payload.len(), 2);
        self.kept += survivors.len() as u64;
        self.seen += payload.len() as u64;
        if !survivors.is_empty() {
            ctx.send(self.host, None, 0, &survivors);
        }
        if self.seen >= self.expect {
            ctx.send(
                self.host,
                Some(HandlerId::new(60)),
                0,
                &self.kept.to_le_bytes(),
            );
        }
    }
}

/// The host side: issue the mapped read, tally what comes back.
struct Driver {
    file: asan_core::cluster::FileId,
    sw: NodeId,
    bytes_in: u64,
}

impl HostProgram for Driver {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        let len = ctx.file_len(self.file);
        ctx.read_file(
            self.file,
            0,
            len,
            Dest::Mapped {
                node: self.sw,
                handler: HandlerId::new(1),
                base_addr: 0,
            },
        );
    }

    fn on_io_complete(&mut self, _ctx: &mut HostCtx<'_>, _req: ReqId) {}

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if msg.handler == Some(HandlerId::new(60)) {
            let kept = u64::from_le_bytes(msg.data[..8].try_into().unwrap());
            println!("handler reported {kept} surviving bytes");
            ctx.finish();
        } else {
            self.bytes_in += msg.data.len() as u64;
        }
    }
}

fn main() {
    // Topology: one switch, one host, one storage TCA.
    let mut topo = TopologyBuilder::new();
    let sw = topo.add_switch(SwitchSpec::paper());
    let host = topo.add_host();
    let tca = topo.add_tca();
    topo.connect(host, sw, LinkConfig::paper());
    topo.connect(tca, sw, LinkConfig::paper());

    let mut cluster = Cluster::new(topo, ClusterConfig::paper());

    // A 1 MB file of pseudo-random bytes; ~25% exceed the threshold.
    let mut rng = asan_sim::SimRng::from_label("quickstart");
    let data: Vec<u8> = (0..1 << 20).map(|_| rng.next_u32() as u8).collect();
    let expected: u64 = data.iter().filter(|&&b| b > 191).count() as u64;
    let file = cluster.add_file(tca, data).expect("cluster setup");

    cluster
        .register_handler(
            sw,
            HandlerId::new(1),
            Box::new(ThresholdFilter {
                threshold: 191,
                host,
                kept: 0,
                seen: 0,
                expect: 1 << 20,
            }),
        )
        .expect("cluster setup");
    cluster
        .set_program(
            host,
            Box::new(Driver {
                file,
                sw,
                bytes_in: 0,
            }),
        )
        .expect("cluster setup");

    let report = cluster.run().expect("simulation completes");
    let stats = cluster.stats();
    let h = report.host(host).expect("node report");
    println!("expected survivors   : {expected}");
    println!("execution time       : {}", report.finish);
    println!(
        "host utilization     : {:.1}%",
        h.breakdown.utilization() * 100.0
    );
    println!(
        "host I/O traffic     : {} B in (of 1 MiB read from disk)",
        h.payload.bytes_in
    );
    println!(
        "switch handler ran   : {} invocations",
        report.switch(sw).expect("node report").invocations
    );
    println!("\ncomponent counters:\n{stats}");
}
