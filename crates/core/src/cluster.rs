//! The whole-system simulator: hosts, HCAs, active switches, TCAs,
//! disks, and the event loop that ties them together.
//!
//! This is the reproduction of the paper's execution environment (§4):
//! host programs run as real Rust code charging time against detailed
//! CPU/cache/memory models; I/O requests pay the measured OS costs and
//! stream off the two-disk SCSI array as per-MTU packet schedules; the
//! fabric moves packets with cut-through timing; and active messages
//! invoke switch handlers that process the actual bytes.
//!
//! [`Cluster`] itself is a thin composer: the mechanics live in four
//! subsystem engines ([`crate::engines`]) that communicate only through
//! the typed event bus ([`crate::events`]). The cluster builds the
//! engines, routes each popped [`Event`] to its owner, and assembles
//! the [`RunReport`] and [`ClusterStats`] afterwards.
//!
//! The event loop is deterministic: ties in simulated time break by
//! insertion order ([`asan_sim::EventQueue`]), and every engine iterates
//! its nodes in ascending node order.

use std::collections::{BTreeMap, BTreeSet};

use asan_cpu::CpuConfig;
use asan_io::{OsCost, StorageConfig};
use asan_net::topo::{NodeKind, TopoMap, TopoSpec, TopologyBuilder};
use asan_net::{Fabric, HandlerId, HcaConfig, NodeId};
use asan_sim::faults::{FaultInjector, FaultPlan, FaultStats};
use asan_sim::perfetto::PerfettoSink;
use asan_sim::sched::Scheduler;
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::{TimeBreakdown, Traffic};
use asan_sim::trace::{JsonlSink, NullSink, TraceSink};
use asan_sim::{SimDuration, SimTime};

use crate::active::{ActiveSwitch, ActiveSwitchConfig};
use crate::engines::{route, DispatchEngine, Engine, FabricEngine, HostEngine, StorageEngine};
use crate::error::SimError;
use crate::events::{Event, EventBus, FileStore, IoState};
use crate::handler::Handler;
use crate::metrics::{MetricsReport, PhaseBreakdown, Probe};
use crate::placement::{AggNode, AggregationTree};
use crate::stats::{ClusterStats, FabricSnapshot};

pub use crate::engines::{HostCtx, HostProgram};
pub use crate::events::{Dest, FileId, FileMeta, HostMsg, ReqId};

/// Configuration of a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Host CPU/cache configuration.
    pub host_cpu: CpuConfig,
    /// HCA cost parameters.
    pub hca: HcaConfig,
    /// OS I/O overhead constants.
    pub os: OsCost,
    /// Storage array per TCA.
    pub storage: StorageConfig,
    /// Active-switch configuration (applied to every switch node).
    pub active: ActiveSwitchConfig,
    /// Event-count safety limit (deadlock/livelock guard).
    pub max_events: u64,
    /// Deterministic fault plan, if any. `None` (the default) runs the
    /// simulator exactly as before faults existed.
    pub faults: Option<FaultPlan>,
    /// Width of one flight-recorder time-series window (see
    /// [`asan_sim::series::TimeSeries`]). The recorder buckets link
    /// utilization, credit stalls, queue depth, and handler occupancy
    /// into fixed windows of this width; it is observation-only and
    /// never changes simulated behaviour.
    pub timeline_window: SimDuration,
}

impl ClusterConfig {
    /// The paper's configuration.
    pub fn paper() -> Self {
        ClusterConfig {
            host_cpu: CpuConfig::host(),
            hca: HcaConfig::paper(),
            os: OsCost::paper(),
            storage: StorageConfig::paper(),
            active: ActiveSwitchConfig::paper(),
            max_events: 80_000_000,
            faults: None,
            timeline_window: SimDuration::from_us(10),
        }
    }

    /// The paper's database configuration (scaled host caches, §4).
    pub fn paper_db() -> Self {
        ClusterConfig {
            host_cpu: CpuConfig::host_db(),
            ..ClusterConfig::paper()
        }
    }
}

/// Per-host results.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// The host's node ID.
    pub node: NodeId,
    /// Busy/stall/idle breakdown padded to the run's finish time.
    pub breakdown: TimeBreakdown,
    /// Payload bytes in/out of this host.
    pub payload: Traffic,
    /// When this host's program finished.
    pub finished_at: SimTime,
    /// When the co-scheduled background job finished (`None` if it was
    /// still unfinished when the run ended, or none was scheduled).
    pub background_done: Option<SimTime>,
    /// Background CPU time left unconsumed at the end of the run.
    pub background_left: SimDuration,
}

/// Per-switch results.
#[derive(Debug, Clone)]
pub struct SwitchReport {
    /// The switch's node ID.
    pub node: NodeId,
    /// Per-CPU breakdowns padded to the run's finish time.
    pub cpu_breakdowns: Vec<TimeBreakdown>,
    /// Handler invocations.
    pub invocations: u64,
    /// Active payload bytes consumed by handlers.
    pub bytes_in: u64,
    /// Payload bytes emitted by handlers.
    pub bytes_out: u64,
}

/// Results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// When the last host program finished.
    pub finish: SimTime,
    /// When the last event (including trailing archive writes) drained.
    pub drain: SimTime,
    /// Per-host results.
    pub hosts: Vec<HostReport>,
    /// Per-switch results.
    pub switches: Vec<SwitchReport>,
    /// Bytes carried by the fabric, summed over every link hop.
    pub link_bytes: u64,
    /// Events processed (diagnostic).
    pub events: u64,
    /// High-water mark of the scheduler's pending-event queue
    /// (diagnostic; a proxy for the sim's working-set size).
    pub peak_queue: u64,
}

impl RunReport {
    /// The report of host `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAHost`] if `node` is not a host in this
    /// run.
    pub fn host(&self, node: NodeId) -> Result<&HostReport, SimError> {
        self.hosts
            .iter()
            .find(|h| h.node == node)
            .ok_or(SimError::NotAHost(node))
    }

    /// The report of switch `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASwitch`] if `node` is not a switch in
    /// this run.
    pub fn switch(&self, node: NodeId) -> Result<&SwitchReport, SimError> {
        self.switches
            .iter()
            .find(|s| s.node == node)
            .ok_or(SimError::NotASwitch(node))
    }

    /// Mean host utilization (the paper's `(1 − idle)/exec`).
    pub fn mean_host_utilization(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts
            .iter()
            .map(|h| h.breakdown.utilization())
            .sum::<f64>()
            / self.hosts.len() as f64
    }

    /// Total payload traffic in/out across all hosts (the paper's
    /// "host I/O traffic" metric).
    pub fn total_host_payload(&self) -> u64 {
        self.hosts.iter().map(|h| h.payload.total()).sum()
    }
}

/// The assembled cluster simulation: four subsystem engines composed
/// over one deterministic scheduler.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    fabric: Fabric,
    sched: Scheduler<Event>,
    host: HostEngine,
    dispatch: DispatchEngine,
    storage: StorageEngine,
    fabric_engine: FabricEngine, // asan-lint: allow(snapshot-completeness)
    files: FileStore,            // asan-lint: allow(snapshot-completeness)
    reqs: BTreeMap<ReqId, IoState>,
    /// Armed fault injector (None ⇒ the pre-fault simulator, bit for
    /// bit).
    injector: Option<FaultInjector>,
    /// TCA nodes with an active engine, for delivery routing.
    active_tca_nodes: BTreeSet<NodeId>, // asan-lint: allow(snapshot-completeness)
    /// The observability probe: always-on latency histograms plus the
    /// optional trace sink spans are delivered to.
    probe: Probe,
    /// Whether the one-time run arming (fault plan, `Start` events) has
    /// happened; a restored mid-run cluster must not re-arm.
    armed: bool,
    /// Running maximum of popped event times (the drain clock).
    drain: SimTime,
}

impl Cluster {
    /// Builds a cluster over `topo` with the given configuration.
    /// Every `Host` node gets a CPU + HCA; every `Switch` node gets an
    /// active switch; every `Tca` node gets a storage array.
    pub fn new(topo: TopologyBuilder, cfg: ClusterConfig) -> Self {
        let fabric = topo.build();
        let mut host = HostEngine::default();
        let mut dispatch = DispatchEngine::default();
        let mut storage = StorageEngine::default();
        for i in 0..fabric.num_nodes() {
            let id = NodeId(i as u16);
            match fabric.kind(id) {
                NodeKind::Host => host.add_host(id, &cfg),
                NodeKind::Switch => dispatch.add_switch(id, cfg.active.clone()),
                NodeKind::Tca => storage.add_tca(id, &cfg),
            }
        }
        let injector = cfg.faults.clone().map(FaultInjector::new);
        let mut probe = Probe::default();
        probe.set_timeline_window(cfg.timeline_window);
        Cluster {
            cfg,
            fabric,
            sched: Scheduler::new(),
            host,
            dispatch,
            storage,
            fabric_engine: FabricEngine,
            files: FileStore::default(),
            reqs: BTreeMap::new(),
            injector,
            active_tca_nodes: BTreeSet::new(),
            probe,
            armed: false,
            drain: SimTime::ZERO,
        }
    }

    /// Builds a cluster from a declarative [`TopoSpec`], returning the
    /// generated [`TopoMap`] so callers can place programs and handlers
    /// on the generated shape (see [`crate::placement`]).
    ///
    /// # Panics
    ///
    /// Panics on any [`asan_net::TopoError`] in the spec.
    pub fn from_spec(spec: &TopoSpec, cfg: ClusterConfig) -> (Cluster, TopoMap) {
        let (topo, map) = spec.builder();
        (Cluster::new(topo, cfg), map)
    }

    /// Installs a trace sink: every span the engines emit from now on
    /// (packet, handler, disk, buffer) is delivered to it. Without a
    /// sink the probe only maintains its histograms — no formatting or
    /// I/O happens. Tracing never changes simulated behaviour: digests
    /// are bit-identical with any sink installed.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.probe.set_sink(sink);
    }

    /// The installed trace sink, if any (e.g. to downcast a
    /// [`asan_sim::trace::RingSink`] and read captured spans back).
    pub fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.probe.sink()
    }

    /// Stores `data` as a file on `tca`'s array, returning its ID.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotATca`] if `tca` is not a TCA node.
    pub fn add_file(&mut self, tca: NodeId, data: Vec<u8>) -> Result<FileId, SimError> {
        let stripe = self.cfg.storage.stripe_bytes;
        let disk_offset = self.storage.alloc(tca, data.len() as u64, stripe)?;
        Ok(self.files.push(
            FileMeta {
                tca,
                len: data.len() as u64,
                disk_offset,
            },
            data,
        ))
    }

    /// Co-schedules `cpu_time` of background computation on host
    /// `node`: it consumes time the foreground program would otherwise
    /// spend idle (an OS timeslicing other processes onto the freed
    /// CPU). The run report shows when it completed — the quantitative
    /// form of the paper's claim that lower host utilization "allows
    /// other tasks to be performed concurrently".
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAHost`] if `node` is not a host.
    pub fn set_background_job(
        &mut self,
        node: NodeId,
        cpu_time: SimDuration,
    ) -> Result<(), SimError> {
        self.host.set_background_job(node, cpu_time)
    }

    /// Installs `program` on host `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotAHost`] if `node` is not a host, and
    /// [`SimError::ProgramAlreadyInstalled`] if it already has a
    /// program.
    pub fn set_program(
        &mut self,
        node: NodeId,
        program: Box<dyn HostProgram>,
    ) -> Result<(), SimError> {
        self.host.set_program(node, program)
    }

    /// Registers `handler` under `id` on switch `node`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASwitch`] if `node` is not a switch.
    pub fn register_handler(
        &mut self,
        node: NodeId,
        id: HandlerId,
        handler: Box<dyn Handler>,
    ) -> Result<(), SimError> {
        self.dispatch.register(node, id, handler)
    }

    /// Places one handler per switch of an [`AggregationTree`] (see
    /// [`crate::placement::aggregation_tree`]): `make` is called once
    /// per tree switch, ascending node id, with that switch's role.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotASwitch`] if a tree node is not a switch
    /// of this cluster.
    pub fn place_handlers(
        &mut self,
        tree: &AggregationTree,
        id: HandlerId,
        mut make: impl FnMut(NodeId, &AggNode) -> Box<dyn Handler>,
    ) -> Result<(), SimError> {
        self.dispatch.place(tree, id, &mut make)
    }

    /// Removes a handler after a run so the caller can read back state
    /// accumulated inside it. Searches the original engine first, then
    /// any host-side fallback engine a trap migrated it to.
    pub fn take_handler(&mut self, node: NodeId, id: HandlerId) -> Option<Box<dyn Handler>> {
        self.dispatch.take_handler(node, id)
    }

    /// Turns the TCA at `node` into an *active disk*: an embedded
    /// processor (same model as a switch CPU) that can run handlers on
    /// data as it streams off the array — §6's two-level active I/O.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotATca`] if `node` is not a TCA.
    pub fn enable_active_tca(
        &mut self,
        node: NodeId,
        cfg: ActiveSwitchConfig,
    ) -> Result<(), SimError> {
        if !self.storage.contains(node) {
            return Err(SimError::NotATca(node));
        }
        self.dispatch.enable_active_tca(node, cfg);
        self.active_tca_nodes.insert(node);
        Ok(())
    }

    /// Registers `handler` on an active TCA previously enabled with
    /// [`enable_active_tca`](Cluster::enable_active_tca).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TcaNotActive`] if the TCA is not active.
    pub fn register_tca_handler(
        &mut self,
        node: NodeId,
        id: HandlerId,
        handler: Box<dyn Handler>,
    ) -> Result<(), SimError> {
        self.dispatch.register_tca_handler(node, id, handler)
    }

    /// Removes a host's program after a run so the caller can read back
    /// state accumulated inside it.
    pub fn take_program(&mut self, node: NodeId) -> Option<Box<dyn HostProgram>> {
        self.host.take_program(node)
    }

    /// The fabric (for traffic inspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Snapshots every component's low-level counters (cache misses,
    /// ATB traffic, disk seeks, credit stalls, …) for diagnosis.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            hosts: self.host.snapshots(),
            switches: self.dispatch.snapshots(),
            storage: self.storage.snapshots(),
            fabric: FabricSnapshot {
                link_bytes: self.fabric.total_link_bytes(),
                credit_stalls: self.fabric.total_credit_stalls(),
            },
            faults: self.fault_stats(),
            events: self.sched.processed(),
        }
    }

    /// Assembles the observability report for a finished run: the
    /// probe's latency histograms, the fabric's credit-stall
    /// distribution, and the per-phase time breakdown derived from
    /// `report`. Phase buckets measure *occupancy* and overlap in time
    /// (a packet crosses the fabric while a disk seeks), so their
    /// shares can sum past 100% — like the paper's stacked
    /// per-component breakdown bars.
    pub fn metrics(&self, report: &RunReport) -> MetricsReport {
        let mut m = self.probe.snapshot();
        m.credit_stall = self.fabric.credit_stall_histogram();
        let host_ps: u64 = report
            .hosts
            .iter()
            .map(|h| (h.breakdown.busy + h.breakdown.stall).as_ps())
            .sum();
        m.phases = PhaseBreakdown {
            host_ps,
            fabric_ps: m.packet_e2e.sum(),
            handler_ps: m.handler_occupancy.sum(),
            storage_ps: m.disk_service.sum(),
            total_ps: report.drain.as_ps(),
        };
        m
    }

    /// The fault counters accumulated so far (all zero when no plan is
    /// armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.as_ref().map(|i| i.stats).unwrap_or_default()
    }

    /// The active switch at `node` (for inspection).
    pub fn switch(&self, node: NodeId) -> Option<&ActiveSwitch> {
        self.dispatch.switch(node)
    }

    /// Runs the simulation to completion and reports.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the event-count
    /// guard trips (deadlock/livelock guard), and
    /// [`SimError::RetriesExhausted`] if a request's retry budget runs
    /// out under fault injection.
    pub fn run(&mut self) -> Result<RunReport, SimError> {
        match self.run_events(u64::MAX)? {
            Some(report) => Ok(report),
            None => unreachable!("an unbounded run always drains"),
        }
    }

    /// Runs at most `budget` events. Returns `Ok(None)` when the budget
    /// ran out with events still pending — the cluster is paused at a
    /// consistent point and can be snapshotted with
    /// [`Cluster::snapshot`] or continued with another call — and
    /// `Ok(Some(report))` when the event queue drained and the run
    /// completed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] if the event-count
    /// guard trips (deadlock/livelock guard), and
    /// [`SimError::RetriesExhausted`] if a request's retry budget runs
    /// out under fault injection.
    pub fn run_events(&mut self, budget: u64) -> Result<Option<RunReport>, SimError> {
        // Environment shim for the `ASAN_TRACE` switch: when no sink
        // was injected explicitly, a non-empty `ASAN_TRACE` selects
        // one. `null` installs the drop-everything [`NullSink`] (for
        // digest-neutrality checks); a path ending in `.json` installs
        // the Perfetto exporter (truncating — one trace per file); any
        // other path installs the JSONL file sink (appending, so
        // multi-run sessions accumulate). Resolved once per call, not
        // per event — and outside the arming gate, so a restored
        // process regains its sink.
        if !self.probe.has_sink() {
            if let Some(path) = std::env::var_os("ASAN_TRACE") {
                if path == "null" {
                    self.probe.set_sink(Box::new(NullSink));
                } else if path.to_string_lossy().ends_with(".json") {
                    self.probe.set_sink(Box::new(PerfettoSink::create(&path)));
                } else if !path.is_empty() {
                    if let Ok(sink) = JsonlSink::append(&path) {
                        self.probe.set_sink(Box::new(sink));
                    }
                }
            }
        }
        self.arm();
        let mut left = budget;
        while left > 0 {
            let Some((t, ev)) = self.sched.pop() else {
                break;
            };
            if self.sched.processed() > self.cfg.max_events {
                return Err(SimError::EventLimitExceeded {
                    at: t,
                    limit: self.cfg.max_events,
                });
            }
            self.drain = self.drain.max(t);
            // Timeline gauge: pending-event count at each popped time —
            // a per-window proxy for the sim's working-set size.
            self.probe.sample_queue_depth(t, self.sched.len() as u64);
            self.handle(t, ev)?;
            left -= 1;
        }
        if !self.sched.is_empty() {
            return Ok(None); // paused mid-run
        }
        // Flush trailing archive writes.
        self.drain = self.storage.flush(self.drain, &mut self.probe);
        FabricEngine::outage_accounting(&mut self.injector, &self.fabric);
        self.probe.flush();

        let drain = self.drain;
        let finish = self.host.finish_time();
        let finish = if finish == SimTime::ZERO {
            drain
        } else {
            finish
        };
        Ok(Some(RunReport {
            finish,
            drain: drain.max(finish),
            hosts: self.host.reports(finish),
            switches: self.dispatch.reports(finish),
            link_bytes: self.fabric.total_link_bytes(),
            events: self.sched.processed(),
            peak_queue: self.sched.peak_len() as u64,
        }))
    }

    /// One-time run arming: run-scoped faults, the fallback host, and
    /// the `Start` events. Gated so a restored mid-run cluster (which
    /// was armed before its snapshot) does not re-arm.
    fn arm(&mut self) {
        if self.armed {
            return;
        }
        self.armed = true;
        // Arm the run-scoped faults of the plan, if any. `injector` and
        // `fabric` are disjoint fields, so the plan can be borrowed
        // instead of cloned.
        if let Some(inj) = &mut self.injector {
            FabricEngine::arm(inj.plan(), &mut self.fabric);
            if let Some(seize) = inj.plan().buffer_seize {
                self.dispatch.arm_buffer_seize(seize, inj);
            }
            self.dispatch.set_fallback_host(self.host.first_host());
        }
        for h in self.host.nodes_with_programs() {
            self.sched.push(SimTime::ZERO, Event::Start(h));
        }
    }

    /// Serializes the cluster's complete dynamic state — the pending
    /// event queue (in exact `(time, seq)` order), every engine's
    /// internal state, link/credit state, in-flight requests, fault
    /// injector cursors, and metric histograms — into the versioned
    /// snapshot encoding.
    ///
    /// Static inputs (topology, configuration, file contents, installed
    /// programs and handlers) are *not* captured: a restoring process
    /// rebuilds the cluster identically first, then calls
    /// [`Cluster::restore`], which overwrites the dynamic state.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.section("cluster");
        w.bool(self.armed);
        w.time(self.drain);
        self.sched.snapshot_with(&mut w, |w, e| e.snapshot(w));
        self.fabric.snapshot(&mut w);
        self.host.snapshot(&mut w);
        self.dispatch.snapshot(&mut w);
        self.storage.snapshot(&mut w);
        w.usize(self.reqs.len());
        for (req, st) in &self.reqs {
            w.u64(req.0);
            st.snapshot(&mut w);
        }
        match &self.injector {
            Some(inj) => {
                w.bool(true);
                inj.snapshot(&mut w);
            }
            None => w.bool(false),
        }
        self.probe.snapshot_state(&mut w);
        w.into_bytes()
    }

    /// Overwrites this cluster's dynamic state from a snapshot taken of
    /// an identically built cluster (same topology, configuration,
    /// files, programs, handlers, and active-TCA set). Continuing the
    /// run afterwards produces bit-identical results to the run the
    /// snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] when the bytes are malformed, from a
    /// different snapshot version, or describe a cluster of a different
    /// shape.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = SnapReader::new(bytes)?;
        r.section("cluster")?;
        self.armed = r.bool()?;
        self.drain = r.time()?;
        self.sched = Scheduler::restore_with(&mut r, Event::restore)?;
        self.fabric.restore(&mut r)?;
        self.host.restore(&mut r)?;
        self.dispatch.restore(&mut r, &self.cfg)?;
        self.storage.restore(&mut r)?;
        self.reqs.clear();
        let nreqs = r.usize()?;
        for _ in 0..nreqs {
            let req = ReqId(r.u64()?);
            self.reqs.insert(req, IoState::restore(&mut r)?);
        }
        let has_injector = r.bool()?;
        match (has_injector, self.injector.as_mut()) {
            (true, Some(inj)) => inj.restore(&mut r)?,
            (false, None) => {}
            _ => return Err(SnapError::Malformed("fault plan presence mismatch")),
        }
        self.probe.restore_state(&mut r)?;
        r.finish()
    }

    /// Routes one event to the engine that owns it, lending the shared
    /// services out as an [`EventBus`] for the duration of the event.
    fn handle(&mut self, t: SimTime, ev: Event) -> Result<(), SimError> {
        let mut bus = EventBus {
            sched: &mut self.sched,
            fabric: &mut self.fabric,
            injector: &mut self.injector,
            reqs: &mut self.reqs,
            files: &mut self.files,
            cfg: &self.cfg,
            active_tca_nodes: &self.active_tca_nodes,
            probe: &mut self.probe,
        };
        use crate::engines::Subsystem;
        match route(&ev) {
            Subsystem::Host => self.host.on_event(t, ev, &mut bus),
            Subsystem::Fabric => self.fabric_engine.on_event(t, ev, &mut bus),
            Subsystem::Dispatch => self.dispatch.on_event(t, ev, &mut bus),
            Subsystem::Storage => self.storage.on_event(t, ev, &mut bus),
        }
    }
}
