//! Benchmark harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! The `repro` binary drives full-size runs and prints the same rows
//! and series the paper reports; the Criterion benches under
//! `benches/` time the simulator itself on scaled-down configurations.
//!
//! Figures come in pairs per application: an *overall* chart
//! (execution time normalized to `normal`, host utilization, host I/O
//! traffic normalized to `normal`) and an execution-time *breakdown*
//! (CPU busy / cache stall / idle for the host CPU, plus the switch CPU
//! in the active cases).

pub mod json;
pub mod perf;
pub mod pool;
pub mod scale;
pub mod sweep;

use asan_apps::runner::AppRun;
use asan_apps::Variant;
use asan_core::metrics::{MetricsReport, PhaseBreakdown};
use asan_sim::SimDuration;

/// Renders the overall figure (e.g. Figure 3: exec time, host
/// utilization, host I/O traffic; first row is the normalization base).
pub fn overall_table(title: &str, runs: &[AppRun]) -> String {
    let base = runs
        .iter()
        .find(|r| r.variant == Variant::Normal)
        .expect("normal run present");
    let base_exec = base.exec.as_ps().max(1) as f64;
    let base_traffic = base.host_traffic.max(1) as f64;
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<14} {:>12} {:>10} {:>10} {:>12} {:>10}\n",
        "config", "exec", "norm.time", "speedup", "host util", "traffic"
    ));
    for r in runs {
        let norm = r.exec.as_ps() as f64 / base_exec;
        out.push_str(&format!(
            "{:<14} {:>12} {:>10.3} {:>10.2} {:>11.1}% {:>10.3}\n",
            r.variant.label(),
            format!("{}", r.exec),
            norm,
            1.0 / norm,
            r.host_utilization * 100.0,
            r.host_traffic as f64 / base_traffic,
        ));
    }
    out
}

/// Renders the breakdown figure (e.g. Figure 4: busy / cache-stall /
/// idle shares for host and switch CPUs).
pub fn breakdown_table(title: &str, runs: &[AppRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>10} {:>12}\n",
        "cpu", "busy%", "stall%", "idle%", "total"
    ));
    for r in runs {
        let b = &r.host_breakdown;
        let t = b.total().as_ps().max(1) as f64;
        out.push_str(&format!(
            "{:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>12}\n",
            format!("{}-HP", r.variant.short()),
            b.busy.as_ps() as f64 / t * 100.0,
            b.stall.as_ps() as f64 / t * 100.0,
            b.idle.as_ps() as f64 / t * 100.0,
            format!("{}", b.total()),
        ));
        for (i, sb) in r.switch_breakdowns.iter().enumerate() {
            let st = sb.total().as_ps().max(1) as f64;
            let tag = if r.switch_breakdowns.len() > 1 {
                format!("{}-SP{}", r.variant.short(), i)
            } else {
                format!("{}-SP", r.variant.short())
            };
            out.push_str(&format!(
                "{:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>12}\n",
                tag,
                sb.busy.as_ps() as f64 / st * 100.0,
                sb.stall.as_ps() as f64 / st * 100.0,
                sb.idle.as_ps() as f64 / st * 100.0,
                format!("{}", sb.total()),
            ));
        }
    }
    out
}

/// Renders an overall figure as CSV (`experiment,config,exec_ps,
/// normalized_time,host_utilization,traffic_ratio`), for plotting.
pub fn overall_csv(experiment: &str, runs: &[AppRun]) -> String {
    let base = runs
        .iter()
        .find(|r| r.variant == Variant::Normal)
        .expect("normal run present");
    let base_exec = base.exec.as_ps().max(1) as f64;
    let base_traffic = base.host_traffic.max(1) as f64;
    let mut out = String::from(
        "experiment,config,exec_ps,normalized_time,host_utilization,traffic_ratio
",
    );
    for r in runs {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6}
",
            experiment,
            r.variant.label(),
            r.exec.as_ps(),
            r.exec.as_ps() as f64 / base_exec,
            r.host_utilization,
            r.host_traffic as f64 / base_traffic,
        ));
    }
    out
}

/// One windowed time-series track as carried in the `timeline` section
/// of the metrics JSON document (see [`asan_sim::series::Timeline`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineTrack {
    /// Track kind label ("link_util", "credit_stall", "queue_depth",
    /// "handler_occ").
    pub kind: String,
    /// Resource key: link index, node id, or 0 for global gauges.
    pub key: u64,
    /// Dense per-window values (picoseconds for occupancy kinds, a
    /// count for gauges), reconstructed from the sparse JSON encoding.
    pub samples: Vec<u64>,
}

/// Latency percentile summary of one span kind, as carried in the
/// metrics JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencySummary {
    /// Span name ("packet", "handler", "disk", "buffer_wait",
    /// "credit_stall").
    pub span: String,
    /// Number of recorded spans.
    pub count: u64,
    /// 50th-percentile latency (simulated picoseconds).
    pub p50_ps: u64,
    /// 90th-percentile latency.
    pub p90_ps: u64,
    /// 99th-percentile latency.
    pub p99_ps: u64,
}

/// One benchmark × configuration row of a metrics document: the phase
/// breakdown plus the latency percentile summaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchMetrics {
    /// Benchmark name ("mpeg", "grep", …).
    pub name: String,
    /// Configuration label ("normal", "active").
    pub config: String,
    /// Where the run's simulated cycles went.
    pub phases: PhaseBreakdown,
    /// Percentile summaries, in the report's canonical span order.
    pub latency: Vec<LatencySummary>,
    /// Width of one timeline window in picoseconds (0 when the run
    /// produced no timeline).
    pub timeline_window_ps: u64,
    /// Windowed time-series tracks, in the report's canonical
    /// (kind, key) order.
    pub timeline: Vec<TimelineTrack>,
}

impl BenchMetrics {
    /// Summarizes a full [`MetricsReport`] into one row (the in-process
    /// equivalent of emitting JSON and parsing it back).
    pub fn from_report(name: &str, config: &str, m: &MetricsReport) -> BenchMetrics {
        BenchMetrics {
            name: name.to_string(),
            config: config.to_string(),
            phases: m.phases,
            latency: m
                .latencies()
                .iter()
                .map(|(span, h)| LatencySummary {
                    span: (*span).to_string(),
                    count: h.count(),
                    p50_ps: h.percentile(50),
                    p90_ps: h.percentile(90),
                    p99_ps: h.percentile(99),
                })
                .collect(),
            timeline_window_ps: m.timeline.window_ps,
            timeline: m
                .timeline
                .tracks
                .iter()
                .map(|t| TimelineTrack {
                    kind: asan_sim::series::kind_label(t.kind).to_string(),
                    key: t.key,
                    samples: t.samples.clone(),
                })
                .collect(),
        }
    }
}

/// Emits the metrics JSON document for a set of benchmark runs:
/// `{"benchmarks":[{"name":…,"config":…,"metrics":{…}},…]}`, with each
/// `metrics` member being [`MetricsReport::to_json`]. Deterministic:
/// fixed field order, integral picoseconds.
pub fn metrics_json(rows: &[(&str, &str, &MetricsReport)]) -> String {
    let mut out = String::from("{\"benchmarks\":[");
    for (i, (name, config, m)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{name}\",\"config\":\"{config}\",\"metrics\":{}}}",
            m.to_json()
        ));
    }
    out.push_str("]}");
    out
}

/// Parses a metrics JSON document (as produced by [`metrics_json`])
/// back into rows.
///
/// Every `metrics` member must carry the schema version this crate was
/// built against ([`MetricsReport::JSON_SCHEMA`]); documents written by
/// an older or newer simulator are rejected rather than silently
/// misread.
///
/// # Errors
///
/// Returns a description of the first malformed, missing, or
/// wrong-schema field.
pub fn parse_metrics_doc(text: &str) -> Result<Vec<BenchMetrics>, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let benches = doc
        .get("benchmarks")
        .and_then(json::Value::as_arr)
        .ok_or("missing \"benchmarks\" array")?;
    let field = |v: &json::Value, k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("missing numeric field {k:?}"))
    };
    let mut rows = Vec::new();
    for b in benches {
        let name = b
            .get("name")
            .and_then(json::Value::as_str)
            .ok_or("missing \"name\"")?
            .to_string();
        let config = b
            .get("config")
            .and_then(json::Value::as_str)
            .ok_or("missing \"config\"")?
            .to_string();
        let m = b.get("metrics").ok_or("missing \"metrics\"")?;
        match m.get("schema").and_then(json::Value::as_u64) {
            Some(v) if v == u64::from(MetricsReport::JSON_SCHEMA) => {}
            Some(v) => {
                return Err(format!(
                    "unsupported metrics schema version {v}: this analyzer reads \
                     version {} — re-run the matching `repro` to regenerate the \
                     document",
                    MetricsReport::JSON_SCHEMA
                ));
            }
            None => {
                return Err(format!(
                    "missing \"schema\" version in metrics: the document predates \
                     schema version {} or is not a metrics document",
                    MetricsReport::JSON_SCHEMA
                ));
            }
        }
        let p = m.get("phases").ok_or("missing \"phases\"")?;
        let phases = PhaseBreakdown {
            host_ps: field(p, "host_ps")?,
            fabric_ps: field(p, "fabric_ps")?,
            handler_ps: field(p, "handler_ps")?,
            storage_ps: field(p, "storage_ps")?,
            total_ps: field(p, "total_ps")?,
        };
        let lat = m.get("latency").ok_or("missing \"latency\"")?;
        let mut latency = Vec::new();
        if let json::Value::Obj(members) = lat {
            for (span, v) in members {
                latency.push(LatencySummary {
                    span: span.clone(),
                    count: field(v, "count")?,
                    p50_ps: field(v, "p50_ps")?,
                    p90_ps: field(v, "p90_ps")?,
                    p99_ps: field(v, "p99_ps")?,
                });
            }
        }
        let tl = m.get("timeline").ok_or("missing \"timeline\"")?;
        let timeline_window_ps = field(tl, "window_ps")?;
        let tracks = tl
            .get("tracks")
            .and_then(json::Value::as_arr)
            .ok_or("missing \"tracks\" array in timeline")?;
        let mut timeline = Vec::new();
        for t in tracks {
            let kind = t
                .get("kind")
                .and_then(json::Value::as_str)
                .ok_or("missing track \"kind\"")?
                .to_string();
            let key = field(t, "key")?;
            let windows = field(t, "windows")? as usize;
            let mut samples = vec![0u64; windows];
            let pairs = t
                .get("samples")
                .and_then(json::Value::as_arr)
                .ok_or("missing track \"samples\"")?;
            for pair in pairs {
                let pair = pair.as_arr().ok_or("track sample is not a pair")?;
                let (w, v) = match pair {
                    [w, v] => (
                        w.as_u64().ok_or("non-numeric sample window")? as usize,
                        v.as_u64().ok_or("non-numeric sample value")?,
                    ),
                    _ => return Err("track sample is not an [index, value] pair".into()),
                };
                *samples
                    .get_mut(w)
                    .ok_or("sample window out of track range")? = v;
            }
            timeline.push(TimelineTrack { kind, key, samples });
        }
        rows.push(BenchMetrics {
            name,
            config,
            phases,
            latency,
            timeline_window_ps,
            timeline,
        });
    }
    Ok(rows)
}

/// Renders the paper-style per-phase time-breakdown table: one row per
/// benchmark × configuration, phase occupancy as a share of total run
/// time. Phases overlap in time, so rows need not sum to 100%.
pub fn phase_breakdown_report(rows: &[BenchMetrics]) -> String {
    let mut out = String::new();
    out.push_str("== Per-phase time breakdown (share of total run time) ==\n");
    out.push_str(&format!(
        "{:<20} {:<8} {:>7} {:>8} {:>9} {:>9} {:>12}\n",
        "benchmark", "config", "host%", "fabric%", "handler%", "storage%", "total"
    ));
    for r in rows {
        let p = &r.phases;
        out.push_str(&format!(
            "{:<20} {:<8} {:>6.1}% {:>7.1}% {:>8.1}% {:>8.1}% {:>12}\n",
            r.name,
            r.config,
            p.share(p.host_ps) * 100.0,
            p.share(p.fabric_ps) * 100.0,
            p.share(p.handler_ps) * 100.0,
            p.share(p.storage_ps) * 100.0,
            format!("{}", SimDuration::from_ps(p.total_ps)),
        ));
    }
    out
}

/// Renders the latency-percentile table: p50/p90/p99 per span kind for
/// every benchmark × configuration row.
pub fn latency_report(rows: &[BenchMetrics]) -> String {
    let mut out = String::new();
    out.push_str("== Latency percentiles (simulated time) ==\n");
    out.push_str(&format!(
        "{:<20} {:<8} {:<13} {:>9} {:>12} {:>12} {:>12}\n",
        "benchmark", "config", "span", "count", "p50", "p90", "p99"
    ));
    for r in rows {
        for l in &r.latency {
            out.push_str(&format!(
                "{:<20} {:<8} {:<13} {:>9} {:>12} {:>12} {:>12}\n",
                r.name,
                r.config,
                l.span,
                l.count,
                format!("{}", SimDuration::from_ps(l.p50_ps)),
                format!("{}", SimDuration::from_ps(l.p90_ps)),
                format!("{}", SimDuration::from_ps(l.p99_ps)),
            ));
        }
    }
    out
}

/// Renders one track as a fixed-width sparkline: samples are bucketed
/// down to at most `width` characters (per-bucket maximum), `.` marks
/// an all-zero bucket, and non-zero buckets scale linearly into eight
/// block levels against the track's own maximum.
fn sparkline(samples: &[u64], width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if samples.is_empty() {
        return String::new();
    }
    let per = samples.len().div_ceil(width).max(1);
    let buckets: Vec<u64> = samples
        .chunks(per)
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .collect();
    let max = buckets.iter().copied().max().unwrap_or(0);
    buckets
        .iter()
        .map(|&v| {
            if v == 0 {
                '.'
            } else {
                LEVELS[((v as u128 * 7) / max as u128) as usize]
            }
        })
        .collect()
}

/// Renders the flight-recorder timeline: per-track sparklines (one row
/// per resource, one character per window bucket) followed by the
/// top-K hotspot table — the busiest single windows across all
/// occupancy tracks, ranked by busy time. Deterministic: ties break by
/// (benchmark, config, kind, key, window).
pub fn timeline_report(rows: &[BenchMetrics]) -> String {
    const WIDTH: usize = 64;
    const TOP_K: usize = 10;
    let mut out = String::new();
    out.push_str("== Timeline (per-window activity; '.' = idle window) ==\n");
    for r in rows {
        if r.timeline.is_empty() {
            out.push_str(&format!(
                "-- {} / {}: no timeline data --\n",
                r.name, r.config
            ));
            continue;
        }
        out.push_str(&format!(
            "-- {} / {} (window {}) --\n",
            r.name,
            r.config,
            SimDuration::from_ps(r.timeline_window_ps),
        ));
        for t in &r.timeline {
            out.push_str(&format!(
                "{:<13} {:>5} |{}|\n",
                t.kind,
                t.key,
                sparkline(&t.samples, WIDTH),
            ));
        }
    }
    // Hotspots: occupancy tracks only — gauge samples are counts, not
    // picoseconds, and cannot be ranked on the same axis.
    let mut hot: Vec<(u64, &BenchMetrics, &TimelineTrack, usize)> = Vec::new();
    for r in rows {
        for t in &r.timeline {
            if t.kind == "queue_depth" {
                continue;
            }
            for (w, &v) in t.samples.iter().enumerate() {
                if v > 0 {
                    hot.push((v, r, t, w));
                }
            }
        }
    }
    hot.sort_by(|a, b| {
        b.0.cmp(&a.0).then_with(|| {
            (
                a.1.name.as_str(),
                a.1.config.as_str(),
                a.2.kind.as_str(),
                a.2.key,
                a.3,
            )
                .cmp(&(
                    b.1.name.as_str(),
                    b.1.config.as_str(),
                    b.2.kind.as_str(),
                    b.2.key,
                    b.3,
                ))
        })
    });
    out.push_str("\n== Top busy windows (occupancy tracks) ==\n");
    out.push_str(&format!(
        "{:<20} {:<8} {:<13} {:>5} {:>7} {:>12} {:>12}\n",
        "benchmark", "config", "track", "key", "window", "starts", "busy"
    ));
    for &(v, r, t, w) in hot.iter().take(TOP_K) {
        out.push_str(&format!(
            "{:<20} {:<8} {:<13} {:>5} {:>7} {:>12} {:>12}\n",
            r.name,
            r.config,
            t.kind,
            t.key,
            w,
            format!("{}", SimDuration::from_ps(w as u64 * r.timeline_window_ps)),
            format!("{}", SimDuration::from_ps(v)),
        ));
    }
    out
}

/// Extracts the headline speedups (active vs normal, active+pref vs
/// normal+pref) for EXPERIMENTS.md-style summaries.
pub fn speedups(runs: &[AppRun]) -> (f64, f64) {
    let get = |v: Variant| {
        runs.iter()
            .find(|r| r.variant == v)
            .expect("variant present")
            .exec
            .as_ps() as f64
    };
    (
        get(Variant::Normal) / get(Variant::Active),
        get(Variant::NormalPref) / get(Variant::ActivePref),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_sim::stats::TimeBreakdown;
    use asan_sim::{SimDuration, SimTime};

    fn fake(variant: Variant, exec_ns: u64, traffic: u64) -> AppRun {
        AppRun {
            variant,
            exec: SimTime::from_ns(exec_ns),
            host_breakdown: TimeBreakdown {
                busy: SimDuration::from_ns(exec_ns / 2),
                stall: SimDuration::from_ns(exec_ns / 4),
                idle: SimDuration::from_ns(exec_ns / 4),
            },
            switch_breakdowns: vec![],
            host_traffic: traffic,
            host_utilization: 0.75,
            link_bytes: 0,
            artifact: 0,
            stats_digest: 0,
            metrics: MetricsReport::default(),
            events: 0,
            peak_queue: 0,
            faults: asan_sim::faults::FaultStats::default(),
        }
    }

    #[test]
    fn overall_table_normalizes_to_normal() {
        let runs = vec![
            fake(Variant::Normal, 1000, 100),
            fake(Variant::Active, 500, 25),
        ];
        let t = overall_table("Figure X", &runs);
        assert!(t.contains("Figure X"));
        assert!(t.contains("normal"));
        assert!(t.contains("active"));
        assert!(t.contains("2.00"), "table:\n{t}");
        assert!(t.contains("0.250"), "traffic ratio:\n{t}");
    }

    #[test]
    fn breakdown_table_shows_shares() {
        let runs = vec![fake(Variant::NormalPref, 1000, 1)];
        let t = breakdown_table("Figure Y", &runs);
        assert!(t.contains("n+p-HP"));
        assert!(t.contains("50.0%"));
        assert!(t.contains("25.0%"));
    }

    #[test]
    fn overall_csv_has_header_and_rows() {
        let runs = vec![
            fake(Variant::Normal, 1000, 100),
            fake(Variant::Active, 500, 25),
        ];
        let csv = overall_csv("fig3", &runs);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("experiment,config"));
        assert!(lines[1].starts_with("fig3,normal,1000000,1.000000"));
        assert!(lines[2].contains("fig3,active,500000,0.500000"));
    }

    fn fake_metrics() -> MetricsReport {
        let mut m = MetricsReport::default();
        for v in [1_000u64, 2_000, 4_000] {
            m.packet_e2e.record(v);
            m.handler_occupancy.record(v * 2);
        }
        m.disk_service.record(1_000_000);
        m.phases = PhaseBreakdown {
            host_ps: 500_000,
            fabric_ps: 7_000,
            handler_ps: 14_000,
            storage_ps: 1_000_000,
            total_ps: 2_000_000,
        };
        m
    }

    #[test]
    fn metrics_json_roundtrips_through_the_parser() {
        let m = fake_metrics();
        let doc = metrics_json(&[("grep", "normal", &m), ("grep", "active", &m)]);
        let rows = parse_metrics_doc(&doc).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].name, "grep");
        assert_eq!(rows[1].config, "active");
        assert_eq!(rows[0].phases, m.phases);
        let direct = BenchMetrics::from_report("grep", "normal", &m);
        assert_eq!(rows[0], direct, "JSON roundtrip equals in-process summary");
        assert_eq!(rows[0].latency.len(), 5);
        assert_eq!(rows[0].latency[0].span, "packet");
        assert_eq!(rows[0].latency[0].count, 3);
    }

    #[test]
    fn phase_and_latency_reports_render() {
        let m = fake_metrics();
        let rows = vec![
            BenchMetrics::from_report("mpeg", "normal", &m),
            BenchMetrics::from_report("mpeg", "active", &m),
        ];
        let pt = phase_breakdown_report(&rows);
        assert!(pt.contains("benchmark"), "table:\n{pt}");
        assert!(pt.contains("mpeg"));
        assert!(pt.contains("25.0%"), "host share 0.5/2.0:\n{pt}");
        assert!(pt.contains("50.0%"), "storage share 1.0/2.0:\n{pt}");
        let lt = latency_report(&rows);
        assert!(lt.contains("packet"));
        assert!(lt.contains("p99"));
        assert!(lt.contains("disk"));
    }

    #[test]
    fn parse_metrics_doc_rejects_malformed_input() {
        assert!(parse_metrics_doc("{}").is_err());
        assert!(parse_metrics_doc("not json").is_err());
        assert!(parse_metrics_doc("{\"benchmarks\":[{\"name\":\"x\"}]}").is_err());
    }

    #[test]
    fn parse_metrics_doc_rejects_unknown_schema_versions() {
        // A v2 document with its version tampered to a future value:
        // the parser must refuse rather than misread.
        let m = fake_metrics();
        let good = metrics_json(&[("grep", "normal", &m)]);
        let future = good.replace("\"schema\":2,", "\"schema\":99,");
        let err = parse_metrics_doc(&future).expect_err("future schema rejected");
        assert!(
            err.contains("unsupported metrics schema version 99"),
            "error names the offending version: {err}"
        );
        assert!(
            err.contains("version 2"),
            "error names the supported version: {err}"
        );
        // A pre-schema document (no version field at all).
        let legacy = good.replace("\"schema\":2,", "");
        let err = parse_metrics_doc(&legacy).expect_err("versionless doc rejected");
        assert!(
            err.contains("missing \"schema\""),
            "clear missing-version error: {err}"
        );
    }

    #[test]
    fn parse_metrics_doc_reconstructs_sparse_timelines() {
        let mut m = fake_metrics();
        m.timeline.window_ps = 1_000_000;
        m.timeline.tracks.push(asan_sim::series::Track {
            kind: asan_sim::series::KIND_LINK_UTIL,
            key: 3,
            samples: vec![0, 250_000, 0, 900_000],
        });
        let doc = metrics_json(&[("grep", "active", &m)]);
        let rows = parse_metrics_doc(&doc).expect("parses");
        assert_eq!(rows[0].timeline_window_ps, 1_000_000);
        assert_eq!(
            rows[0].timeline,
            vec![TimelineTrack {
                kind: "link_util".into(),
                key: 3,
                samples: vec![0, 250_000, 0, 900_000],
            }],
            "sparse JSON decodes back to the dense track"
        );
        assert_eq!(rows[0], BenchMetrics::from_report("grep", "active", &m));
    }

    #[test]
    fn timeline_report_renders_sparklines_and_hotspots() {
        let mut m = fake_metrics();
        m.timeline.window_ps = 1_000_000;
        m.timeline.tracks.push(asan_sim::series::Track {
            kind: asan_sim::series::KIND_LINK_UTIL,
            key: 0,
            samples: vec![100, 0, 1_000_000],
        });
        m.timeline.tracks.push(asan_sim::series::Track {
            kind: asan_sim::series::KIND_QUEUE_DEPTH,
            key: 0,
            samples: vec![4, 9],
        });
        let rows = vec![BenchMetrics::from_report("reduce", "nca", &m)];
        let t = timeline_report(&rows);
        assert!(t.contains("reduce / nca"), "header:\n{t}");
        assert!(t.contains("link_util"), "track label:\n{t}");
        assert!(t.contains("|▁.█|"), "sparkline scales to track max:\n{t}");
        // Hotspot table: the busiest window is link 0, window 2, 1 us;
        // the queue gauge is excluded (counts, not picoseconds).
        assert!(t.contains("Top busy windows"), "table:\n{t}");
        let hot = t.split("Top busy windows").nth(1).unwrap();
        assert!(hot.contains("1.000us"), "busiest window value:\n{t}");
        assert!(!hot.contains("queue_depth"), "gauges excluded:\n{t}");
    }

    #[test]
    fn sparkline_buckets_wide_tracks_to_width() {
        let samples: Vec<u64> = (0..512).map(|i| i % 7).collect();
        let s = sparkline(&samples, 64);
        assert_eq!(s.chars().count(), 64, "512 windows bucket to 64 chars");
        assert_eq!(sparkline(&[], 64), "");
        assert_eq!(sparkline(&[0, 0], 64), "..");
    }

    #[test]
    fn speedups_extracts_ratios() {
        let runs = vec![
            fake(Variant::Normal, 1000, 1),
            fake(Variant::NormalPref, 800, 1),
            fake(Variant::Active, 500, 1),
            fake(Variant::ActivePref, 400, 1),
        ];
        let (s, sp) = speedups(&runs);
        assert!((s - 2.0).abs() < 1e-9);
        assert!((sp - 2.0).abs() < 1e-9);
    }
}
