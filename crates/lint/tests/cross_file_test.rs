//! Workspace-level behaviour through the real binary: cross-file rules
//! that no per-file pass can express, ordering stability, the baseline
//! gate, `--fix` idempotence, the machine-readable rule catalog, and
//! lexer edge cases that would otherwise produce phantom findings.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lint(args: &[&str], paths: &[&Path]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_asan-lint"));
    cmd.arg("check").args(args);
    for p in paths {
        cmd.arg(p);
    }
    cmd.output().expect("spawn asan-lint")
}

/// Fresh scratch dir per test so parallel tests never collide.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("asan-lint-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

/// The acceptance proof for the tentpole: an orphaned `Event` variant
/// that sails through the old per-file `event-exhaustiveness` rule is
/// caught by the workspace `event-flow-closure` rule — and the finding
/// names the producer site in the *other* file.
#[test]
fn orphaned_variant_beats_per_file_exhaustiveness() {
    let dir = scratch("orphan");
    std::fs::write(
        dir.join("events.rs"),
        "pub enum Event { Ping(u64), Orphan(u64) }\n",
    )
    .expect("write");
    std::fs::write(
        dir.join("engine.rs"),
        "impl RelayEngine {\n\
         \x20   pub fn on_event(&mut self, ev: Event) {\n\
         \x20       match ev {\n\
         \x20           Event::Ping(seq) => self.acks += seq,\n\
         \x20           other => unreachable!(\"not ours: {other:?}\"),\n\
         \x20       }\n\
         \x20   }\n\
         }\n",
    )
    .expect("write");
    std::fs::write(
        dir.join("producer.rs"),
        "pub fn inject(bus: &mut Vec<Event>) {\n\
         \x20   bus.push(Event::Ping(1));\n\
         \x20   bus.push(Event::Orphan(2));\n\
         }\n",
    )
    .expect("write");
    let out = lint(
        &[
            "--root",
            dir.to_str().unwrap(),
            "--scope-all",
            "--format",
            "json",
        ],
        &[],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "orphan must be caught\n{stdout}"
    );
    assert!(
        stdout.contains("\"rule\": \"event-flow-closure\""),
        "workspace rule must fire\n{stdout}"
    );
    assert!(
        !stdout.contains("\"rule\": \"event-exhaustiveness\""),
        "the loud catch-all satisfies the per-file rule\n{stdout}"
    );
    assert!(
        stdout.contains("Orphan") && stdout.contains("producer.rs"),
        "finding must cite the producer site across files\n{stdout}"
    );
}

/// Snapshot/restore symmetry is checked across files: writer in one
/// file, reader in another, tapes compared over the whole index.
#[test]
fn snapshot_symmetry_spans_files_through_the_binary() {
    let dir = scratch("snap-span");
    std::fs::write(
        dir.join("port.rs"),
        "impl PortState {\n\
         \x20   pub fn snapshot(&self, w: &mut SnapWriter) { w.u32(self.seq); w.u64(self.credits); }\n\
         }\n",
    )
    .expect("write");
    std::fs::write(
        dir.join("restore.rs"),
        "impl PortState {\n\
         \x20   pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {\n\
         \x20       self.seq = r.u32()?;\n\
         \x20       self.credits = u64::from(r.u32()?);\n\
         \x20       Ok(())\n\
         \x20   }\n\
         }\n",
    )
    .expect("write");
    let out = lint(
        &[
            "--root",
            dir.to_str().unwrap(),
            "--scope-all",
            "--format",
            "json",
        ],
        &[],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "asymmetry must be caught\n{stdout}"
    );
    assert!(
        stdout.contains("\"rule\": \"snapshot-symmetry\"")
            && stdout.contains("restore.rs")
            && stdout.contains("port.rs"),
        "finding must anchor at the reader and cite the writer\n{stdout}"
    );
}

/// Diagnostics come out sorted by (path, line, column, rule) and paths
/// are workspace-relative — byte-identical across runs.
#[test]
fn output_is_stable_and_workspace_relative() {
    let dir = scratch("stable");
    std::fs::write(
        dir.join("b.rs"),
        "pub fn b() { let t = std::time::Instant::now(); let _ = t; }\n",
    )
    .expect("write");
    std::fs::write(
        dir.join("a.rs"),
        "pub fn a() { let t = std::time::Instant::now(); let _ = t; }\n",
    )
    .expect("write");
    let args = [
        "--root",
        dir.to_str().unwrap(),
        "--scope-all",
        "--format",
        "json",
    ];
    let first = lint(&args, &[]);
    let second = lint(&args, &[]);
    assert_eq!(first.stdout, second.stdout, "output must be deterministic");
    let stdout = String::from_utf8_lossy(&first.stdout);
    let a = stdout.find("\"file\": \"a.rs\"").expect("a.rs finding");
    let b = stdout.find("\"file\": \"b.rs\"").expect("b.rs finding");
    assert!(a < b, "findings must sort by path\n{stdout}");
    assert!(
        !stdout.contains(dir.to_str().unwrap()),
        "paths must be workspace-relative, not absolute\n{stdout}"
    );
}

/// `--write-baseline` then `--baseline` turns a dirty tree green while
/// still catching anything new.
#[test]
fn baseline_gates_only_new_findings() {
    let dir = scratch("baseline");
    std::fs::write(
        dir.join("old.rs"),
        "pub fn old() { let t = std::time::Instant::now(); let _ = t; }\n",
    )
    .expect("write");
    let baseline = dir.join("lint-baseline.tsv");
    let out = lint(
        &[
            "--root",
            dir.to_str().unwrap(),
            "--scope-all",
            "--write-baseline",
            baseline.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(0), "--write-baseline exits 0");
    // Baselined: the same findings no longer fail the gate.
    let out = lint(
        &[
            "--root",
            dir.to_str().unwrap(),
            "--scope-all",
            "--baseline",
            baseline.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(0), "baselined findings must pass");
    // A new finding still fails.
    std::fs::write(
        dir.join("new.rs"),
        "pub fn fresh() { let t = std::time::Instant::now(); let _ = t; }\n",
    )
    .expect("write");
    let out = lint(
        &[
            "--root",
            dir.to_str().unwrap(),
            "--scope-all",
            "--baseline",
            baseline.to_str().unwrap(),
            "--format",
            "json",
        ],
        &[],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "new finding must fail\n{stdout}"
    );
    assert!(
        stdout.contains("new.rs") && !stdout.contains("old.rs"),
        "only the new finding is reported\n{stdout}"
    );
}

/// `check --fix` removes dead allows and rewrites HashMap→BTreeMap;
/// running it twice produces no further edits (idempotent).
#[test]
fn fix_is_idempotent() {
    let dir = scratch("fix");
    let file = dir.join("core").join("mod.rs");
    std::fs::create_dir_all(file.parent().unwrap()).expect("mkdir");
    std::fs::write(
        &file,
        "// asan-lint: allow(no-wall-clock)\n\
         use std::collections::HashMap;\n\
         pub fn table() -> HashMap<u64, u64> {\n\
         \x20   HashMap::new()\n\
         }\n",
    )
    .expect("write");
    let args = ["--root", dir.to_str().unwrap(), "--scope-all", "--fix"];
    let out = lint(&args, &[]);
    assert_eq!(out.status.code(), Some(0), "fixed tree must be clean");
    let fixed = std::fs::read_to_string(&file).expect("read back");
    assert!(
        !fixed.contains("asan-lint: allow") && !fixed.contains("HashMap"),
        "fix must remove the dead allow and rewrite the map type\n{fixed}"
    );
    assert!(fixed.contains("BTreeMap"), "rewrite keeps the use\n{fixed}");
    let out = lint(&args, &[]);
    assert_eq!(out.status.code(), Some(0));
    let again = std::fs::read_to_string(&file).expect("read back");
    assert_eq!(fixed, again, "second --fix must be a no-op");
}

/// The machine-readable catalog is pinned: exact names, scopes, and
/// provenance. Any drift is a deliberate, reviewed change to this test.
#[test]
fn rule_catalog_json_is_pinned() {
    let out = Command::new(env!("CARGO_BIN_EXE_asan-lint"))
        .args(["--list-rules", "--format", "json"])
        .output()
        .expect("spawn asan-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"catalog_version\": 2"),
        "catalog version pins the vocabulary\n{stdout}"
    );
    for (name, since, analysis) in [
        ("no-unordered-iteration", 3, "file"),
        ("no-wall-clock", 3, "file"),
        ("no-ambient-randomness", 3, "file"),
        ("lossy-model-cast", 3, "file"),
        ("event-exhaustiveness", 3, "file"),
        ("digest-completeness", 3, "file"),
        ("no-hot-path-clone", 5, "file"),
        ("snapshot-completeness", 6, "file"),
        ("no-unit-mixing", 8, "file"),
        ("event-flow-closure", 8, "workspace"),
        ("snapshot-symmetry", 8, "workspace"),
        ("domain-isolation", 8, "workspace"),
        ("unused-allow", 8, "workspace"),
    ] {
        assert!(
            stdout.contains(&format!("\"name\": \"{name}\"")),
            "catalog must list {name}\n{stdout}"
        );
        let entry = stdout
            .split("\"name\": \"")
            .find(|s| s.starts_with(name))
            .unwrap();
        let entry = &entry[..entry.find('}').unwrap_or(entry.len())];
        assert!(
            entry.contains(&format!("\"since_pr\": {since}")),
            "{name}: since_pr must be {since}\n{entry}"
        );
        assert!(
            entry.contains(&format!("\"analysis\": \"{analysis}\"")),
            "{name}: analysis must be {analysis}\n{entry}"
        );
        assert!(
            entry.contains("\"severity\": \"deny\""),
            "{name}: all rules are deny-level\n{entry}"
        );
        assert!(entry.contains("\"scope\": \""), "{name}: scope present");
    }
    assert_eq!(
        stdout.matches("\"name\": \"").count(),
        13,
        "exactly thirteen rules\n{stdout}"
    );
}

/// Lexer edge cases, end to end: tokens that *look* like findings but
/// live inside raw strings, byte strings, nested block comments, or
/// lifetime syntax must not produce diagnostics.
#[test]
fn lexer_edge_cases_produce_no_phantom_findings() {
    let dir = scratch("lexer-edge");
    std::fs::write(
        dir.join("edges.rs"),
        "pub fn raw() -> &'static str {\n\
         \x20   r##\"use std::collections::HashMap; # \"# Instant::now()\"##\n\
         }\n\
         pub fn bytes() -> (&'static [u8], &'static [u8]) {\n\
         \x20   (b\"thread_rng()\", br#\"static mut X: u8 = 0;\"#)\n\
         }\n\
         /* outer /* HashMap::new() */ still comment */\n\
         pub struct Holder<'a>(pub &'a str);\n\
         pub fn life<'x>(h: Holder<'x>) -> char {\n\
         \x20   let c: char = 'h';\n\
         \x20   let _ = h;\n\
         \x20   c\n\
         }\n",
    )
    .expect("write");
    let out = lint(
        &[
            "--root",
            dir.to_str().unwrap(),
            "--scope-all",
            "--format",
            "json",
        ],
        &[],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "no phantom findings\n{stdout}");
    assert!(stdout.contains("\"violations\": 0"), "clean\n{stdout}");

    // A nested block comment left open at EOF must not crash the lexer
    // (everything after the opener is comment; the file scans clean).
    std::fs::write(
        dir.join("edges.rs"),
        "pub fn ok() {}\n/* dangling /* nested */ never closed\n",
    )
    .expect("write");
    let out = lint(
        &[
            "--root",
            dir.to_str().unwrap(),
            "--scope-all",
            "--format",
            "json",
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(0), "unterminated comment tolerated");
}
