//! Collective reduction on a growing cluster: the paper's Figure 15
//! scenario, showing how the active-switch tree beats the host-side
//! minimum-spanning-tree algorithm as the node count grows.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cluster_reduce
//! ```

use asan_apps::reduce::{run, Mode};

fn main() {
    println!("Reduce-to-one of 512 B vectors (u32 sum lanes)\n");
    println!(
        "{:<8} {:>14} {:>14} {:>9}",
        "nodes", "normal (us)", "active (us)", "speedup"
    );
    let mut last = None;
    for p in [2usize, 4, 8, 16, 32] {
        let normal = run(Mode::ReduceToOne, false, p);
        let active = run(Mode::ReduceToOne, true, p);
        let n_us = normal.latency.as_ns() as f64 / 1000.0;
        let a_us = active.latency.as_ns() as f64 / 1000.0;
        println!("{p:<8} {n_us:>14.2} {a_us:>14.2} {:>8.2}x", n_us / a_us);
        last = Some((p, normal, active));
    }
    let (p, normal, active) = last.expect("at least one node count");
    println!("\nWhere the time goes at {p} nodes (simulated-time spans):\n");
    println!("normal (host MST):\n{}", normal.metrics);
    println!("active (switch tree):\n{}", active.metrics);
    println!(
        "Every delivered vector is validated lane-by-lane against a\n\
         scalar reference inside `reduce::run` — a wrong sum panics."
    );
}
