//! Packets and the InfiniBand-style Raw packet header.
//!
//! The paper (§4) uses the InfiniBand Raw packet format with a 128-bit
//! header that embeds a 64-bit *active* sub-header: a 6-bit message
//! handler ID and a 32-bit address field naming where the payload is
//! memory-mapped on the active switch. The MTU is 512 bytes.

use std::fmt;

use crate::bytes::Bytes;

/// Network-wide maximum transfer unit (bytes of payload per packet).
pub const MTU: usize = 512;

/// Size of the wire header in bytes (128 bits).
pub const HEADER_BYTES: usize = 16;

/// Identifies an endpoint or switch in the cluster.
///
/// Node IDs are dense small integers assigned by the topology builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A 6-bit active-message handler identifier (0–63).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HandlerId(u8);

impl HandlerId {
    /// Creates a handler ID.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not fit in the header's 6-bit field.
    pub fn new(id: u8) -> Self {
        assert!(id < 64, "handler id {id} exceeds the 6-bit header field");
        HandlerId(id)
    }

    /// `const` constructor for handler-ID constants.
    ///
    /// # Panics
    ///
    /// Panics at compile time if `id` exceeds 6 bits.
    pub const fn new_const(id: u8) -> Self {
        assert!(id < 64, "handler id exceeds the 6-bit header field");
        HandlerId(id)
    }

    /// The raw 6-bit value.
    pub fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for HandlerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// The 128-bit Raw packet header.
///
/// Layout (16 bytes on the wire):
///
/// ```text
/// [0..2)   src node            [2..4)   dst node
/// [4..6)   payload length      [6..7)   flags (bit0: active)
/// [7..8)   handler id (6 bits)
/// [8..12)  active address field (32 bits)
/// [12..16) sequence number within a flow
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint (a switch's own ID for active messages).
    pub dst: NodeId,
    /// Payload length in bytes (≤ [`MTU`]).
    pub len: u16,
    /// Active-message handler to invoke at the destination switch, if any.
    pub handler: Option<HandlerId>,
    /// Address to which the payload is memory-mapped on the switch.
    pub addr: u32,
    /// Sequence number within the sender's flow (for reassembly checks).
    pub seq: u32,
}

impl Header {
    /// Serializes to the 16-byte wire format.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0..2].copy_from_slice(&self.src.0.to_le_bytes());
        b[2..4].copy_from_slice(&self.dst.0.to_le_bytes());
        b[4..6].copy_from_slice(&self.len.to_le_bytes());
        if let Some(h) = self.handler {
            b[6] = 1;
            b[7] = h.as_u8();
        }
        b[8..12].copy_from_slice(&self.addr.to_le_bytes());
        b[12..16].copy_from_slice(&self.seq.to_le_bytes());
        b
    }

    /// Parses the 16-byte wire format.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error if the length field exceeds the MTU or
    /// the handler field is malformed.
    pub fn decode(b: &[u8; HEADER_BYTES]) -> Result<Header, HeaderError> {
        let len = u16::from_le_bytes([b[4], b[5]]);
        if len as usize > MTU {
            return Err(HeaderError::LengthExceedsMtu(len));
        }
        let handler = if b[6] & 1 != 0 {
            if b[7] >= 64 {
                return Err(HeaderError::BadHandlerId(b[7]));
            }
            Some(HandlerId::new(b[7]))
        } else {
            None
        };
        Ok(Header {
            src: NodeId(u16::from_le_bytes([b[0], b[1]])),
            dst: NodeId(u16::from_le_bytes([b[2], b[3]])),
            len,
            handler,
            addr: u32::from_le_bytes([b[8], b[9], b[10], b[11]]),
            seq: u32::from_le_bytes([b[12], b[13], b[14], b[15]]),
        })
    }

    /// Whether this is an active message (invokes a switch handler).
    pub fn is_active(&self) -> bool {
        self.handler.is_some()
    }
}

/// Errors from decoding a wire header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderError {
    /// Length field larger than the MTU.
    LengthExceedsMtu(u16),
    /// Handler ID does not fit in 6 bits.
    BadHandlerId(u8),
}

impl fmt::Display for HeaderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderError::LengthExceedsMtu(l) => {
                write!(f, "payload length {l} exceeds the {MTU}-byte MTU")
            }
            HeaderError::BadHandlerId(h) => write!(f, "handler id {h} exceeds 6 bits"),
        }
    }
}

impl std::error::Error for HeaderError {}

/// CRC-32 lookup tables (IEEE 802.3 reflected polynomial) for the
/// slice-by-8 algorithm, built at compile time so the per-packet ICRC
/// stays cheap. `CRC32_TABLES[0]` is the classic byte-at-a-time table;
/// table `j` maps a byte to its CRC contribution `j` positions further
/// from the end of the stream, letting the hot loop fold eight bytes
/// per iteration.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            tables[j][i] = (tables[j - 1][i] >> 8) ^ tables[0][(tables[j - 1][i] & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
};

/// CRC-32 (IEEE) over a byte stream, continuing from `crc` (start a new
/// checksum with `crc = 0`). Slice-by-8: eight bytes folded per
/// iteration, bit-identical to the byte-at-a-time recurrence.
pub fn crc32(crc: u32, bytes: &[u8]) -> u32 {
    let mut c = crc ^ 0xFFFF_FFFF;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = c ^ u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]);
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        c = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC32_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// A packet: header plus payload bytes, protected end-to-end by an
/// invariant CRC (ICRC) over header and payload, as in the InfiniBand
/// Raw packet format.
///
/// The payload is a [`Bytes`] view, so cloning a packet (fallback
/// forwarding, retransmit caching) or slicing a file region into
/// per-MTU payloads never copies the data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Wire header.
    pub header: Header,
    /// Payload (≤ [`MTU`] bytes; real data, actually processed by
    /// handlers and hosts).
    pub payload: Bytes,
    /// ICRC computed at construction; receivers compare against a
    /// recomputation to detect in-flight corruption.
    icrc: u32,
}

impl Packet {
    /// Builds a packet, checking the payload fits the MTU, and stamps
    /// its ICRC.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() > MTU`.
    pub fn new(header: Header, payload: impl Into<Bytes>) -> Self {
        let payload = payload.into();
        assert!(
            payload.len() <= MTU,
            "payload {} exceeds MTU {MTU}",
            payload.len()
        );
        debug_assert_eq!(header.len as usize, payload.len(), "header length mismatch");
        let icrc = crc32(crc32(0, &header.encode()), &payload);
        Packet {
            header,
            payload,
            icrc,
        }
    }

    /// Rebuilds a packet from its wire parts *without* recomputing the
    /// ICRC. Snapshot restore uses this: a packet whose simulated
    /// corruption made the stored ICRC mismatch its contents must
    /// round-trip with the mismatch intact, so the receiver still
    /// detects it after a restore.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len() > MTU`.
    pub fn from_parts(header: Header, payload: impl Into<Bytes>, icrc: u32) -> Self {
        let payload = payload.into();
        assert!(
            payload.len() <= MTU,
            "payload {} exceeds MTU {MTU}",
            payload.len()
        );
        Packet {
            header,
            payload,
            icrc,
        }
    }

    /// The ICRC stamped at construction.
    pub fn icrc(&self) -> u32 {
        self.icrc
    }

    /// Whether the packet's contents still match its ICRC.
    pub fn icrc_ok(&self) -> bool {
        crc32(crc32(0, &self.header.encode()), &self.payload) == self.icrc
    }

    /// Simulates in-flight bit corruption: flips payload bit
    /// `bit % (len * 8)` *without* updating the stored ICRC, so the
    /// receiver's check fails.
    ///
    /// # Panics
    ///
    /// Panics on an empty payload (nothing to corrupt).
    pub fn corrupt_payload_bit(&mut self, bit: usize) {
        assert!(!self.payload.is_empty(), "cannot corrupt an empty payload");
        let bit = bit % (self.payload.len() * 8);
        // Copy-on-write: the payload may be a view into a shared file
        // buffer, which must never observe simulated wire corruption.
        let mut own = self.payload.to_vec();
        own[bit / 8] ^= 1 << (bit % 8);
        self.payload = Bytes::from(own);
    }

    /// Total wire size: header plus payload.
    pub fn wire_bytes(&self) -> u64 {
        (HEADER_BYTES + self.payload.len()) as u64
    }
}

/// Splits `data` into MTU-sized packets of a flow from `src` to `dst`,
/// mapping payload `i` at `base_addr + i * MTU` (the address field the
/// active switch's ATB uses).
pub fn packetize(
    src: NodeId,
    dst: NodeId,
    handler: Option<HandlerId>,
    base_addr: u32,
    data: &[u8],
) -> Vec<Packet> {
    let mut out = Vec::with_capacity(data.len().div_ceil(MTU).max(1));
    if data.is_empty() {
        let header = Header {
            src,
            dst,
            len: 0,
            handler,
            addr: base_addr,
            seq: 0,
        };
        out.push(Packet::new(header, Bytes::new()));
        return out;
    }
    // Intern the stream once; every payload is an O(1) view into it.
    let shared = Bytes::from(data);
    for (i, start) in (0..data.len()).step_by(MTU).enumerate() {
        let end = (start + MTU).min(data.len());
        let header = Header {
            src,
            dst,
            len: u16::try_from(end - start).expect("chunk bounded by MTU"),
            handler,
            addr: base_addr.wrapping_add((i * MTU) as u32),
            seq: i as u32,
        };
        out.push(Packet::new(header, shared.slice(start..end)));
    }
    out
}

/// Errors from reassembling a packet flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassembleError {
    /// A packet arrived out of sequence (carries the offending seq).
    OutOfOrder(u32),
    /// A packet failed its ICRC check (carries the offending seq).
    Corrupt(u32),
}

impl fmt::Display for ReassembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReassembleError::OutOfOrder(s) => write!(f, "packet seq {s} out of order"),
            ReassembleError::Corrupt(s) => write!(f, "packet seq {s} failed its ICRC check"),
        }
    }
}

impl std::error::Error for ReassembleError {}

/// Reassembles packets of a single flow back into a byte stream,
/// validating sequence numbers and each packet's ICRC: corrupted
/// packets are detected, never silently concatenated.
///
/// # Errors
///
/// Returns the first out-of-order or corrupt sequence number.
pub fn reassemble(packets: &[Packet]) -> Result<Vec<u8>, ReassembleError> {
    let mut data = Vec::new();
    for (i, p) in packets.iter().enumerate() {
        if p.header.seq != i as u32 {
            return Err(ReassembleError::OutOfOrder(p.header.seq));
        }
        if !p.icrc_ok() {
            return Err(ReassembleError::Corrupt(p.header.seq));
        }
        data.extend_from_slice(&p.payload);
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            src: NodeId(3),
            dst: NodeId(7),
            len: 512,
            handler: Some(HandlerId::new(63)),
            addr: 0xDEAD_BEEF,
            seq: 42,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = sample_header();
        let decoded = Header::decode(&h.encode()).unwrap();
        assert_eq!(h, decoded);
    }

    #[test]
    fn non_active_header_roundtrip() {
        let h = Header {
            handler: None,
            ..sample_header()
        };
        let decoded = Header::decode(&h.encode()).unwrap();
        assert_eq!(h, decoded);
        assert!(!decoded.is_active());
    }

    #[test]
    fn decode_rejects_oversized_length() {
        let mut b = sample_header().encode();
        b[4..6].copy_from_slice(&1000u16.to_le_bytes());
        assert_eq!(Header::decode(&b), Err(HeaderError::LengthExceedsMtu(1000)));
    }

    #[test]
    fn decode_rejects_bad_handler() {
        let mut b = sample_header().encode();
        b[7] = 64;
        assert_eq!(Header::decode(&b), Err(HeaderError::BadHandlerId(64)));
    }

    #[test]
    #[should_panic(expected = "6-bit")]
    fn handler_id_range_checked() {
        HandlerId::new(64);
    }

    #[test]
    fn packetize_covers_all_data_with_sequential_addresses() {
        let data: Vec<u8> = (0..1500u32).map(|i| i as u8).collect();
        let pkts = packetize(NodeId(0), NodeId(1), None, 0x1000, &data);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].payload.len(), 512);
        assert_eq!(pkts[2].payload.len(), 1500 - 1024);
        assert_eq!(pkts[0].header.addr, 0x1000);
        assert_eq!(pkts[1].header.addr, 0x1200);
        assert_eq!(pkts[2].header.addr, 0x1400);
        assert_eq!(reassemble(&pkts).unwrap(), data);
    }

    #[test]
    fn packetize_empty_data_yields_one_empty_packet() {
        let pkts = packetize(NodeId(0), NodeId(1), Some(HandlerId::new(5)), 0, &[]);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].payload.is_empty());
        assert_eq!(pkts[0].header.len, 0);
    }

    #[test]
    fn reassemble_detects_out_of_order() {
        let data = vec![0u8; 1024];
        let mut pkts = packetize(NodeId(0), NodeId(1), None, 0, &data);
        pkts.swap(0, 1);
        assert_eq!(reassemble(&pkts), Err(ReassembleError::OutOfOrder(1)));
    }

    #[test]
    fn reassemble_detects_corruption() {
        let data: Vec<u8> = (0..1024u32).map(|i| i as u8).collect();
        let mut pkts = packetize(NodeId(0), NodeId(1), None, 0, &data);
        assert!(pkts[1].icrc_ok());
        pkts[1].corrupt_payload_bit(77);
        assert!(!pkts[1].icrc_ok());
        assert_eq!(reassemble(&pkts), Err(ReassembleError::Corrupt(1)));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_slice_by_8_matches_bytewise_reference() {
        // The slice-by-8 fold must equal the byte-at-a-time recurrence
        // at every length (covering remainder handling 0..8) and for
        // continued checksums.
        let bytewise = |crc: u32, bytes: &[u8]| {
            let mut c = crc ^ 0xFFFF_FFFF;
            for &b in bytes {
                c = CRC32_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
            }
            c ^ 0xFFFF_FFFF
        };
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(0x9E37_79B9) >> 24) as u8)
            .collect();
        for len in (0..64).chain([255, 256, 1000, 1024]) {
            assert_eq!(crc32(0, &data[..len]), bytewise(0, &data[..len]));
            let mid = len / 2;
            let cont = crc32(crc32(0, &data[..mid]), &data[mid..len]);
            assert_eq!(cont, crc32(0, &data[..len]), "continuation at {len}");
        }
    }

    #[test]
    fn packetize_address_field_wraps_at_u32() {
        // Mapped windows near the top of the 32-bit address space wrap
        // rather than panic (the ATB slot math is modular anyway).
        let data = vec![0u8; 1024];
        let pkts = packetize(NodeId(0), NodeId(1), None, u32::MAX - 511, &data);
        assert_eq!(pkts[0].header.addr, u32::MAX - 511);
        assert_eq!(pkts[1].header.addr, 0);
    }

    #[test]
    fn handler_display_and_accessors() {
        let h = HandlerId::new(7);
        assert_eq!(h.as_u8(), 7);
        assert_eq!(h.to_string(), "h7");
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn header_error_messages_are_informative() {
        let e = HeaderError::LengthExceedsMtu(700);
        assert!(e.to_string().contains("700"));
        let e = HeaderError::BadHandlerId(99);
        assert!(e.to_string().contains("99"));
    }

    #[test]
    fn from_parts_preserves_icrc_mismatch() {
        let data: Vec<u8> = (0..100u32).map(|i| i as u8).collect();
        let mut p = packetize(NodeId(0), NodeId(1), None, 0, &data).remove(0);
        p.corrupt_payload_bit(13);
        assert!(!p.icrc_ok());
        let rebuilt = Packet::from_parts(p.header, p.payload.clone(), p.icrc());
        assert_eq!(rebuilt, p);
        assert!(!rebuilt.icrc_ok(), "corruption must survive the rebuild");
    }

    #[test]
    fn wire_bytes_includes_header() {
        let pkts = packetize(NodeId(0), NodeId(1), None, 0, &[0u8; 100]);
        assert_eq!(pkts[0].wire_bytes(), 116);
    }
}
