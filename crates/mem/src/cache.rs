//! Generic set-associative cache timing model.
//!
//! Write-back, write-allocate, true-LRU replacement. This is a *timing*
//! model: it tracks tags, dirtiness and recency, not data (data lives in
//! the applications themselves). It is used for the host L1I/L1D/L2 and
//! the switch CPU's 4 KB I-cache and 1 KB D-cache.

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::stats::Counter;

/// Configuration of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Human-readable name used in statistics dumps (e.g. `"L1D"`).
    pub name: &'static str,
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `line_bytes * assoc`, or line size not a power of two).
    pub fn num_sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(self.assoc > 0, "associativity must be positive");
        let set_bytes = self.line_bytes * self.assoc as u64;
        assert!(
            self.size_bytes.is_multiple_of(set_bytes) && self.size_bytes > 0,
            "cache size {} not divisible by way size {}",
            self.size_bytes,
            set_bytes
        );
        self.size_bytes / set_bytes
    }

    /// The paper's host L1 instruction cache: 32 KB, 2-way.
    pub fn host_l1i() -> Self {
        CacheConfig {
            name: "L1I",
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 2,
        }
    }

    /// The paper's host L1 data cache: 32 KB, 2-way.
    pub fn host_l1d() -> Self {
        CacheConfig {
            name: "L1D",
            size_bytes: 32 * 1024,
            line_bytes: 64,
            assoc: 2,
        }
    }

    /// The paper's host unified L2: 512 KB, 2-way, 128 B lines.
    pub fn host_l2() -> Self {
        CacheConfig {
            name: "L2",
            size_bytes: 512 * 1024,
            line_bytes: 128,
            assoc: 2,
        }
    }

    /// Database-scaled host L1D (8 KB) used for HashJoin/Select (§4).
    pub fn host_l1d_db() -> Self {
        CacheConfig {
            size_bytes: 8 * 1024,
            ..CacheConfig::host_l1d()
        }
    }

    /// Database-scaled host L2 (64 KB) used for HashJoin/Select (§4).
    pub fn host_l2_db() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            ..CacheConfig::host_l2()
        }
    }

    /// The switch CPU's 4 KB 2-way I-cache with 64 B lines (§4).
    pub fn switch_icache() -> Self {
        CacheConfig {
            name: "SP-I",
            size_bytes: 4 * 1024,
            line_bytes: 64,
            assoc: 2,
        }
    }

    /// The switch CPU's 1 KB 2-way D-cache with 32 B lines (§4).
    pub fn switch_dcache() -> Self {
        CacheConfig {
            name: "SP-D",
            size_bytes: 1024,
            line_bytes: 32,
            assoc: 2,
        }
    }
}

/// Kind of access presented to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A demand load (or instruction fetch).
    Read,
    /// A store; allocates on miss (write-allocate) and dirties the line.
    Write,
}

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present.
    pub hit: bool,
    /// If a dirty line was evicted to make room, its base address
    /// (the caller charges the write-back to the next level).
    pub writeback: Option<u64>,
}

/// Per-cache hit/miss statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Demand accesses that hit.
    pub hits: Counter,
    /// Demand accesses that missed.
    pub misses: Counter,
    /// Dirty evictions.
    pub writebacks: Counter,
}

impl CacheStats {
    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Miss ratio over all accesses (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses.get() as f64 / total as f64
        }
    }

    /// Writes all three counters.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        self.hits.snapshot(w);
        self.misses.snapshot(w);
        self.writebacks.snapshot(w);
    }

    /// Reads stats written by [`CacheStats::snapshot`].
    pub fn restore(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(CacheStats {
            hits: Counter::restore(r)?,
            misses: Counter::restore(r)?,
            writebacks: Counter::restore(r)?,
        })
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Recency stamp; larger = more recently used.
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU
/// replacement.
///
/// # Example
///
/// ```
/// use asan_mem::cache::{Cache, CacheConfig, AccessKind};
/// let mut c = Cache::new(CacheConfig::host_l1d());
/// assert!(!c.access(0x1000, AccessKind::Read).hit);  // cold miss
/// assert!(c.access(0x1000, AccessKind::Read).hit);   // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig, // asan-lint: allow(snapshot-completeness)
    sets: Vec<Vec<Line>>,
    stamp: u64,
    stats: CacheStats,
    line_shift: u32, // asan-lint: allow(snapshot-completeness)
    set_mask: u64,   // asan-lint: allow(snapshot-completeness)
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::num_sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let num_sets = cfg.num_sets();
        assert!(num_sets.is_power_of_two(), "set count must be 2^k");
        let sets = vec![vec![Line::default(); cfg.assoc]; num_sets as usize];
        let line_shift = cfg.line_bytes.trailing_zeros();
        Cache {
            set_mask: num_sets - 1,
            line_shift,
            cfg,
            sets,
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit/miss statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Line base address containing `addr`.
    #[inline]
    pub fn line_base(&self, addr: u64) -> u64 {
        addr >> self.line_shift << self.line_shift
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        (
            (line & self.set_mask) as usize,
            line >> self.set_mask.count_ones(),
        )
    }

    /// Presents an access; returns whether it hit and any dirty eviction.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessOutcome {
        let (set_idx, tag) = self.index(addr);
        self.stamp += 1;
        let stamp = self.stamp;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = stamp;
            if kind == AccessKind::Write {
                line.dirty = true;
            }
            self.stats.hits.inc();
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses.inc();
        // Choose victim: an invalid way if one exists, else true LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("assoc > 0");
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks.inc();
            let victim_line = (victim.tag << self.set_mask.count_ones()) | set_idx as u64;
            Some(victim_line << self.line_shift)
        } else {
            None
        };
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = kind == AccessKind::Write;
        victim.lru = stamp;
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Bulk-records `n` accesses that are known to hit resident lines.
    ///
    /// This is the accounting half of a warm-path optimisation: when a
    /// caller has proven (via [`probe`](Cache::probe)) that every line
    /// it will touch is resident — and that nothing else can evict them
    /// — it may skip the per-access lookup and record the hits in one
    /// step. Recency stamps are *not* advanced; that is only sound
    /// while the proven residency holds (no future miss means no future
    /// victim selection in the touched sets).
    pub fn record_warm_hits(&mut self, n: u64) {
        self.stats.hits.add(n);
    }

    /// Checks residency without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr` if present, returning
    /// whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.index(addr);
        for l in &mut self.sets[set_idx] {
            if l.valid && l.tag == tag {
                l.valid = false;
                return std::mem::take(&mut l.dirty);
            }
        }
        false
    }

    /// Invalidates everything (e.g. between benchmark configurations).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for l in set {
                l.valid = false;
                l.dirty = false;
            }
        }
    }

    /// Writes the dynamic state — every line's tag/valid/dirty/recency,
    /// the recency stamp, and the statistics. Geometry is configuration
    /// and is rebuilt by the caller before [`Cache::restore`].
    pub fn snapshot(&self, w: &mut SnapWriter) {
        w.u64(self.stamp);
        self.stats.snapshot(w);
        for set in &self.sets {
            for line in set {
                w.u64(line.tag);
                w.bool(line.valid);
                w.bool(line.dirty);
                w.u64(line.lru);
            }
        }
    }

    /// Overwrites this cache's dynamic state from a snapshot taken of a
    /// cache with the same geometry.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.stamp = r.u64()?;
        self.stats = CacheStats::restore(r)?;
        for set in &mut self.sets {
            for line in set {
                line.tag = r.u64()?;
                line.valid = r.bool()?;
                line.dirty = r.bool()?;
                line.lru = r.u64()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 16 B lines = 128 B.
        Cache::new(CacheConfig {
            name: "tiny",
            size_bytes: 128,
            line_bytes: 16,
            assoc: 2,
        })
    }

    #[test]
    fn snapshot_restores_tags_and_recency() {
        let mut c = tiny();
        for addr in [0u64, 16, 64, 80, 0, 128] {
            c.access(addr, AccessKind::Read);
        }
        c.access(64, AccessKind::Write); // dirty a line
        let mut w = SnapWriter::new();
        c.snapshot(&mut w);
        let bytes = w.into_bytes();

        let mut back = tiny();
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();

        assert_eq!(back.stats().hits.get(), c.stats().hits.get());
        assert_eq!(back.stats().misses.get(), c.stats().misses.get());
        // Identical future behaviour: same hits, same victims.
        for addr in [0u64, 16, 32, 48, 64, 96, 112, 144, 0, 160] {
            assert_eq!(
                c.access(addr, AccessKind::Read),
                back.access(addr, AccessKind::Read),
                "divergence at {addr:#x}"
            );
        }
        assert_eq!(back.stats().writebacks.get(), c.stats().writebacks.get());
    }

    #[test]
    fn geometry_of_paper_configs() {
        assert_eq!(CacheConfig::host_l1d().num_sets(), 256);
        assert_eq!(CacheConfig::host_l2().num_sets(), 2048);
        assert_eq!(CacheConfig::host_l1d_db().num_sets(), 64);
        assert_eq!(CacheConfig::host_l2_db().num_sets(), 256);
        assert_eq!(CacheConfig::switch_icache().num_sets(), 32);
        assert_eq!(CacheConfig::switch_dcache().num_sets(), 16);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x40, AccessKind::Read).hit);
        assert!(c.access(0x40, AccessKind::Read).hit);
        assert!(c.access(0x4F, AccessKind::Read).hit); // same line
        assert!(!c.access(0x50, AccessKind::Read).hit); // next line
        assert_eq!(c.stats().hits.get(), 2);
        assert_eq!(c.stats().misses.get(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with addr bits [5:4] == 0: 0x00, 0x80, 0x100...
        c.access(0x000, AccessKind::Read);
        c.access(0x080, AccessKind::Read);
        c.access(0x000, AccessKind::Read); // refresh 0x000
        c.access(0x100, AccessKind::Read); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn writeback_reported_with_correct_address() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Write);
        c.access(0x080, AccessKind::Read);
        // Next distinct line in set 0 evicts dirty 0x000.
        let out = c.access(0x100, AccessKind::Read);
        assert_eq!(out.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Read);
        c.access(0x080, AccessKind::Read);
        let out = c.access(0x100, AccessKind::Read);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn write_hit_dirties_line() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Read);
        c.access(0x000, AccessKind::Write); // hit, dirties
        c.access(0x080, AccessKind::Read);
        let out = c.access(0x100, AccessKind::Read);
        assert_eq!(out.writeback, Some(0x000));
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny();
        c.access(0x40, AccessKind::Write);
        assert!(c.invalidate(0x40));
        assert!(!c.probe(0x40));
        c.access(0x40, AccessKind::Read);
        assert!(!c.invalidate(0x40));
        assert!(!c.invalidate(0x40)); // already gone
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        for a in (0..128).step_by(16) {
            c.access(a, AccessKind::Read);
        }
        c.flush();
        for a in (0..128).step_by(16) {
            assert!(!c.probe(a));
        }
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = tiny();
        c.access(0x000, AccessKind::Read);
        c.access(0x080, AccessKind::Read);
        let before_hits = c.stats().hits.get();
        assert!(c.probe(0x000));
        assert_eq!(c.stats().hits.get(), before_hits);
        // LRU untouched by probe: 0x000 is still the LRU victim.
        c.access(0x100, AccessKind::Read);
        assert!(!c.probe(0x000));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny();
        // 16 distinct lines > 8-line capacity: second pass still misses.
        for pass in 0..2 {
            for a in (0u64..256).step_by(16) {
                let out = c.access(a, AccessKind::Read);
                assert!(!out.hit, "pass {pass} addr {a:#x} unexpectedly hit");
            }
        }
    }

    #[test]
    fn miss_ratio_computation() {
        let mut c = tiny();
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        c.access(0, AccessKind::Read);
        assert!((c.stats().miss_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(
            Cache::new(CacheConfig::host_l1i()).stats().miss_ratio(),
            0.0
        );
    }
}
