//! `asan-lint` CLI. See `--help` for the exit-code contract.

use std::path::PathBuf;
use std::process::ExitCode;

use asan_lint::{render_human, render_json, rules, Options};

const USAGE: &str = "\
asan-lint — determinism & event-contract checker for the Active SAN workspace

USAGE:
    cargo run -p asan-lint -- check [OPTIONS] [FILES...]

ARGS:
    [FILES...]        Check only these .rs files. Default: walk every .rs
                      file under the workspace root (skipping target/, .git/
                      and fixture directories).

OPTIONS:
    --format <human|json>   Output format (default: human)
    --root <DIR>            Workspace root (default: current directory)
    --scope-all             Apply every rule to every file, ignoring the
                            per-rule crate scopes (used by fixture tests)
    --list-rules            Print the rule catalog and exit
    -h, --help              Print this help

EXIT CODES:
    0    clean — no deny-level findings
    1    one or more deny-level findings
    2    internal error (bad arguments, unreadable file)

Findings can be suppressed per line with a trailing or preceding comment:
    // asan-lint: allow(<rule>[, <rule>...])
The rule catalog lives in docs/DETERMINISM.md.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("asan-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "-h" || a == "--help") {
        print!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    }
    if args.iter().any(|a| a == "--list-rules") {
        for r in rules::all_rules() {
            println!("{:<24} {}", r.name(), r.describe());
        }
        return Ok(ExitCode::SUCCESS);
    }
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some(other) => return Err(format!("unknown command `{other}` (try --help)")),
        None => return Err("missing command; try `asan-lint check` or --help".to_string()),
    }
    let mut opts = Options {
        root: std::env::current_dir().map_err(|e| e.to_string())?,
        ..Options::default()
    };
    let mut format = "human".to_string();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = it
                    .next()
                    .ok_or("--format needs a value (human|json)")?
                    .clone();
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}` (human|json)"));
                }
            }
            "--root" => {
                opts.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--scope-all" => opts.scope_all = true,
            flag if flag.starts_with('-') => {
                return Err(format!("unknown option `{flag}` (try --help)"));
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    let report = asan_lint::run(&opts)?;
    let rendered = if format == "json" {
        render_json(&report.diagnostics, report.checked_files)
    } else {
        render_human(&report.diagnostics, report.checked_files)
    };
    print!("{rendered}");
    Ok(if report.violations() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}
