//! The full memory hierarchy walk: TLB → L1 → (L2) → RDRAM.
//!
//! Implements the paper's host memory-system semantics (§4):
//!
//! * a **load miss stalls the processor until the first double-word of
//!   data is returned** (critical-word-first timing from the DRAM model);
//! * **prefetch and store misses do not stall** unless there are already
//!   references outstanding to four different cache lines (an MSHR file
//!   with a configurable number of entries, 4 for the host);
//! * TLB misses charge a hardware page-table walk (two dependent reads
//!   through the cache hierarchy), modeling both the latency and the
//!   cache effects of the walk.
//!
//! The same type models the switch CPU's single-level data cache by
//! setting `l2` to `None` and `mshr_entries` to 1 ("supporting only one
//! outstanding request", §4).

use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::{SimDuration, SimTime};

use crate::cache::{AccessKind, Cache, CacheConfig};
use crate::dram::{Dram, DramConfig};
use crate::tlb::{Tlb, TlbConfig};

/// Synthetic page-table region (far above any application data region).
const PAGE_TABLE_BASE: u64 = 0xF000_0000_0000;

/// Configuration of a complete hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// Instruction cache geometry.
    pub l1i: CacheConfig,
    /// Data cache geometry.
    pub l1d: CacheConfig,
    /// Unified second-level cache, if present.
    pub l2: Option<CacheConfig>,
    /// Instruction TLB, if modeled.
    pub itlb: Option<TlbConfig>,
    /// Data TLB, if modeled.
    pub dtlb: Option<TlbConfig>,
    /// Memory channel behind the last cache level.
    pub dram: DramConfig,
    /// Clock of the CPU this hierarchy serves (for cycle-denominated
    /// latencies).
    pub hz: u64,
    /// L2 hit latency in CPU cycles (charged as stall on an L1 miss).
    pub l2_hit_cycles: u64,
    /// Maximum outstanding line fills before a non-blocking access stalls.
    pub mshr_entries: usize,
}

impl HierarchyConfig {
    /// The paper's host hierarchy: 32 KB 2-way L1s, 512 KB 2-way L2
    /// (128 B lines), 64-entry TLBs, RDRAM, 2 GHz, 4 outstanding lines.
    pub fn host() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::host_l1i(),
            l1d: CacheConfig::host_l1d(),
            l2: Some(CacheConfig::host_l2()),
            itlb: Some(TlbConfig::paper()),
            dtlb: Some(TlbConfig::paper()),
            dram: DramConfig::paper(),
            hz: 2_000_000_000,
            l2_hit_cycles: 12,
            mshr_entries: 4,
        }
    }

    /// The database-scaled host hierarchy used for HashJoin and Select:
    /// 8 KB L1D and 64 KB L2, same line sizes and associativities (§4).
    pub fn host_db() -> Self {
        HierarchyConfig {
            l1d: CacheConfig::host_l1d_db(),
            l2: Some(CacheConfig::host_l2_db()),
            ..HierarchyConfig::host()
        }
    }

    /// The switch CPU's hierarchy: 4 KB I-cache, 1 KB D-cache, no L2,
    /// one outstanding request, 500 MHz, same RDRAM parameters (§4).
    pub fn switch_cpu() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::switch_icache(),
            l1d: CacheConfig::switch_dcache(),
            l2: None,
            itlb: None,
            dtlb: None,
            dram: DramConfig::paper(),
            hz: 500_000_000,
            l2_hit_cycles: 0,
            mshr_entries: 1,
        }
    }
}

/// What happened on one memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOutcome {
    /// Stall time beyond the pipelined L1 hit (zero on an L1 hit).
    pub stall: SimDuration,
    /// L1 hit?
    pub l1_hit: bool,
    /// L2 hit (only meaningful when L1 missed and an L2 exists)?
    pub l2_hit: bool,
    /// Did this reference take a TLB miss?
    pub tlb_miss: bool,
}

/// Aggregate hierarchy statistics useful for reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierarchyStats {
    /// Demand loads issued.
    pub loads: u64,
    /// Demand stores issued.
    pub stores: u64,
    /// Software prefetches issued.
    pub prefetches: u64,
    /// Instruction fetch accesses (one per line crossed).
    pub ifetches: u64,
}

/// One outstanding line fill.
#[derive(Debug, Clone, Copy)]
struct Mshr {
    line: u64,
    fill_done: SimTime,
}

/// A complete cache/TLB/DRAM hierarchy serving one CPU.
///
/// All methods take the current simulated time and return a
/// [`MemOutcome`] whose `stall` the CPU adds to its cache-stall bucket.
///
/// # Example
///
/// ```
/// use asan_mem::hierarchy::{MemoryHierarchy, HierarchyConfig};
/// use asan_sim::SimTime;
/// let mut m = MemoryHierarchy::new(HierarchyConfig::host());
/// let miss = m.load(0x10_0000, SimTime::ZERO);
/// assert!(!miss.l1_hit && miss.stall.as_ns() > 0);
/// let hit = m.load(0x10_0000, SimTime::from_ns(500));
/// assert!(hit.l1_hit && hit.stall.as_ns() == 0);
/// ```
#[derive(Debug)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig, // asan-lint: allow(snapshot-completeness)
    l1i: Cache,
    l1d: Cache,
    l2: Option<Cache>,
    itlb: Option<Tlb>,
    dtlb: Option<Tlb>,
    dram: Dram,
    mshrs: Vec<Mshr>,
    stats: HierarchyStats,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from its configuration.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(cfg.l1i.clone()),
            l1d: Cache::new(cfg.l1d.clone()),
            l2: cfg.l2.clone().map(Cache::new),
            itlb: cfg.itlb.map(Tlb::new),
            dtlb: cfg.dtlb.map(Tlb::new),
            dram: Dram::new(cfg.dram),
            mshrs: Vec::new(),
            stats: HierarchyStats::default(),
            cfg,
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Aggregate access counts.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// The L1 data cache (for inspection in tests and reports).
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The unified L2, if configured.
    pub fn l2(&self) -> Option<&Cache> {
        self.l2.as_ref()
    }

    /// The instruction TLB, if configured.
    pub fn itlb(&self) -> Option<&Tlb> {
        self.itlb.as_ref()
    }

    /// The DRAM channel.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    fn l2_hit_latency(&self) -> SimDuration {
        SimDuration::cycles(self.cfg.l2_hit_cycles, self.cfg.hz)
    }

    /// Charges a hardware page-table walk: two dependent 8-byte reads
    /// through the L2 (they often hit — page tables are small and hot).
    fn walk_page_table(&mut self, addr: u64, mut now: SimTime) -> SimDuration {
        let start = now;
        let page = addr >> 12;
        let entries = [
            PAGE_TABLE_BASE + (page >> 9) * 8,
            PAGE_TABLE_BASE + 0x1000_0000 + page * 8,
        ];
        for pte in entries {
            match &mut self.l2 {
                Some(l2) => {
                    if l2.access(pte, AccessKind::Read).hit {
                        now += self.l2_hit_latency();
                    } else {
                        let a = self.dram.access(pte, 8, now + self.l2_hit_latency());
                        now = a.first_data;
                    }
                }
                None => {
                    let a = self.dram.access(pte, 8, now);
                    now = a.first_data;
                }
            }
        }
        now.since(start)
    }

    /// Looks `addr` up in `tlb` (if any); returns the walk stall.
    fn tlb_check(tlb: &mut Option<Tlb>, addr: u64) -> bool {
        match tlb {
            Some(t) => !t.access(addr),
            None => false,
        }
    }

    /// Retires MSHR entries whose fills completed by `now`.
    fn drain_mshrs(&mut self, now: SimTime) {
        self.mshrs.retain(|m| m.fill_done > now);
    }

    /// If `line` is already being fetched, the time its fill completes.
    fn outstanding_fill(&self, line: u64) -> Option<SimTime> {
        self.mshrs
            .iter()
            .find(|m| m.line == line)
            .map(|m| m.fill_done)
    }

    /// A blocking data load. Returns the stall beyond a pipelined L1 hit.
    pub fn load(&mut self, addr: u64, now: SimTime) -> MemOutcome {
        self.stats.loads += 1;
        self.data_access(addr, now, DataKind::Load)
    }

    /// A store. Non-blocking on miss while MSHRs are available.
    pub fn store(&mut self, addr: u64, now: SimTime) -> MemOutcome {
        self.stats.stores += 1;
        self.data_access(addr, now, DataKind::Store)
    }

    /// A software prefetch. Non-blocking on miss while MSHRs are
    /// available; never stalls for the fill itself.
    pub fn prefetch(&mut self, addr: u64, now: SimTime) -> MemOutcome {
        self.stats.prefetches += 1;
        self.data_access(addr, now, DataKind::Prefetch)
    }

    /// An instruction fetch of the line containing `addr`.
    pub fn ifetch(&mut self, addr: u64, now: SimTime) -> MemOutcome {
        self.stats.ifetches += 1;
        let mut stall = SimDuration::ZERO;
        let tlb_miss = Self::tlb_check(&mut self.itlb, addr);
        if tlb_miss {
            stall += self.walk_page_table(addr, now);
        }
        let out = self.l1i.access(addr, AccessKind::Read);
        if out.hit {
            return MemOutcome {
                stall,
                l1_hit: true,
                l2_hit: false,
                tlb_miss,
            };
        }
        // Instruction misses always block (in-order front end).
        let (fill_stall, l2_hit) =
            self.fill_from_below(addr, self.cfg.l1i.line_bytes, now + stall, true);
        MemOutcome {
            stall: stall + fill_stall,
            l1_hit: false,
            l2_hit,
            tlb_miss,
        }
    }

    /// Whether every instruction line in `[base, base + bytes)` is
    /// resident in the L1I *and* every page it spans is resident in the
    /// I-TLB (trivially true when no I-TLB is configured). Uses
    /// stats-neutral probes, so checking residency never perturbs the
    /// counters.
    ///
    /// Once this holds, it holds forever *provided only instruction
    /// fetches within the same range touch the L1I and I-TLB*: hits
    /// never replace, so nothing can be evicted.
    pub fn ifetch_resident(&self, base: u64, bytes: u64) -> bool {
        let line = self.cfg.l1i.line_bytes;
        let mut addr = base & !(line - 1);
        while addr < base + bytes {
            if !self.l1i.probe(addr) {
                return false;
            }
            addr += line;
        }
        if let Some(t) = &self.itlb {
            let page = t.config().page_bytes;
            let mut addr = base & !(page - 1);
            while addr < base + bytes {
                if !t.probe(addr) {
                    return false;
                }
                addr += page;
            }
        }
        true
    }

    /// Bulk-accounts `fetches` instruction fetches that are known to hit
    /// (see [`ifetch_resident`](MemoryHierarchy::ifetch_resident)):
    /// bumps exactly the counters `fetches` calls to
    /// [`ifetch`](MemoryHierarchy::ifetch) would — `ifetches`, I-TLB
    /// hits, L1I hits — with zero stall and no state changes.
    pub fn ifetch_warm(&mut self, fetches: u64) {
        self.stats.ifetches += fetches;
        if let Some(t) = &mut self.itlb {
            t.record_warm_hits(fetches);
        }
        self.l1i.record_warm_hits(fetches);
    }

    /// Fetches a line from L2/DRAM. Returns (stall-until-first-data,
    /// l2_hit). When `blocking` is false the returned stall is zero and
    /// the fill occupies an MSHR instead.
    fn fill_from_below(
        &mut self,
        addr: u64,
        line_bytes: u64,
        now: SimTime,
        blocking: bool,
    ) -> (SimDuration, bool) {
        // Merge with an outstanding fill of the same L1 line.
        let l1_line = addr & !(line_bytes - 1);
        if let Some(done) = self.outstanding_fill(l1_line) {
            return if blocking {
                (done.saturating_since(now), false)
            } else {
                (SimDuration::ZERO, false)
            };
        }

        let (first_data, fill_done, l2_hit) = match &mut self.l2 {
            Some(l2) => {
                let l2_out = l2.access(addr, AccessKind::Read);
                if l2_out.hit {
                    let t = now + self.l2_hit_latency();
                    (t, t, true)
                } else {
                    // L2 miss: fetch the (larger) L2 line from DRAM; any
                    // dirty victim is written back, consuming channel time
                    // but not stalling the CPU.
                    let l2_line = self.cfg.l2.as_ref().expect("l2 exists").line_bytes;
                    let issue = now + self.l2_hit_latency();
                    let a = self.dram.access(addr & !(l2_line - 1), l2_line, issue);
                    if let Some(victim) = l2_out.writeback {
                        self.dram.access(victim, l2_line, a.complete);
                    }
                    (a.first_data, a.complete, false)
                }
            }
            None => {
                let a = self.dram.access(l1_line, line_bytes, now);
                (a.first_data, a.complete, false)
            }
        };

        if blocking {
            (first_data.saturating_since(now), l2_hit)
        } else {
            self.mshrs.push(Mshr {
                line: l1_line,
                fill_done,
            });
            (SimDuration::ZERO, l2_hit)
        }
    }

    fn data_access(&mut self, addr: u64, now: SimTime, kind: DataKind) -> MemOutcome {
        let mut stall = SimDuration::ZERO;
        let tlb_miss = Self::tlb_check(&mut self.dtlb, addr);
        if tlb_miss {
            stall += self.walk_page_table(addr, now);
        }
        let mut now = now + stall;
        self.drain_mshrs(now);

        let access_kind = match kind {
            DataKind::Store => AccessKind::Write,
            _ => AccessKind::Read,
        };
        let out = self.l1d.access(addr, access_kind);
        if out.hit {
            // A load that hits L1 on a line still being filled must wait
            // for the fill (the tag was installed at fetch time).
            let line = self.l1d.line_base(addr);
            if kind == DataKind::Load {
                if let Some(done) = self.outstanding_fill(line) {
                    stall += done.saturating_since(now);
                }
            }
            return MemOutcome {
                stall,
                l1_hit: true,
                l2_hit: false,
                tlb_miss,
            };
        }
        // Dirty L1 victim is written into L2 (tag update only at this
        // fidelity; the L2 line becomes dirty and eventually pays DRAM
        // bandwidth when evicted).
        if let Some(victim) = out.writeback {
            if let Some(l2) = &mut self.l2 {
                l2.access(victim, AccessKind::Write);
            } else {
                self.dram.access(victim, self.cfg.l1d.line_bytes, now);
            }
        }

        let blocking = match kind {
            DataKind::Load => true,
            DataKind::Store | DataKind::Prefetch => {
                // Non-blocking while MSHRs are free; otherwise stall until
                // the earliest outstanding fill retires (the paper's
                // "four different cache lines" rule).
                if self.mshrs.len() >= self.cfg.mshr_entries {
                    let earliest = self
                        .mshrs
                        .iter()
                        .map(|m| m.fill_done)
                        .min()
                        .expect("mshrs non-empty");
                    stall += earliest.saturating_since(now);
                    now = now.max(earliest);
                    self.drain_mshrs(now);
                }
                false
            }
        };
        let (fill_stall, l2_hit) =
            self.fill_from_below(addr, self.cfg.l1d.line_bytes, now, blocking);
        MemOutcome {
            stall: stall + fill_stall,
            l1_hit: false,
            l2_hit,
            tlb_miss,
        }
    }

    /// Clears the aggregate access counters (used after warm-up).
    pub fn reset_access_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// Writes the dynamic state of every level — both L1s, the L2 and
    /// TLBs when present, the DRAM channel, outstanding line fills, and
    /// the aggregate access counters.
    pub fn snapshot(&self, w: &mut SnapWriter) {
        self.l1i.snapshot(w);
        self.l1d.snapshot(w);
        w.bool(self.l2.is_some());
        if let Some(l2) = &self.l2 {
            l2.snapshot(w);
        }
        w.bool(self.itlb.is_some());
        if let Some(t) = &self.itlb {
            t.snapshot(w);
        }
        w.bool(self.dtlb.is_some());
        if let Some(t) = &self.dtlb {
            t.snapshot(w);
        }
        self.dram.snapshot(w);
        w.usize(self.mshrs.len());
        for m in &self.mshrs {
            w.u64(m.line);
            w.time(m.fill_done);
        }
        w.u64(self.stats.loads);
        w.u64(self.stats.stores);
        w.u64(self.stats.prefetches);
        w.u64(self.stats.ifetches);
    }

    /// Overwrites this hierarchy's dynamic state from a snapshot taken
    /// of a hierarchy built from the same configuration.
    pub fn restore(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.l1i.restore(r)?;
        self.l1d.restore(r)?;
        let has_l2 = r.bool()?;
        if has_l2 != self.l2.is_some() {
            return Err(SnapError::Malformed("L2 presence mismatch"));
        }
        if let Some(l2) = &mut self.l2 {
            l2.restore(r)?;
        }
        let has_itlb = r.bool()?;
        if has_itlb != self.itlb.is_some() {
            return Err(SnapError::Malformed("I-TLB presence mismatch"));
        }
        if let Some(t) = &mut self.itlb {
            t.restore(r)?;
        }
        let has_dtlb = r.bool()?;
        if has_dtlb != self.dtlb.is_some() {
            return Err(SnapError::Malformed("D-TLB presence mismatch"));
        }
        if let Some(t) = &mut self.dtlb {
            t.restore(r)?;
        }
        self.dram.restore(r)?;
        let n = r.usize()?;
        self.mshrs.clear();
        for _ in 0..n {
            let line = r.u64()?;
            let fill_done = r.time()?;
            self.mshrs.push(Mshr { line, fill_done });
        }
        self.stats = HierarchyStats {
            loads: r.u64()?,
            stores: r.u64()?,
            prefetches: r.u64()?,
            ifetches: r.u64()?,
        };
        Ok(())
    }

    /// Flushes all caches, TLBs and DRAM row state.
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        if let Some(l2) = &mut self.l2 {
            l2.flush();
        }
        if let Some(t) = &mut self.itlb {
            t.flush();
        }
        if let Some(t) = &mut self.dtlb {
            t.flush();
        }
        self.dram.flush();
        self.mshrs.clear();
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DataKind {
    Load,
    Store,
    Prefetch,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig::host())
    }

    /// A hierarchy with TLBs disabled, to test pure cache behaviour.
    fn host_no_tlb() -> MemoryHierarchy {
        MemoryHierarchy::new(HierarchyConfig {
            itlb: None,
            dtlb: None,
            ..HierarchyConfig::host()
        })
    }

    #[test]
    fn l1_hit_has_zero_stall() {
        let mut m = host_no_tlb();
        m.load(0x1000, SimTime::ZERO);
        let t = SimTime::from_ns(1000);
        let out = m.load(0x1000, t);
        assert!(out.l1_hit);
        assert_eq!(out.stall, SimDuration::ZERO);
    }

    #[test]
    fn load_miss_stalls_until_first_data() {
        let mut m = host_no_tlb();
        let out = m.load(0x1000, SimTime::ZERO);
        assert!(!out.l1_hit && !out.l2_hit);
        // 12-cycle L2 lookup (6 ns) + 122 ns page miss + 5 ns first 8 B.
        let ns = out.stall.as_ns();
        assert!((120..140).contains(&ns), "stall = {ns} ns");
    }

    #[test]
    fn l2_hit_is_cheap() {
        let mut m = host_no_tlb();
        m.load(0x1000, SimTime::ZERO); // fills L1 and L2
                                       // Evict from tiny? L1 is 32 KB; instead touch a second address in
                                       // the same L1 set far apart to evict, then re-load: should hit L2.
                                       // L1D: 256 sets * 64 B = 16 KB stride per way.
        m.load(0x1000 + 16 * 1024, SimTime::from_ns(1000));
        m.load(0x1000 + 32 * 1024, SimTime::from_ns(2000)); // evicts 0x1000 from L1
        let out = m.load(0x1000, SimTime::from_ns(3000));
        assert!(!out.l1_hit);
        assert!(out.l2_hit, "expected L2 hit: {out:?}");
        assert_eq!(out.stall.as_ns(), 6); // 12 cycles at 2 GHz
    }

    #[test]
    fn store_miss_does_not_stall_when_mshrs_free() {
        let mut m = host_no_tlb();
        let out = m.store(0x9000, SimTime::ZERO);
        assert!(!out.l1_hit);
        assert_eq!(out.stall, SimDuration::ZERO);
    }

    #[test]
    fn fifth_outstanding_line_stalls() {
        let mut m = host_no_tlb();
        let t = SimTime::ZERO;
        for i in 0..4u64 {
            let out = m.store(0x10_0000 + i * 4096, t);
            assert_eq!(out.stall, SimDuration::ZERO, "store {i} stalled");
        }
        let out = m.store(0x10_0000 + 4 * 4096, t);
        assert!(
            out.stall.as_ns() > 0,
            "fifth outstanding store should stall: {out:?}"
        );
    }

    #[test]
    fn mshrs_drain_over_time() {
        let mut m = host_no_tlb();
        for i in 0..4u64 {
            m.store(0x10_0000 + i * 4096, SimTime::ZERO);
        }
        // Long after all fills have completed, a new store is free again.
        let out = m.store(0x20_0000, SimTime::from_us(10));
        assert_eq!(out.stall, SimDuration::ZERO);
    }

    #[test]
    fn load_merges_with_outstanding_prefetch() {
        let mut m = host_no_tlb();
        m.prefetch(0x5000, SimTime::ZERO);
        // Immediately loading the same line stalls only the fill
        // remainder, not a fresh DRAM access.
        let misses_before = m.dram().stats().page_misses.get() + m.dram().stats().page_hits.get();
        let out = m.load(0x5000, SimTime::from_ns(10));
        let misses_after = m.dram().stats().page_misses.get() + m.dram().stats().page_hits.get();
        assert_eq!(misses_before, misses_after, "no second DRAM access");
        assert!(out.stall.as_ns() > 0, "fill not yet complete");
        // And long after the fill, it's a plain hit.
        let out2 = m.load(0x5000, SimTime::from_us(5));
        assert!(out2.l1_hit);
        assert_eq!(out2.stall, SimDuration::ZERO);
    }

    #[test]
    fn tlb_miss_charges_walk() {
        let mut m = host();
        let cold = m.load(0x4000_0000, SimTime::ZERO);
        assert!(cold.tlb_miss);
        let mut warm = host();
        warm.load(0x4000_0000, SimTime::ZERO);
        // Second access to the same page: no TLB miss.
        let again = warm.load(0x4000_0040, SimTime::from_us(1));
        assert!(!again.tlb_miss);
    }

    #[test]
    fn ifetch_uses_l1i() {
        let mut m = host_no_tlb();
        let out = m.ifetch(0x100, SimTime::ZERO);
        assert!(!out.l1_hit);
        let out2 = m.ifetch(0x104, SimTime::from_ns(500));
        assert!(out2.l1_hit);
        assert_eq!(m.stats().ifetches, 2);
    }

    #[test]
    fn switch_cpu_hierarchy_has_no_l2_and_blocks() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::switch_cpu());
        let out = m.load(0x2000, SimTime::ZERO);
        assert!(!out.l1_hit && !out.l2_hit);
        // No L2: straight to DRAM. 122 ns + 5 ns first data.
        assert_eq!(out.stall.as_ns(), 127);
        // One outstanding request: a second store miss while one is in
        // flight stalls.
        m.store(0x4000, SimTime::from_us(1));
        let out2 = m.store(0x8000, SimTime::from_us(1));
        assert!(out2.stall.as_ns() > 0);
    }

    #[test]
    fn streaming_working_set_thrashes_l2_and_stalls() {
        let mut m = host_no_tlb();
        // Stream 2 MB (4x the 512 KB L2); every line is a cold miss.
        let mut t = SimTime::ZERO;
        let mut total_stall = SimDuration::ZERO;
        for addr in (0u64..2 * 1024 * 1024).step_by(128) {
            let out = m.load(0x4000_0000 + addr, t);
            assert!(!out.l1_hit);
            total_stall += out.stall;
            t = t + out.stall + SimDuration::from_ns(10);
        }
        assert!(
            total_stall.as_us() > 500,
            "streaming should be memory-bound"
        );
    }

    #[test]
    fn l2_dirty_eviction_consumes_dram_bandwidth() {
        let mut m = host_no_tlb();
        // Dirty many distinct L2 sets then stream far past capacity so
        // dirty L2 lines get evicted to DRAM.
        for i in 0..8192u64 {
            m.store(0x1000_0000 + i * 128, SimTime::from_ns(i * 10));
        }
        let bytes_before = m.dram().stats().bytes.get();
        for i in 0..8192u64 {
            m.load(
                0x3000_0000 + i * 128,
                SimTime::from_ms(1) + SimDuration::from_ns(i * 200),
            );
        }
        let bytes_after = m.dram().stats().bytes.get();
        // The second stream fetches 1 MB and must also write back a
        // substantial share of the dirtied first megabyte.
        assert!(
            bytes_after - bytes_before > 1024 * 1024 + 256 * 1024,
            "no write-back traffic observed: {} -> {}",
            bytes_before,
            bytes_after
        );
    }

    #[test]
    fn db_hierarchy_thrashes_sooner_than_default() {
        // The 8x scaled caches exist precisely to make the working set
        // exceed L2: a 128 KB stream misses in the 64 KB DB L2 but fits
        // the 512 KB default L2 on the second pass.
        let run = |cfg: HierarchyConfig| {
            let mut m = MemoryHierarchy::new(HierarchyConfig {
                itlb: None,
                dtlb: None,
                ..cfg
            });
            let mut t = SimTime::ZERO;
            // First pass: populate.
            for i in 0..2048u64 {
                let o = m.load(0x5000_0000 + i * 64, t);
                t = t + o.stall + SimDuration::from_ns(5);
            }
            // Second pass: measure stalls.
            let mut stall = SimDuration::ZERO;
            for i in 0..2048u64 {
                let o = m.load(0x5000_0000 + i * 64, t);
                stall += o.stall;
                t = t + o.stall + SimDuration::from_ns(5);
            }
            stall
        };
        let default = run(HierarchyConfig::host());
        let db = run(HierarchyConfig::host_db());
        assert!(
            db > default * 2,
            "scaled caches should thrash: db {db} vs default {default}"
        );
    }

    #[test]
    fn flush_resets_everything() {
        let mut m = host_no_tlb();
        m.load(0x1000, SimTime::ZERO);
        m.flush();
        let out = m.load(0x1000, SimTime::from_us(1));
        assert!(!out.l1_hit);
    }

    #[test]
    fn hierarchy_snapshot_preserves_future_timing() {
        let drive = |m: &mut MemoryHierarchy, base: u64, t0: SimTime| {
            let mut outs = Vec::new();
            let mut t = t0;
            for i in 0..200u64 {
                let o = match i % 4 {
                    0 => m.load(base + i * 72, t),
                    1 => m.store(base + i * 72, t),
                    2 => m.prefetch(base + (i + 7) * 72, t),
                    _ => m.ifetch(0x100 + i * 4, t),
                };
                outs.push(o);
                t = t + o.stall + SimDuration::from_ns(3);
            }
            outs
        };
        let mut m = MemoryHierarchy::new(HierarchyConfig::host());
        drive(&mut m, 0x4000_0000, SimTime::ZERO);

        let mut w = SnapWriter::new();
        m.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = MemoryHierarchy::new(HierarchyConfig::host());
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();

        // Continue both with the same access stream: every outcome
        // (stall timing, hit levels, TLB behaviour) must match.
        let a = drive(&mut m, 0x4000_2000, SimTime::from_us(40));
        let b = drive(&mut back, 0x4000_2000, SimTime::from_us(40));
        assert_eq!(a, b);
        assert_eq!(m.stats().loads, back.stats().loads);
        assert_eq!(
            m.dram().stats().bytes.get(),
            back.dram().stats().bytes.get()
        );
    }

    #[test]
    fn switch_hierarchy_snapshot_round_trips() {
        let mut m = MemoryHierarchy::new(HierarchyConfig::switch_cpu());
        m.load(0x2000, SimTime::ZERO);
        m.store(0x4000, SimTime::from_ns(500));
        let mut w = SnapWriter::new();
        m.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut back = MemoryHierarchy::new(HierarchyConfig::switch_cpu());
        let mut r = SnapReader::new(&bytes).unwrap();
        back.restore(&mut r).unwrap();
        r.finish().unwrap();
        let t = SimTime::from_us(2);
        assert_eq!(m.load(0x2000, t), back.load(0x2000, t));
        // Restoring into a mismatched geometry fails loudly.
        let mut wrong = MemoryHierarchy::new(HierarchyConfig::host());
        let mut r2 = SnapReader::new(&bytes).unwrap();
        assert!(wrong.restore(&mut r2).is_err());
    }

    #[test]
    fn stats_track_access_kinds() {
        let mut m = host_no_tlb();
        m.load(0, SimTime::ZERO);
        m.store(64, SimTime::ZERO);
        m.prefetch(128, SimTime::ZERO);
        m.ifetch(0, SimTime::ZERO);
        let s = m.stats();
        assert_eq!((s.loads, s.stores, s.prefetches, s.ifetches), (1, 1, 1, 1));
    }
}
