//! Multi-switch scale sweep: the speedup figure behind in-network
//! aggregation.
//!
//! `repro scale` runs the collective reduction across a grid of node
//! counts × fat-tree radices × handler placements, times the host-side
//! MST baseline against the active fabric, and emits the
//! `bench-scale-v1` JSON document this module defines. `analyze scale`
//! renders the same speedup table offline. All values are simulated
//! (integral picoseconds) — the document is deterministic and safe to
//! commit or diff.

use crate::json::{self, Value};

/// One cell of the scale sweep: a node count on a topology, reduced
/// under one handler placement, with the host-side MST baseline of the
/// same fabric alongside.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleSample {
    /// Participating hosts.
    pub hosts: u64,
    /// Topology label ([`asan_net::TopoSpec::label`], e.g.
    /// "fat-tree-r4").
    pub topo: String,
    /// Handler placement label ([`asan_core::HandlerPlacement::label`]).
    pub placement: String,
    /// Host-side MST completion latency, simulated picoseconds.
    pub normal_ps: u64,
    /// Active in-fabric completion latency, simulated picoseconds.
    pub active_ps: u64,
}

impl ScaleSample {
    /// Speedup of the active fabric over the host-side baseline.
    pub fn speedup(&self) -> f64 {
        self.normal_ps as f64 / self.active_ps.max(1) as f64
    }
}

/// A full scale document: the grid in sweep order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleDoc {
    /// Sweep cells, in canonical hosts × topology × placement order.
    pub samples: Vec<ScaleSample>,
}

/// Renders the scale JSON document (`bench-scale-v1`). Fixed field
/// order, integral values only.
pub fn scale_json(samples: &[ScaleSample]) -> String {
    let mut out = String::from("{\"schema\":\"bench-scale-v1\",\"samples\":[");
    for (i, s) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"hosts\":{},\"topo\":\"{}\",\"placement\":\"{}\",\
             \"normal_ps\":{},\"active_ps\":{}}}",
            s.hosts, s.topo, s.placement, s.normal_ps, s.active_ps
        ));
    }
    out.push_str("]}\n");
    out
}

/// Parses a scale document produced by [`scale_json`].
///
/// # Errors
///
/// Returns a description of the first malformed or missing field.
pub fn parse_scale_doc(text: &str) -> Result<ScaleDoc, String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let schema = doc.get("schema").and_then(Value::as_str).unwrap_or("");
    if schema != "bench-scale-v1" {
        return Err(format!("unknown scale schema {schema:?}"));
    }
    let field = |v: &Value, k: &str| -> Result<u64, String> {
        v.get(k)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("missing numeric field {k:?}"))
    };
    let text_field = |v: &Value, k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing string field {k:?}"))
    };
    let arr = doc
        .get("samples")
        .and_then(Value::as_arr)
        .ok_or("missing \"samples\" array")?;
    let mut samples = Vec::new();
    for s in arr {
        samples.push(ScaleSample {
            hosts: field(s, "hosts")?,
            topo: text_field(s, "topo")?,
            placement: text_field(s, "placement")?,
            normal_ps: field(s, "normal_ps")?,
            active_ps: field(s, "active_ps")?,
        });
    }
    Ok(ScaleDoc { samples })
}

/// Renders the human speedup table: one row per sweep cell, active
/// latency against the host-side MST of the same node count and
/// fabric.
pub fn scale_report(doc: &ScaleDoc) -> String {
    let mut out = String::new();
    out.push_str("== Scale: in-network aggregation vs host-side MST ==\n");
    out.push_str(&format!(
        "{:<8} {:<14} {:<10} {:>14} {:>14} {:>9}\n",
        "hosts", "topology", "placement", "normal (us)", "active (us)", "speedup"
    ));
    for s in &doc.samples {
        out.push_str(&format!(
            "{:<8} {:<14} {:<10} {:>14.2} {:>14.2} {:>8.2}x\n",
            s.hosts,
            s.topo,
            s.placement,
            s.normal_ps as f64 / 1e6,
            s.active_ps as f64 / 1e6,
            s.speedup(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(hosts: u64, placement: &str) -> ScaleSample {
        ScaleSample {
            hosts,
            topo: "fat-tree-r4".to_string(),
            placement: placement.to_string(),
            normal_ps: 4_000_000,
            active_ps: 1_000_000,
        }
    }

    #[test]
    fn scale_json_roundtrips_through_the_parser() {
        let samples = vec![sample(64, "nca"), sample(256, "striped")];
        let doc = parse_scale_doc(&scale_json(&samples)).expect("parses");
        assert_eq!(doc.samples, samples);
    }

    #[test]
    fn scale_report_renders_speedups() {
        let doc = ScaleDoc {
            samples: vec![sample(64, "root")],
        };
        let t = scale_report(&doc);
        assert!(t.contains("fat-tree-r4"), "table:\n{t}");
        assert!(t.contains("root"));
        assert!(t.contains("4.00x"), "speedup column:\n{t}");
    }

    #[test]
    fn parse_scale_doc_rejects_malformed_input() {
        assert!(parse_scale_doc("{}").is_err());
        assert!(parse_scale_doc("not json").is_err());
        assert!(parse_scale_doc("{\"schema\":\"bench-scale-v1\"}").is_err());
        assert!(
            parse_scale_doc("{\"schema\":\"bench-scale-v9\",\"samples\":[]}").is_err(),
            "unknown schema must be rejected"
        );
    }
}
