//! Known-bad: `retries` was added to the stats but never folded into
//! the digest, the metrics report grew a `dropped_spans` counter its
//! own digest never sees, and the timeline's per-window `samples`
//! never reach its digest — the golden-digest net cannot catch any of
//! them drifting.

pub struct LinkSnapshot {
    pub bytes: u64,
    pub stalls: u64,
}

pub struct ClusterStats {
    pub events: u64,
    pub retries: u64,
    pub link: LinkSnapshot,
}

impl ClusterStats {
    pub fn digest(&self) -> u64 {
        let mut h = fold(0xcbf2_9ce4_8422_2325, self.events);
        h = fold(h, self.link.bytes);
        fold(h, self.link.stalls)
    }
}

pub struct MetricsReport {
    pub total_ps: u64,
    pub dropped_spans: u64,
}

impl MetricsReport {
    pub fn digest(&self) -> u64 {
        fold(0xcbf2_9ce4_8422_2325, self.total_ps)
    }
}

pub struct Track {
    pub kind: u8,
    pub key: u64,
    pub samples: Vec<u64>,
}

pub struct Timeline {
    pub window_ps: u64,
    pub tracks: Vec<Track>,
}

impl Timeline {
    pub fn digest(&self, seed: u64) -> u64 {
        let mut h = fold(seed, self.window_ps);
        for t in &self.tracks {
            h = fold(h, u64::from(t.kind));
            h = fold(h, t.key);
        }
        h
    }
}
