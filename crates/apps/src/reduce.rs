//! Collective Reduction (§5, Table 2, Figures 15–16).
//!
//! `p` nodes combine 512-byte vectors (u32 lanes, sum). Two result
//! distributions are modeled:
//!
//! * **Reduce-to-one** — node 0 gets the full result vector;
//! * **Distributed Reduce** — node `i` gets slice `i` of the result.
//!
//! The **normal** case is the classic minimum-spanning-tree algorithm
//! over hosts: ⌈log₂ p⌉ rounds of `α + λ` each. The **active** case
//! sends every vector into the switch fabric: each leaf switch combines
//! the 8 vectors of its hosts, parents combine their children's partial
//! results, and the root delivers — latency `α + γ + ⌈log_{N/2} p⌉·δ`,
//! which is how the paper beats the MST lower bound and reaches
//! speedups of 5.61 / 5.92 at 128 nodes.

use asan_core::cluster::{Cluster, ClusterConfig, HostCtx, HostMsg, HostProgram};
use asan_core::handler::{Handler, HandlerCtx};
use asan_core::{aggregation_tree, HandlerPlacement};
use asan_net::{HandlerId, NodeId, TopoSpec};
use asan_sim::snap::{SnapError, SnapReader, SnapWriter};
use asan_sim::SimTime;

use crate::cost;
use crate::data::{reduce_vector, vector_add};
use crate::runner::drive;

/// Handler ID of the combine handler (same on every switch).
pub const REDUCE_HANDLER: HandlerId = HandlerId::new_const(9);

/// Flow tag of result delivery to hosts.
pub const RESULT: HandlerId = HandlerId::new_const(41);

/// Handler ID for broadcasting the result down the switch tree
/// (Reduce-to-all).
pub const BCAST_HANDLER: HandlerId = HandlerId::new_const(10);

/// Vector size in bytes (512 in §5).
pub const VECTOR_BYTES: usize = 512;

/// Hosts attached to each leaf switch (8 of 16 ports, §5).
pub const HOSTS_PER_LEAF: usize = 8;

/// Which reduction is performed (Table 2 lists all three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Result vector delivered whole to node 0.
    ReduceToOne,
    /// Result vector sliced across all nodes.
    Distributed,
    /// Result vector delivered whole to every node ("results for
    /// Reduce-to-all are similar to those for Reduce-to-one", §5) —
    /// the active case broadcasts by *replication in the switches*.
    ToAll,
}

impl Mode {
    /// Canonical tag used in checkpoint/bench naming.
    pub fn tag(self) -> &'static str {
        match self {
            Mode::ReduceToOne => "reduce-to-one",
            Mode::Distributed => "distributed-reduce",
            Mode::ToAll => "reduce-to-all",
        }
    }
}

/// The reduction result as computed by the simulation, for validation.
pub fn reference_sum(p: usize) -> Vec<u8> {
    let mut acc = reduce_vector(0);
    for i in 1..p {
        vector_add(&mut acc, &reduce_vector(i));
    }
    acc
}

/// Pieces of a reduction topology: the cluster, the hosts, all
/// switches, each host's leaf switch, each switch's parent, and the
/// root switch.
pub type ReductionCluster = (
    Cluster,
    Vec<NodeId>,
    Vec<NodeId>,
    Vec<NodeId>,
    std::collections::BTreeMap<NodeId, NodeId>,
    NodeId,
);

/// The declarative spec of the §5 reduction fabric: a radix-16
/// fat-tree (8 hosts per leaf, 8-way upward aggregation), pinned to
/// the seed's endpoint-drain credit model so the golden digests stay
/// bit-identical with the hand-built topology it replaced.
pub fn reduction_spec(p: usize) -> TopoSpec {
    assert!(p >= 2, "reduction needs at least two nodes");
    TopoSpec::fat_tree(2 * HOSTS_PER_LEAF, p, 0).endpoint_drain()
}

/// Builds the reduction topology: `p` hosts, 8 per leaf switch, leaf
/// switches under a tree of 16-port switches. Returns the cluster
/// pieces plus each host's leaf switch and each switch's parent.
pub fn reduction_cluster(p: usize, cfg: ClusterConfig) -> ReductionCluster {
    let (cl, map) = Cluster::from_spec(&reduction_spec(p), cfg);
    (
        cl,
        map.hosts,
        map.switches,
        map.host_leaf,
        map.parent,
        map.root,
    )
}

/// The combine handler on one switch of the tree.
pub struct ReduceHandler {
    /// Vectors expected at this switch (hosts below, or child switches).
    expect: usize, // asan-lint: allow(snapshot-completeness)
    received: usize,
    acc: Vec<u8>,
    acc_buf: Option<asan_core::BufId>,
    /// Where the combined vector goes: parent switch, or (at the root)
    /// the result distribution.
    parent: Option<NodeId>, // asan-lint: allow(snapshot-completeness)
    mode: Mode,         // asan-lint: allow(snapshot-completeness)
    hosts: Vec<NodeId>, // asan-lint: allow(snapshot-completeness)
    /// Hosts attached directly below this switch (broadcast fan-out).
    host_children: Vec<NodeId>, // asan-lint: allow(snapshot-completeness)
    /// Switches attached directly below this switch.
    switch_children: Vec<NodeId>, // asan-lint: allow(snapshot-completeness)
}

impl ReduceHandler {
    fn new(
        expect: usize,
        parent: Option<NodeId>,
        mode: Mode,
        hosts: Vec<NodeId>,
        host_children: Vec<NodeId>,
        switch_children: Vec<NodeId>,
    ) -> Self {
        ReduceHandler {
            expect,
            received: 0,
            acc: vec![0u8; VECTOR_BYTES],
            acc_buf: None,
            parent,
            mode,
            hosts,
            host_children,
            switch_children,
        }
    }

    /// Replicates `data` to every directly-attached host and child
    /// switch — the switch-tree broadcast of Reduce-to-all.
    fn broadcast(&self, ctx: &mut HandlerCtx<'_>, data: &[u8]) {
        for &sw in &self.switch_children {
            ctx.send(sw, Some(BCAST_HANDLER), 0, data);
        }
        for &h in &self.host_children {
            ctx.send(h, Some(RESULT), 0, data);
        }
    }

    /// The accumulated vector (for validation).
    pub fn accumulated(&self) -> &[u8] {
        &self.acc
    }
}

impl Handler for ReduceHandler {
    fn on_message(&mut self, ctx: &mut HandlerCtx<'_>) {
        if ctx.msg().handler == BCAST_HANDLER {
            // Result coming *down* the tree: replicate and forward.
            let data = ctx.payload();
            self.broadcast(ctx, &data);
            return;
        }
        let payload = ctx.payload();
        debug_assert_eq!(payload.len(), VECTOR_BYTES);
        if self.acc_buf.is_none() {
            self.acc_buf = Some(ctx.alloc_buffer());
        }
        // Real element-wise add. The accumulate is a read-modify-write
        // through the dedicated buffer port: the lane adds overlap the
        // payload reads charged by `payload()`, so only the add
        // instructions appear here (§3: the switch CPU "has its own
        // read/write ports to the data buffers").
        vector_add(&mut self.acc, &payload);
        ctx.charge_stream(VECTOR_BYTES, cost::REDUCE_ADD_INSTR_PER_DWORD);
        self.received += 1;
        if self.received == self.expect {
            let buf = self.acc_buf.take().expect("held");
            // Materialize the accumulator into the buffer for the send.
            let acc_snapshot = self.acc.clone();
            ctx.buffer_write(buf, 0, &acc_snapshot);
            match self.parent {
                Some(parent) => {
                    // Forward the partial result up the tree.
                    ctx.send_buffer(buf, parent, Some(REDUCE_HANDLER), 0);
                }
                None => match self.mode {
                    Mode::ReduceToOne => {
                        ctx.send_buffer(buf, self.hosts[0], Some(RESULT), 0);
                    }
                    Mode::ToAll => {
                        let data = self.acc.clone();
                        self.broadcast(ctx, &data);
                        ctx.free_buffer(buf);
                    }
                    Mode::Distributed => {
                        // Scatter slice i to host i.
                        let slice = VECTOR_BYTES / self.hosts.len().max(1);
                        let slice = slice.max(4);
                        for (i, &h) in self.hosts.iter().enumerate() {
                            let lo = (i * slice).min(VECTOR_BYTES - slice);
                            let part = self.acc[lo..lo + slice].to_vec();
                            ctx.send(h, Some(RESULT), lo as u32, &part);
                        }
                        ctx.free_buffer(buf);
                    }
                },
            }
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.usize(self.received);
        w.bytes(&self.acc);
        w.opt_u64(self.acc_buf.map(|b| u64::from(b.0)));
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        self.received = r.usize()?;
        let acc = r.bytes()?;
        if acc.len() != VECTOR_BYTES {
            return Err(SnapError::Malformed("reduce accumulator length"));
        }
        self.acc = acc;
        self.acc_buf = match r.opt_u64()? {
            Some(v) => {
                Some(asan_core::BufId(u8::try_from(v).map_err(|_| {
                    SnapError::Malformed("buffer id out of range")
                })?))
            }
            None => None,
        };
        Ok(())
    }
}

/// One node of the collective, normal (MST) or active.
struct ReduceNode {
    me: usize,          // asan-lint: allow(snapshot-completeness)
    p: usize,           // asan-lint: allow(snapshot-completeness)
    mode: Mode,         // asan-lint: allow(snapshot-completeness)
    active: bool,       // asan-lint: allow(snapshot-completeness)
    peers: Vec<NodeId>, // asan-lint: allow(snapshot-completeness)
    leaf: NodeId,       // asan-lint: allow(snapshot-completeness)
    vector: Vec<u8>,
    /// MST round (normal case).
    round: u32,
    got_result: Option<Vec<u8>>,
    done: bool,
}

impl ReduceNode {
    /// In MST round `r`, either sends to `me - 2^r`, waits for
    /// `me + 2^r`, or is already done.
    fn mst_step(&mut self, ctx: &mut HostCtx<'_>) {
        let p = self.p;
        loop {
            let bit = 1usize << self.round;
            if bit >= p && self.me == 0 {
                // Root holds the full reduction.
                self.root_finish(ctx);
                return;
            }
            if self.me & bit != 0 {
                // Send my partial to the partner and retire.
                let partner = self.me - bit;
                ctx.send(self.peers[partner], Some(RESULT), 0, self.vector.clone());
                if self.mode == Mode::ReduceToOne && self.me != 0 {
                    self.done = true;
                    ctx.finish();
                }
                // Distributed: wait for my slice later.
                return;
            }
            let partner = self.me + bit;
            if partner < p {
                // Wait for the partner's vector (handled in on_message).
                return;
            }
            // No partner this round; advance.
            self.round += 1;
        }
    }

    fn root_finish(&mut self, ctx: &mut HostCtx<'_>) {
        match self.mode {
            Mode::ReduceToOne => {
                self.got_result = Some(self.vector.clone());
                self.done = true;
                ctx.finish();
            }
            Mode::ToAll => {
                // Binomial broadcast of the whole vector.
                let data = self.vector.clone();
                self.broadcast_range(ctx, 0, self.p, &data);
            }
            Mode::Distributed => {
                // Binomial-tree scatter (the MST counterpart of the
                // reduce): log₂ p rounds instead of p serial sends.
                let data = self.vector.clone();
                self.scatter(ctx, 0, self.p, &data);
            }
        }
    }

    /// Holds the slices for nodes `[base, base+count)` in `data`; keeps
    /// slice `base` (which is `me`) and forwards the upper half of the
    /// range down the binomial tree.
    fn scatter(&mut self, ctx: &mut HostCtx<'_>, base: usize, mut count: usize, data: &[u8]) {
        debug_assert_eq!(self.me, base, "only the range base scatters");
        let slice = (VECTOR_BYTES / self.p).max(4);
        while count > 1 {
            // Binomial split point: 2^(⌈log₂ count⌉ − 1).
            let h = count.next_power_of_two() / 2;
            let lo = h * slice;
            let hi = (count * slice).min(data.len());
            ctx.send(
                self.peers[base + h],
                Some(RESULT),
                (base + h) as u32 | ((count - h) as u32) << 16,
                data[lo.min(data.len())..hi].to_vec(),
            );
            count = h;
        }
        self.got_result = Some(data[..slice.min(data.len())].to_vec());
        self.done = true;
        ctx.finish();
    }

    /// Binomial broadcast of the full vector to nodes
    /// `[base, base+count)` (normal Reduce-to-all).
    fn broadcast_range(
        &mut self,
        ctx: &mut HostCtx<'_>,
        base: usize,
        mut count: usize,
        data: &[u8],
    ) {
        debug_assert_eq!(self.me, base, "only the range base broadcasts");
        while count > 1 {
            let h = count.next_power_of_two() / 2;
            ctx.send(
                self.peers[base + h],
                Some(RESULT),
                (base + h) as u32 | ((count - h) as u32) << 16,
                data.to_vec(),
            );
            count = h;
        }
        self.got_result = Some(data.to_vec());
        self.done = true;
        ctx.finish();
    }
}

impl HostProgram for ReduceNode {
    fn on_start(&mut self, ctx: &mut HostCtx<'_>) {
        if self.active {
            // Fire the vector into the fabric and wait for the result.
            ctx.send(self.leaf, Some(REDUCE_HANDLER), 0, self.vector.clone());
            if self.mode == Mode::ReduceToOne && self.me != 0 {
                self.done = true;
                ctx.finish();
            }
            // Distributed / ToAll: every node awaits its RESULT.
        } else {
            self.mst_step(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut HostCtx<'_>, msg: &HostMsg) {
        if self.done {
            return;
        }
        if self.active {
            // The result (or my slice).
            self.got_result = Some(msg.data.to_vec());
            self.done = true;
            ctx.finish();
            return;
        }
        // Normal MST: if I'm still reducing, this is a partner's vector.
        let expecting_partner = {
            let bit = 1usize << self.round;
            self.me & bit == 0 && self.me + bit < self.p
        };
        if expecting_partner && msg.data.len() == VECTOR_BYTES {
            vector_add(&mut self.vector, &msg.data);
            // Charge the host-side combine λ: copy out of the receive
            // buffer, add, write back.
            ctx.cpu().compute(cost::REDUCE_HOST_COMBINE_INSTR);
            ctx.cpu().scan(
                0x6000_0000,
                VECTOR_BYTES as u64,
                8,
                cost::REDUCE_ADD_INSTR_PER_DWORD,
                false,
            );
            self.round += 1;
            self.mst_step(ctx);
        } else if self.mode == Mode::ToAll && !self.active {
            // A broadcast block for nodes [base, base+count): keep the
            // vector and forward down the binomial tree.
            let base = (msg.addr & 0xFFFF) as usize;
            let count = (msg.addr >> 16) as usize;
            debug_assert_eq!(base, self.me, "broadcast block landed at wrong node");
            let data = msg.data.clone();
            self.broadcast_range(ctx, base, count, &data);
        } else if self.mode == Mode::Distributed && !self.active {
            // A scatter block covering nodes [base, base+count): keep my
            // slice and forward the rest down the binomial tree.
            let base = (msg.addr & 0xFFFF) as usize;
            let count = (msg.addr >> 16) as usize;
            debug_assert_eq!(base, self.me, "scatter block landed at wrong node");
            // Rebase self as the root of this sub-range.
            let data = msg.data.clone();
            self.scatter(ctx, base, count, &data);
        } else {
            // My distributed slice (from the root).
            self.got_result = Some(msg.data.to_vec());
            self.done = true;
            ctx.finish();
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn snapshot_state(&self, w: &mut SnapWriter) {
        w.bytes(&self.vector);
        w.u32(self.round);
        w.bool(self.got_result.is_some());
        if let Some(res) = &self.got_result {
            w.bytes(res);
        }
        w.bool(self.done);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> Result<(), SnapError> {
        let vector = r.bytes()?;
        if vector.len() != VECTOR_BYTES {
            return Err(SnapError::Malformed("reduce vector length"));
        }
        self.vector = vector;
        self.round = r.u32()?;
        self.got_result = if r.bool()? { Some(r.bytes()?) } else { None };
        self.done = r.bool()?;
        Ok(())
    }
}

/// Result of one reduction run.
#[derive(Debug, Clone)]
pub struct ReduceRun {
    /// Number of nodes.
    pub p: usize,
    /// Whether the active-switch algorithm ran.
    pub active: bool,
    /// Completion latency (all receivers have their result).
    pub latency: SimTime,
    /// Fault-injection counters (all zero without an armed plan).
    pub faults: asan_sim::faults::FaultStats,
    /// Canonical cluster-stats digest of the run, for golden-digest
    /// regression checks.
    pub stats_digest: u64,
    /// Observability report: latency histograms and the per-phase time
    /// breakdown.
    pub metrics: asan_core::metrics::MetricsReport,
    /// Events the simulation processed (diagnostic).
    pub events: u64,
    /// High-water mark of the scheduler's pending-event queue.
    pub peak_queue: u64,
}

/// Runs one collective reduction, validating the result against the
/// scalar reference.
///
/// # Panics
///
/// Panics if any delivered result lane is wrong.
pub fn run(mode: Mode, active: bool, p: usize) -> ReduceRun {
    run_with_config(mode, active, p, ClusterConfig::paper())
}

/// [`run`] with an explicit cluster configuration (used by the
/// ablation studies to vary the active-switch hardware).
pub fn run_with_config(mode: Mode, active: bool, p: usize, cfg: ClusterConfig) -> ReduceRun {
    let case = if active { "active" } else { "normal" };
    let tag = format!("{}-{case}-p{p}", mode.tag());
    run_spec(
        mode,
        active,
        p,
        &reduction_spec(p),
        HandlerPlacement::Nca,
        cfg,
        &tag,
    )
}

/// Runs one reduction on an arbitrary fat-tree radix and handler
/// placement — the scale sweep behind the multi-switch speedup figure.
/// Unlike [`run_with_config`]'s seed-pinned fabric this keeps the
/// chained per-hop credit model of [`TopoSpec::fat_tree`].
pub fn run_scaled(
    mode: Mode,
    active: bool,
    p: usize,
    radix: usize,
    placement: HandlerPlacement,
) -> ReduceRun {
    run_scaled_with_config(mode, active, p, radix, placement, ClusterConfig::paper())
}

/// [`run_scaled`] with an explicit [`ClusterConfig`] — e.g. to narrow
/// `timeline_window` so the flight recorder resolves intra-run phases
/// on a reduction that finishes within one default window.
pub fn run_scaled_with_config(
    mode: Mode,
    active: bool,
    p: usize,
    radix: usize,
    placement: HandlerPlacement,
    cfg: ClusterConfig,
) -> ReduceRun {
    let spec = TopoSpec::fat_tree(radix, p, 0);
    let case = if active { "active" } else { "normal" };
    let tag = format!(
        "scaled-{}-{case}-p{p}-{}-{}",
        mode.tag(),
        spec.label(),
        placement.label()
    );
    run_spec(mode, active, p, &spec, placement, cfg, &tag)
}

/// Shared body of [`run_with_config`] and [`run_scaled`]: build the
/// fabric from `spec`, place combine handlers per `placement`, run,
/// and validate every delivered result against the scalar reference.
fn run_spec(
    mode: Mode,
    active: bool,
    p: usize,
    spec: &TopoSpec,
    placement: HandlerPlacement,
    cfg: ClusterConfig,
    tag: &str,
) -> ReduceRun {
    let build = || {
        let (mut cl, map) = Cluster::from_spec(spec, cfg.clone());
        let hosts = map.hosts.clone();
        // Where each host fires its vector: its ingress switch of the
        // placed tree (active), or its own leaf (normal MST).
        let mut ingress: Vec<NodeId> = map.host_leaf.clone();

        if active {
            // Install a combine handler on every tree switch with its
            // fan-in and its broadcast fan-out.
            let tree = aggregation_tree(&map, &hosts, placement);
            cl.place_handlers(&tree, REDUCE_HANDLER, |_, n| {
                Box::new(ReduceHandler::new(
                    n.expect,
                    n.parent,
                    mode,
                    hosts.clone(),
                    n.host_children.clone(),
                    n.switch_children.clone(),
                ))
            })
            .expect("cluster setup");
            if mode == Mode::ToAll {
                // The broadcast arrives under its own handler ID; share
                // the state via a second registration of a
                // pure-forwarding handler.
                cl.place_handlers(&tree, BCAST_HANDLER, |_, n| {
                    Box::new(ReduceHandler::new(
                        usize::MAX,
                        n.parent,
                        mode,
                        hosts.clone(),
                        n.host_children.clone(),
                        n.switch_children.clone(),
                    ))
                })
                .expect("cluster setup");
            }
            for (i, &h) in hosts.iter().enumerate() {
                ingress[i] = tree.ingress[&h];
            }
        }

        for (i, &h) in hosts.iter().enumerate() {
            cl.set_program(
                h,
                Box::new(ReduceNode {
                    me: i,
                    p,
                    mode,
                    active,
                    peers: hosts.clone(),
                    leaf: ingress[i],
                    vector: reduce_vector(i),
                    round: 0,
                    got_result: None,
                    done: false,
                }),
            )
            .expect("cluster setup");
        }
        (cl, hosts)
    };

    let (mut cl, hosts, report) = drive(tag, build);

    // Validate against the scalar reference.
    let want = reference_sum(p);
    let check_slice = |node: usize, got: &[u8]| {
        let slice = (VECTOR_BYTES / p).max(4);
        let lo = match mode {
            Mode::ReduceToOne | Mode::ToAll => 0,
            Mode::Distributed => (node * slice).min(VECTOR_BYTES - slice),
        };
        assert_eq!(
            got,
            &want[lo..lo + got.len()],
            "node {node} got a wrong result"
        );
    };
    for (i, &h) in hosts.iter().enumerate() {
        let program = cl.take_program(h).expect("program");
        let node = program
            .as_any()
            .and_then(|a| a.downcast_ref::<ReduceNode>())
            .expect("reduce node");
        match mode {
            Mode::ReduceToOne => {
                if i == 0 {
                    check_slice(0, node.got_result.as_deref().expect("node 0 result"));
                }
            }
            Mode::Distributed | Mode::ToAll => {
                check_slice(i, node.got_result.as_deref().expect("result"));
            }
        }
    }

    ReduceRun {
        p,
        active,
        latency: report.finish,
        faults: cl.fault_stats(),
        stats_digest: cl.stats().digest(),
        metrics: cl.metrics(&report),
        events: report.events,
        peak_queue: report.peak_queue,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_to_one_correct_small() {
        for p in [2usize, 4, 8] {
            let n = run(Mode::ReduceToOne, false, p);
            let a = run(Mode::ReduceToOne, true, p);
            assert!(n.latency > SimTime::ZERO);
            assert!(a.latency > SimTime::ZERO, "p = {p}");
        }
    }

    #[test]
    fn distributed_correct_small() {
        for p in [2usize, 4, 8] {
            run(Mode::Distributed, false, p);
            run(Mode::Distributed, true, p);
        }
    }

    #[test]
    fn active_beats_normal_at_scale() {
        let n = run(Mode::ReduceToOne, false, 32);
        let a = run(Mode::ReduceToOne, true, 32);
        assert!(
            a.latency < n.latency,
            "active {} vs normal {}",
            a.latency,
            n.latency
        );
    }

    #[test]
    fn reduce_to_all_every_node_gets_full_vector() {
        for p in [2usize, 4, 8, 16] {
            let n = run(Mode::ToAll, false, p);
            let a = run(Mode::ToAll, true, p);
            assert!(n.latency > SimTime::ZERO);
            assert!(a.latency > SimTime::ZERO, "p = {p}");
        }
        // Replication in the switches beats the host-side binomial
        // broadcast once the tree has real fan-out.
        let n = run(Mode::ToAll, false, 16);
        let a = run(Mode::ToAll, true, 16);
        assert!(a.latency < n.latency, "{} vs {}", a.latency, n.latency);
    }

    #[test]
    fn scaled_runs_all_placements() {
        // Radix-4 fat-tree, 16 hosts → 8 leaves + 4 + 2 + 1. Every
        // placement must still produce a correct (validated) result.
        for placement in HandlerPlacement::ALL {
            let a = run_scaled(Mode::ReduceToOne, true, 16, 4, placement);
            assert!(a.latency > SimTime::ZERO, "{}", placement.label());
        }
        let n = run_scaled(Mode::ReduceToOne, false, 16, 4, HandlerPlacement::Nca);
        assert!(n.latency > SimTime::ZERO);
    }

    #[test]
    fn scaled_nca_beats_root_at_scale() {
        // In-network combining at each level beats funneling every
        // vector to the apex once the tree is deep enough.
        let nca = run_scaled(Mode::ReduceToOne, true, 64, 4, HandlerPlacement::Nca);
        let root = run_scaled(Mode::ReduceToOne, true, 64, 4, HandlerPlacement::Root);
        assert!(
            nca.latency < root.latency,
            "nca {} vs root {}",
            nca.latency,
            root.latency
        );
    }

    #[test]
    fn scaled_is_deterministic() {
        let a = run_scaled(Mode::Distributed, true, 32, 8, HandlerPlacement::Striped);
        let b = run_scaled(Mode::Distributed, true, 32, 8, HandlerPlacement::Striped);
        assert_eq!(a.stats_digest, b.stats_digest);
        assert_eq!(a.latency, b.latency);
    }

    #[test]
    fn multi_switch_tree_works() {
        // 16 nodes → 2 leaf switches + root.
        let a = run(Mode::ReduceToOne, true, 16);
        assert!(a.latency > SimTime::ZERO);
        let d = run(Mode::Distributed, true, 16);
        assert!(d.latency > SimTime::ZERO);
    }
}
