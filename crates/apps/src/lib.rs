//! The nine benchmark applications of *Active I/O Switches in System
//! Area Networks* (HPCA 2003), each in the paper's four standard
//! configurations.
//!
//! Every benchmark processes **real data** end to end: the Grep DFA
//! finds the actual 16 matching lines, MD5 produces RFC 1321-correct
//! digests, HashJoin's bit-vector filters the actual records, and each
//! run's result is validated against a pure-Rust reference before any
//! timing is reported.

pub mod blockio;
pub mod cost;
pub mod data;
pub mod dfa;
pub mod grep;
pub mod hashjoin;
pub mod md5;
pub mod md5app;
pub mod mpeg;
pub mod multiprog;
pub mod psort;
pub mod reduce;
pub mod runner;
pub mod select;
pub mod shared;
pub mod tar;
pub mod tar_fmt;
pub mod twolevel;

pub use runner::{sweep, AppRun, Variant};
