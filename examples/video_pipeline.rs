//! The paper's motivating scenario: a video server filtering an MPEG
//! stream for a bandwidth-constrained client, with frame filtering on
//! the active switch and colour reduction on the host — compared
//! across all four configurations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example video_pipeline
//! ```

use asan_apps::runner::{sweep, Variant};
use asan_apps::{mpeg, Variant as V};

fn main() {
    // Half of the paper's clip keeps the example quick; use
    // `mpeg::Params::paper()` for the full Figure 3/4 configuration.
    let params = mpeg::Params {
        video_bytes: 1 << 20,
        ..mpeg::Params::paper()
    };

    println!("MPEG filter pipeline over a {} B clip", params.video_bytes);
    println!("(frame filter on switch, colour reduction on host)\n");

    let runs = sweep(|v| mpeg::run(v, &params));
    let base = runs.iter().find(|r| r.variant == V::Normal).unwrap().exec;

    println!(
        "{:<14} {:>12} {:>9} {:>11} {:>14}",
        "config", "exec", "speedup", "host util", "bytes to host"
    );
    for r in &runs {
        println!(
            "{:<14} {:>12} {:>8.2}x {:>10.1}% {:>14}",
            r.variant.label(),
            format!("{}", r.exec),
            base.as_ps() as f64 / r.exec.as_ps() as f64,
            r.host_utilization * 100.0,
            r.host_traffic,
        );
    }

    let active = runs
        .iter()
        .find(|r| r.variant == Variant::ActivePref)
        .unwrap();
    let normal = runs
        .iter()
        .find(|r| r.variant == Variant::NormalPref)
        .unwrap();
    println!(
        "\nthe filter kept {} I-frame bytes; host traffic fell to {:.1}% of normal+pref",
        active.artifact,
        active.host_traffic as f64 / normal.host_traffic as f64 * 100.0
    );
}
